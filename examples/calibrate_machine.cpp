// Calibration walkthrough: instantiate the model for *this* machine from
// black-box measurements, then check how well it predicts.
//
// This is the workflow a practitioner follows on new hardware:
//   1. run the probe suite (single-thread local costs + an FAA thread
//      sweep under high contention),
//   2. least-squares-fit the near/far transfer costs,
//   3. validate the resulting model on workloads the probes never ran.
//
// Build & run:  ./build/examples/calibrate_machine [--backend=sim:xeon|sim:knl|hw]
#include <cstdio>

#include "bench_core/backend.hpp"
#include "common/cli.hpp"
#include "model/bouncing_model.hpp"
#include "model/calibrate.hpp"
#include "model/params_io.hpp"
#include "model/validate.hpp"
#include "sim/config.hpp"

int main(int argc, char** argv) {
  using namespace am;
  CliParser cli("model calibration walkthrough");
  cli.add_flag("backend", "sim:xeon | sim:knl | sim:test | hw", "sim:xeon");
  cli.add_flag("save", "write calibrated parameters to this file", "");
  if (!cli.parse(argc, argv)) return 1;

  const std::string spec = cli.get("backend");
  auto backend = bench::make_backend(spec);

  // The skeleton provides structure only (which core pairs are near/far);
  // for hardware runs the Xeon two-socket skeleton is the default shape.
  sim::MachineConfig shape =
      spec.rfind("sim:", 0) == 0 ? sim::preset_by_name(spec.substr(4))
                                 : sim::xeon_e5_2x18();
  shape.arbitration = sim::Arbitration::kFifo;  // identifiable mixture
  const model::ModelParams skeleton = model::ModelParams::from_machine(shape);

  std::printf("calibrating against %s:%s (%u threads available)\n",
              backend->name().c_str(), backend->machine_name().c_str(),
              backend->max_threads());

  const model::Calibration cal = model::calibrate(*backend, skeleton);
  std::printf("\nprobe log:\n%s", cal.log.c_str());
  if (!cal.ok) {
    std::printf("calibration failed — see the log above\n");
    return 1;
  }
  std::printf("calibrated: t_near=%.1f cy, t_far=%.1f cy (r^2=%.3f)\n",
              cal.t_near, cal.t_far, cal.fit_r_squared);

  // Validate on primitives/thread counts the probes never measured.
  const model::BouncingModel model(cal.apply_to(skeleton));
  model::ValidationOptions opts;
  opts.primitives = {Primitive::kSwap, Primitive::kCas, Primitive::kStore};
  opts.thread_counts = {};
  for (std::uint32_t n : {2u, 6u, 10u, 20u, 30u}) {
    if (n <= backend->max_threads()) opts.thread_counts.push_back(n);
  }
  opts.work_values = {0.0, 800.0};
  const model::ValidationReport report =
      model::validate(*backend, model, opts);

  std::printf("\nvalidation on unseen workloads: throughput MAPE %.2f%%, "
              "latency MAPE %.2f%% over %zu grid points\n",
              report.mape_throughput * 100.0, report.mape_latency * 100.0,
              report.points.size());

  const std::string save_path = cli.get("save");
  if (!save_path.empty()) {
    if (model::save_params_file(model.params(), save_path)) {
      std::printf("calibrated parameters saved to %s (reload with "
                  "model::load_params_file)\n",
                  save_path.c_str());
    } else {
      std::printf("failed to write %s\n", save_path.c_str());
    }
  }
  std::printf("the calibrated model is ready: BouncingModel::predict(prim, "
              "threads, work)\n");
  return 0;
}
