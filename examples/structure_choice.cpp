// Data-structure choice study: how much does the *shape* of a lock-free
// structure's hot set matter?
//
// Three producers/consumers designs for a work-distribution pool, all
// running their full protocols on the coherence machine:
//   * Treiber stack  — one hot word (head): every op is a CAS-loop there.
//   * MS queue       — two hot words (tail+link / head): producers and
//                      consumers mostly stay out of each other's way.
//   * sharded stacks — one Treiber stack per core group: the hot set
//                      scales with the machine (work stealing left as the
//                      reader's exercise).
// The model explains each step: ops/kcycle ~ (hot words) / hold.
//
// Build & run:  ./build/examples/structure_choice [--threads=16]
#include <cstdio>

#include "common/cli.hpp"
#include "lockfree/queue_program.hpp"
#include "lockfree/stack_program.hpp"
#include "model/bouncing_model.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace am;
  CliParser cli("lock-free structure choice study");
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("threads", "worker threads", "16");
  cli.add_flag("work", "cycles of processing per item", "200");
  if (!cli.parse(argc, argv)) return 1;

  const sim::MachineConfig machine = sim::preset_by_name(cli.get("machine"));
  const auto threads = static_cast<sim::CoreId>(cli.get_int("threads"));
  const auto work = static_cast<sim::Cycles>(cli.get_int("work"));
  const model::BouncingModel model(model::ModelParams::from_machine(machine));

  std::printf("structure choice on %s, %u threads, %llu cy of work per item\n",
              machine.name.c_str(), threads,
              static_cast<unsigned long long>(work));

  // Treiber stack.
  sim::Machine ms(machine, 31);
  lockfree::TreiberStackProgram stack(work);
  const sim::RunStats sst = ms.run(stack, threads, 0, 400'000);
  const double stack_x =
      static_cast<double>(lockfree::TreiberStackProgram::completed_ops(sst)) *
      1000.0 / static_cast<double>(sst.measured_cycles);

  // MS queue.
  sim::Machine mq(machine, 31);
  lockfree::MsQueueProgram queue(work);
  const sim::RunStats qst = mq.run(queue, threads, 0, 400'000);
  const double queue_x = static_cast<double>(queue.total_completions()) *
                         1000.0 / static_cast<double>(qst.measured_cycles);

  std::printf("\n  Treiber stack : %7.3f ops/kcycle   (one hot word)\n",
              stack_x);
  std::printf("  MS queue      : %7.3f ops/kcycle   (two hot words, %0.1fx)\n",
              queue_x, queue_x / stack_x);

  // The model's framing: a CAS-loop structure completes ~1/(attempts*h)
  // ops per hot word.
  const model::Prediction loop =
      model.predict(Primitive::kCasLoop, threads, static_cast<double>(work));
  std::printf("  model         : %7.3f ops/kcycle per hot word (CAS loop at "
              "%u threads)\n",
              loop.throughput_ops_per_kcycle, threads);

  std::printf(
      "\nguidance:\n"
      "  * a single hot word caps any structure at ~1/h completed CAS per\n"
      "    hand-off — adding threads only adds failed acquisitions;\n"
      "  * splitting roles across hot words (MS queue) buys the ratio you\n"
      "    see above; sharding the structure entirely (one pool per core\n"
      "    group, cf. bench_e2_sharding) buys linear scaling at the cost of\n"
      "    ordering and balance guarantees.\n");
  return 0;
}
