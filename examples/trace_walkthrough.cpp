// Trace walkthrough: watching the line hand-off process, not just its
// end-of-run averages.
//
//   1. Run a short high-contention CAS-loop workload over a skewed (Zipf)
//      line set on the simulated Xeon, with every observability channel on:
//      a Chrome trace, the per-line contention profiler and the epoch
//      sampler.
//   2. Print the top-5 hottest lines with their queue-depth / hold-time
//      profile — the per-resource breakdown that localizes an atomic
//      bottleneck.
//   3. Print the epoch time-series, and where to load the trace.
//
// Build & run:  ./build/examples/trace_walkthrough
// Then open trace_walkthrough.json in https://ui.perfetto.dev or
// chrome://tracing: pid 1 holds one track per core (op spans + request
// flow arrows), pid 2 one track per hot line (who held it, served by
// which supply class).
#include <cstdio>

#include "bench_core/sim_backend.hpp"
#include "sim/config.hpp"

int main() {
  using namespace am;

  const char* trace_path = "trace_walkthrough.json";

  bench::SimBackend backend(sim::xeon_e5_2x18(),
                            {/*warmup_cycles=*/5'000,
                             /*measure_cycles=*/50'000});
  backend.set_line_profiling(true);
  backend.set_epoch_cycles(10'000);
  if (!backend.set_trace_file(trace_path)) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
    return 1;
  }

  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kZipf;  // skewed sharing: a few hot lines
  w.prim = Primitive::kCasLoop;
  w.threads = 16;
  w.zipf_lines = 32;
  w.zipf_s = 0.99;
  const bench::MeasuredRun r = backend.run(w);

  std::printf("workload: %s on %s\n", w.describe().c_str(),
              backend.machine_name().c_str());
  std::printf("  %llu ops, %.2f Mops, %.1f line acquisitions per op\n",
              static_cast<unsigned long long>(r.total_ops()),
              r.throughput_mops(), r.attempts_per_op());

  // 2. The hottest lines. hot_lines is sorted hottest-first, so the head
  // of the vector is the bottleneck ranking.
  std::printf("\ntop-5 hottest lines (of %zu touched):\n", r.hot_lines.size());
  std::printf("  %6s %10s %8s %8s %8s %8s %10s %6s\n", "line", "acquis.",
              "invals", "q-mean", "q-max", "hold-cy", "near/far", "local");
  const std::size_t top = r.hot_lines.size() < 5 ? r.hot_lines.size() : 5;
  for (std::size_t i = 0; i < top; ++i) {
    const bench::LineHotness& h = r.hot_lines[i];
    std::printf("  %6llu %10llu %8llu %8.2f %8llu %8.1f %5llu/%-5llu %6llu\n",
                static_cast<unsigned long long>(h.line),
                static_cast<unsigned long long>(h.acquisitions),
                static_cast<unsigned long long>(h.invalidations),
                h.mean_queue_depth,
                static_cast<unsigned long long>(h.max_queue_depth),
                h.mean_hold_cycles,
                static_cast<unsigned long long>(h.supply[1]),
                static_cast<unsigned long long>(h.supply[2]),
                static_cast<unsigned long long>(h.supply[0]));
  }
  if (!r.hot_lines.empty()) {
    const bench::LineHotness& h0 = r.hot_lines.front();
    std::printf("line %llu alone took %llu of %llu acquisitions — the Zipf "
                "head is the bottleneck.\n",
                static_cast<unsigned long long>(h0.line),
                static_cast<unsigned long long>(h0.acquisitions),
                static_cast<unsigned long long>(r.total_attempts()));
  }

  // 3. The run as a time-series: contention is steady here, but regime
  // transitions (backoff kicking in, working sets warming) show up as
  // slopes in these columns.
  std::printf("\nepoch time-series (window = %.0f cycles):\n", r.epoch_cycles);
  std::printf("  %10s %8s %10s %8s %6s\n", "start", "ops", "ops/kcy", "wait%",
              "inflt");
  for (const bench::EpochPoint& e : r.epochs) {
    std::printf("  %10.0f %8llu %10.2f %7.1f%% %6llu\n", e.start_cycle,
                static_cast<unsigned long long>(e.ops),
                e.throughput_ops_per_kcycle, 100.0 * e.wait_fraction,
                static_cast<unsigned long long>(e.outstanding_max));
  }

  std::printf("\nwrote %s — load it in https://ui.perfetto.dev or "
              "chrome://tracing\n", trace_path);
  return 0;
}
