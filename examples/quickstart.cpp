// Quickstart: the five-minute tour of the library.
//
//   1. Pick a machine (a simulated 2-socket Xeon E5 here).
//   2. Build the bouncing model from its parameters.
//   3. Ask the model about a design question: "32 threads increment one
//      shared counter — FAA or CAS loop?"
//   4. Check the answer by actually running both workloads on the
//      coherence machine through the same backend the benchmarks use.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bench_core/sim_backend.hpp"
#include "model/advisor.hpp"
#include "model/bouncing_model.hpp"
#include "sim/config.hpp"

int main() {
  using namespace am;

  // 1. The machine.
  const sim::MachineConfig machine = sim::xeon_e5_2x18();
  std::printf("machine: %s (%u cores, %.1f GHz)\n", machine.name.c_str(),
              machine.core_count(), machine.freq_ghz);

  // 2. The model.
  const model::BouncingModel model(model::ModelParams::from_machine(machine));

  // 3. Ask the model.
  constexpr std::uint32_t kThreads = 32;
  const model::Prediction faa = model.predict(Primitive::kFaa, kThreads, 0.0);
  const model::Prediction loop =
      model.predict(Primitive::kCasLoop, kThreads, 0.0);
  std::printf("\nmodel @ %u threads, shared line, no local work:\n", kThreads);
  std::printf("  FAA      : %6.2f Mops, latency %6.0f cycles\n",
              faa.throughput_mops, faa.latency_cycles);
  std::printf("  CAS loop : %6.2f Mops, ~%.1f line acquisitions per op\n",
              loop.throughput_mops, loop.attempts_per_op);
  std::printf("  crossover: beyond w* = %.0f cycles of local work the line "
              "stops being saturated\n",
              faa.crossover_work);

  const model::Advice advice = model::advise_counter(model, kThreads, 0.0);
  std::printf("  advisor  : use %s — %s\n", advice.recommended.c_str(),
              advice.rationale.c_str());

  // 4. Verify on the machine.
  bench::SimBackend backend(machine);
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.threads = kThreads;

  w.prim = Primitive::kFaa;
  const auto r_faa = backend.run(w);
  w.prim = Primitive::kCasLoop;
  const auto r_loop = backend.run(w);

  std::printf("\nmeasured on the coherence machine:\n");
  std::printf("  FAA      : %6.2f Mops\n", r_faa.throughput_mops());
  std::printf("  CAS loop : %6.2f Mops (%.1f acquisitions per op)\n",
              r_loop.throughput_mops(), r_loop.attempts_per_op());
  std::printf("  FAA wins by %.1fx — as predicted.\n",
              r_faa.throughput_mops() / r_loop.throughput_mops());
  return 0;
}
