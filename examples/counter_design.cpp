// Counter design study: how should a shared statistics counter be
// implemented across deployment sizes?
//
// The scenario the paper's introduction motivates: a hot counter (request
// counter, freelist head, sequence number) incremented by every thread.
// This example sweeps thread counts and access rates, asks the advisor at
// every point, and verifies the recommendation against the machine —
// including the regime where the counter is *not* hot and the choice stops
// mattering.
//
// Build & run:  ./build/examples/counter_design [--machine=xeon|knl]
#include <cstdio>

#include "bench_core/sim_backend.hpp"
#include "common/cli.hpp"
#include "model/advisor.hpp"
#include "model/bouncing_model.hpp"
#include "sim/config.hpp"

int main(int argc, char** argv) {
  using namespace am;
  CliParser cli("counter design study");
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  if (!cli.parse(argc, argv)) return 1;

  const sim::MachineConfig machine = sim::preset_by_name(cli.get("machine"));
  const model::BouncingModel model(model::ModelParams::from_machine(machine));
  bench::SimBackend backend(machine);

  std::printf("counter design study on %s\n", machine.name.c_str());
  std::printf("%8s %10s | %-9s | %21s | %21s\n", "threads", "work(cy)",
              "advisor", "FAA meas/pred (Mops)", "CASloop meas/pred");

  for (std::uint32_t threads : {2u, 8u, 16u, 32u}) {
    if (threads > backend.max_threads()) continue;
    for (double work : {0.0, 500.0, 20'000.0}) {
      const model::Advice advice =
          model::advise_counter(model, threads, work);

      auto measure = [&](Primitive prim) {
        bench::WorkloadConfig w;
        w.mode = bench::WorkloadMode::kHighContention;
        w.prim = prim;
        w.threads = threads;
        w.work = static_cast<bench::Cycles>(work);
        return backend.run(w).throughput_mops();
      };
      const double faa_meas = measure(Primitive::kFaa);
      const double loop_meas = measure(Primitive::kCasLoop);
      const double faa_pred =
          model.predict(Primitive::kFaa, threads, work).throughput_mops;
      const double loop_pred =
          model.predict(Primitive::kCasLoop, threads, work).throughput_mops;

      std::printf("%8u %10.0f | %-9s | %9.2f / %8.2f | %9.2f / %8.2f\n",
                  threads, work, advice.recommended.c_str(), faa_meas,
                  faa_pred, loop_meas, loop_pred);
    }
  }

  std::printf(
      "\ntakeaways:\n"
      "  * hot counter: FAA — one line acquisition per increment; the CAS\n"
      "    loop pays ~N and additionally starves all but one thread.\n"
      "  * if the algorithm requires CAS (the update is not an add), pace\n"
      "    retries: the model recommends %.0f cycles of randomized backoff\n"
      "    at 32 threads (see bench_a1_ablations for the sweep).\n"
      "  * cold counter (rare increments): every implementation is\n"
      "    work-bound and the choice is a wash — do not redesign it.\n",
      model::recommended_backoff_cycles(model, 32));
  return 0;
}
