// Lock selection study: which spinlock for a given critical section and
// thread count?
//
// Uses the model's advisor for the ranking, then runs all four protocols
// (TAS, TTAS, ticket, MCS) on the coherence machine to confirm both the
// ordering and the fairness story (ticket/MCS are FIFO-fair; TAS/TTAS
// inherit the fabric's proximity bias).
//
// Build & run:  ./build/examples/lock_selection [--threads=24]
//               [--critical=150] [--outside=300] [--machine=xeon|knl]
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "locks/lock_programs.hpp"
#include "model/advisor.hpp"
#include "model/bouncing_model.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace am;
  CliParser cli("spinlock selection study");
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("threads", "contending threads", "24");
  cli.add_flag("critical", "cycles inside the lock", "150");
  cli.add_flag("outside", "cycles between acquisitions", "300");
  if (!cli.parse(argc, argv)) return 1;

  const sim::MachineConfig machine = sim::preset_by_name(cli.get("machine"));
  const auto threads = static_cast<sim::CoreId>(cli.get_int("threads"));
  const double critical = cli.get_double("critical");
  const double outside = cli.get_double("outside");

  const model::BouncingModel model(model::ModelParams::from_machine(machine));
  const model::Advice advice =
      model::advise_lock(model, threads, critical, outside);

  std::printf("lock selection on %s, %u threads, cs=%.0f cy, outside=%.0f cy\n",
              machine.name.c_str(), threads, critical, outside);
  std::printf("\nadvisor ranking (model):\n");
  for (const auto& option : advice.options) {
    std::printf("  %-7s %8.3f Mops   %s\n", option.name.c_str(),
                option.throughput_mops, option.note.c_str());
  }
  std::printf("  rationale: %s\n", advice.rationale.c_str());

  locks::LockWorkload wl;
  wl.critical_work = static_cast<sim::Cycles>(critical);
  wl.outside_work = static_cast<sim::Cycles>(outside);

  std::printf("\nmeasured on the coherence machine:\n");
  auto measure = [&](auto make_program, locks::LockKind kind) {
    sim::Machine sim_machine(machine);
    auto program = make_program();
    const sim::RunStats stats =
        sim_machine.run(program, threads, 50'000, 400'000);
    const double acq = static_cast<double>(
        locks::LockProgramBase::acquisitions(stats, kind));
    const auto shares =
        locks::LockProgramBase::acquisition_shares(stats, kind);
    const double mops = acq / static_cast<double>(stats.measured_cycles) *
                        machine.freq_ghz * 1e3;
    std::printf("  %-7s %8.3f Mops   fairness (Jain) %.3f\n",
                to_string(kind), mops, jain_fairness(shares));
  };
  measure([&] { return locks::TasLockProgram(wl); }, locks::LockKind::kTas);
  measure([&] { return locks::TtasLockProgram(wl); }, locks::LockKind::kTtas);
  measure([&] { return locks::TicketLockProgram(wl); },
          locks::LockKind::kTicket);
  measure([&] { return locks::McsLockProgram(wl); }, locks::LockKind::kMcs);

  std::printf(
      "\nnotes:\n"
      "  * the hardware-thread implementations of all four locks live in\n"
      "    src/locks/spinlocks.hpp and pass the mutual-exclusion tests in\n"
      "    tests/locks/spinlocks_test.cpp on any host;\n"
      "  * on a machine with enough cores, rerun this study with the\n"
      "    hardware backend via bench_f7_casestudy --backend=hw.\n");
  return 0;
}
