// The am-serve/1 wire protocol: newline-delimited JSON requests/responses.
//
// One request is one line holding one JSON object; the daemon answers with
// exactly one line per request, in request order. The protocol is versioned
// through the "v" member (missing defaults to am-serve/1; anything else is
// rejected) so the format can evolve without breaking deployed clients.
//
// Canonicalization is the serving contract's backbone: a parsed request is
// re-serialized into a *canonical* compact JSON string with a fixed member
// order, normalized numbers and only the members its kind/mode actually
// consumes. Two requests that differ in member order, whitespace, number
// spelling ("16" vs "16.0") or irrelevant members canonicalize identically,
// hit the same prediction-cache entry, and receive byte-identical results.
// The cache key is a splitmix64-chained hash of the canonical form (the
// same mixing the sweep engine uses for per-point seeds).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "atomics/primitives.hpp"

namespace am::service {

inline constexpr const char* kProtocolVersion = "am-serve/1";

enum class RequestKind : std::uint8_t {
  kPredict,    ///< model point: throughput/latency/energy from closed forms
  kAdvise,     ///< structured design advice (counter / lock / backoff)
  kCalibrate,  ///< fit model params from client-supplied probe samples
  kSimulate,   ///< bounded sim::Machine run (watchdog armed, disk-cached)
  kStats,      ///< server-side counters; never cached, always fresh
  kPing,       ///< liveness probe
  kMetrics,    ///< Prometheus text exposition; never cached, always fresh
  kRunGuest,   ///< run a client-supplied rv32 binary as a sim workload
};

/// Number of RequestKind values (sized per-kind counter arrays).
inline constexpr std::size_t kRequestKindCount = 8;

const char* to_string(RequestKind k) noexcept;
std::optional<RequestKind> parse_kind(std::string_view name) noexcept;

/// Workload shape shared by predict and simulate. `mode` mirrors the
/// WorkloadMode subset both the model and the simulator serve.
struct PointQuery {
  std::string machine = "xeon";  ///< sim preset: xeon | knl | test
  std::string mode = "shared";   ///< shared | private | mixed | zipf
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  double work = 0.0;
  double write_fraction = 0.1;    ///< mixed only
  std::uint64_t zipf_lines = 64;  ///< zipf only
  double zipf_s = 0.99;           ///< zipf only
  std::uint64_t seed = 1;         ///< simulate only
};

struct AdviseQuery {
  std::string machine = "xeon";
  std::string target = "counter";  ///< counter | lock | backoff
  std::uint32_t threads = 1;
  double work = 0.0;       ///< counter: cycles between increments
  double critical = 100.0; ///< lock: cycles inside the critical section
  double outside = 0.0;    ///< lock: cycles between acquisitions
};

/// One client-measured probe point for calibration. `mode` is "private"
/// (the single-threaded local-cost probes) or "shared" (the FAA
/// high-contention sweep); `cycles_per_op` is the aggregate cycles per
/// completed operation the client observed.
struct CalibrateSample {
  std::string mode = "private";
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  double cycles_per_op = 0.0;
};

struct CalibrateQuery {
  std::string machine = "xeon";  ///< skeleton supplying topology structure
  std::vector<CalibrateSample> samples;
};

/// Decoded-ELF size cap for run_guest requests. Generous for the corpus
/// (each program is < 1 KiB) while keeping worst-case request lines inside
/// the transport's per-line byte cap (base64 of 256 KiB is ~342 KiB).
inline constexpr std::size_t kMaxGuestElfBytes = 256u << 10;

/// run_guest: execute a statically linked rv32ima ELF on the simulator.
/// The wire request carries the binary base64-encoded in "elf"; the parsed
/// query holds the *decoded* bytes plus their content hash. The canonical
/// form embeds only elf_sha — two requests shipping the same binary under
/// different base64 spellings (or ids) canonicalize identically, so the
/// sharded LRU, the disk tier and the fleet's stale-serving all work on
/// run_guest unchanged.
struct GuestQuery {
  std::string machine = "xeon";     ///< sim preset: xeon | knl | test
  std::string memory_model = "sc";  ///< sc | tso
  std::uint32_t harts = 1;
  std::uint64_t seed = 1;
  std::vector<std::uint8_t> elf;  ///< decoded ELF image
  std::string elf_sha;            ///< guest_elf_sha(elf)
};

/// Content hash of a guest binary: SHA-256 of the decoded bytes truncated
/// to 128 bits, rendered as 32 hex digits. Must be cryptographic: the hash
/// replaces the ELF bytes in the canonical form, so it is the sole cache
/// key for attacker-supplied binaries shared across clients (sharded LRU,
/// disk tier, fleet routing) — an engineered collision would serve one
/// binary's cached response for a different binary.
std::string guest_elf_sha(std::string_view elf_bytes);

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string id;  ///< echoed back verbatim; never part of the cache key
  PointQuery point;
  AdviseQuery advise;
  CalibrateQuery calibrate;
  GuestQuery guest;

  /// True for kinds whose responses are deterministic functions of the
  /// canonical request and therefore cacheable.
  bool cacheable() const noexcept {
    return kind == RequestKind::kPredict || kind == RequestKind::kAdvise ||
           kind == RequestKind::kCalibrate || kind == RequestKind::kSimulate ||
           kind == RequestKind::kRunGuest;
  }
};

/// Parses one request line. On failure returns nullopt and fills @p error
/// with a one-line diagnostic (sent back as an error response).
std::optional<Request> parse_request(std::string_view line, std::string* error);

/// The canonical compact-JSON form of @p r (see file comment). Excludes the
/// id; includes only the members the request's kind/mode consumes.
std::string canonical_request(const Request& r);

/// Stable cache key: two independent splitmix64-chained hashes of the
/// canonical form, rendered as 32 hex digits (the same collision posture as
/// the sweep result cache).
std::string request_cache_key(const Request& r);

/// splitmix64-chained hash of @p bytes with @p seed_salt folded in first.
std::uint64_t chain_hash(std::string_view bytes,
                         std::uint64_t seed_salt) noexcept;

// --- response envelopes ------------------------------------------------------
// Responses keep a fixed member order so identical results serialize to
// identical bytes: {"v","id"?,"kind","ok",("result"|"error")}.

/// Success envelope wrapping an already-serialized result object.
std::string make_result_response(const Request& r,
                                 const std::string& result_json);

/// Error envelope; @p id may be empty (omitted from the line).
std::string make_error_response(const std::string& id,
                                const std::string& message);

// Machine-readable error codes carried in coded error envelopes. Plain
// handler errors (bad request members, simulation failures) stay uncoded;
// codes name *serving-layer* conditions a client is expected to branch on
// (retry, back off, shrink the request).
namespace errcode {
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kUnavailable = "unavailable";
inline constexpr const char* kTimeout = "timeout";
inline constexpr const char* kRequestTooLarge = "request_too_large";
/// run_guest failures that are properties of the *guest binary or its
/// execution* (bad ELF, illegal instruction, cycle budget), as opposed to a
/// malformed request line. Clients branch on this to distinguish "my binary
/// is broken" from "the service is unhealthy".
inline constexpr const char* kGuestError = "guest_error";
}  // namespace errcode

/// Coded error envelope: {"v","id"?,"ok":false,"code","error"}. @p code is
/// one of the errcode constants; clients dispatch on it instead of parsing
/// the human-readable message.
std::string make_error_response(const std::string& id, const std::string& code,
                                const std::string& message);

/// The "code" member of an error envelope line, or empty when absent (plain
/// errors, success envelopes, unparseable lines).
std::string response_error_code(std::string_view response_line);

}  // namespace am::service
