#include "service/net.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace am::service {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Resolves host/port and applies @p fn to each candidate address until one
/// yields a usable fd. @p passive selects bind-side resolution.
template <typename Fn>
int with_resolved(const std::string& host, std::uint16_t port, bool passive,
                  std::string* error, Fn fn) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string port_str = std::to_string(port);
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "cannot resolve " + host + ": " + gai_strerror(rc);
    }
    return -1;
  }
  int fd = -1;
  std::string last_error = "no addresses for " + host;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = fn(ai, &last_error);
    if (fd >= 0) break;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && error != nullptr) *error = last_error;
  return fd;
}

int unix_socket(const Endpoint& ep, sockaddr_un* addr, std::string* error) {
  if (ep.path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + ep.path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("socket");
    return -1;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, ep.path.c_str(), ep.path.size());
  return fd;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(const std::string& spec,
                                       std::string* error) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      if (error != nullptr) *error = "empty unix socket path in: " + spec;
      return std::nullopt;
    }
    return ep;
  }
  const auto colon = spec.find_last_of(':');
  if (colon == std::string::npos || colon == 0) {
    if (error != nullptr) {
      *error = "expected host:port or unix:path, got: " + spec;
    }
    return std::nullopt;
  }
  ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  if (port.empty() ||
      port.find_first_not_of("0123456789") != std::string::npos) {
    if (error != nullptr) *error = "bad port in: " + spec;
    return std::nullopt;
  }
  unsigned long value = 0;
  try {
    value = std::stoul(port);
  } catch (...) {
    value = 65536;  // overflow: rejected below
  }
  if (value > 65535) {
    if (error != nullptr) *error = "port out of range in: " + spec;
    return std::nullopt;
  }
  ep.port = static_cast<std::uint16_t>(value);
  return ep;
}

int listen_on(const Endpoint& ep, std::string* error) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    const int fd = unix_socket(ep, &addr, error);
    if (fd < 0) return -1;
    ::unlink(ep.path.c_str());  // stale socket from a killed daemon
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, SOMAXCONN) < 0) {
      if (error != nullptr) *error = errno_text(ep.to_string().c_str());
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return with_resolved(
      ep.host, ep.port, /*passive=*/true, error,
      [](addrinfo* ai, std::string* last_error) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, 0);
        if (fd < 0) {
          *last_error = errno_text("socket");
          return -1;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
            ::listen(fd, SOMAXCONN) < 0) {
          *last_error = errno_text("bind/listen");
          ::close(fd);
          return -1;
        }
        return fd;
      });
}

int connect_to(const Endpoint& ep, std::string* error) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    const int fd = unix_socket(ep, &addr, error);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (error != nullptr) *error = errno_text(ep.to_string().c_str());
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return with_resolved(
      ep.host, ep.port, /*passive=*/false, error,
      [](addrinfo* ai, std::string* last_error) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, 0);
        if (fd < 0) {
          *last_error = errno_text("socket");
          return -1;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) < 0) {
          *last_error = errno_text("connect");
          ::close(fd);
          return -1;
        }
        return fd;
      });
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // send never legitimately writes nothing
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, 1000);
      if (rc < 0 && errno != EINTR) return false;
      if (rc > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) return false;
      continue;  // rc == 0 (timeout): retry the send; it re-reports EAGAIN
    }
    return false;
  }
  return true;
}

RecvStatus recv_line(int fd, std::string* buffer, std::string* line,
                     std::size_t max_bytes) {
  for (;;) {
    const auto newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return RecvStatus::kOk;
    }
    if (max_bytes != 0 && buffer->size() >= max_bytes) {
      buffer->clear();  // the oversized prefix is unrecoverable garbage
      return RecvStatus::kTooLarge;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
    return RecvStatus::kError;
  }
}

}  // namespace am::service
