// Minimal blocking client for the am-serve/1 protocol: one connection,
// line-oriented request/response. Shared by the am_client CLI, the
// bench_s1_service load generator (each load-generator connection owns one
// ServiceClient) and the fleet router's per-worker connections.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/net.hpp"

namespace am::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  /// Connects (blocking). False with @p error filled on failure.
  bool connect(const Endpoint& ep, std::string* error);

  /// connect() with up to @p retries re-attempts on failure, sleeping an
  /// exponentially growing backoff (base @p backoff_ms, doubled per
  /// attempt, capped at 2s) plus deterministic jitter derived from
  /// @p jitter_seed. Survives the ECONNREFUSED window while a worker
  /// restarts.
  bool connect_retry(const Endpoint& ep, int retries, int backoff_ms,
                     std::uint64_t jitter_seed, std::string* error);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Arms SO_RCVTIMEO/SO_SNDTIMEO on the current connection (and every
  /// later one) so recv_line()/send_line() fail with last_status() ==
  /// RecvStatus::kTimeout instead of blocking forever on a hung peer.
  /// 0 disables the deadline.
  void set_timeout_ms(int timeout_ms);

  /// Caps the receive buffer: a response growing past @p max_bytes without
  /// a newline fails recv_line() with last_status() == kTooLarge instead of
  /// growing the buffer unboundedly. 0 (default) = unlimited.
  void set_max_line_bytes(std::size_t max_bytes) { max_line_bytes_ = max_bytes; }

  /// Outcome of the last recv_line() call (kOk after success).
  RecvStatus last_status() const noexcept { return last_status_; }

  /// Sends one request line ('\n' appended when missing).
  bool send_line(const std::string& line);

  /// Reads the next response line (without the trailing '\n'). False on
  /// EOF/error/timeout before a complete line arrived; last_status() says
  /// which.
  bool recv_line(std::string* line);

  /// send_line + recv_line. Returns nullopt with @p error filled on
  /// transport failure (protocol-level errors come back as error
  /// envelopes, not nullopt).
  std::optional<std::string> roundtrip(const std::string& line,
                                       std::string* error);

 private:
  void apply_timeout();

  int fd_ = -1;
  int timeout_ms_ = 0;
  std::size_t max_line_bytes_ = 0;
  RecvStatus last_status_ = RecvStatus::kOk;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace am::service
