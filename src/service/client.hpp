// Minimal blocking client for the am-serve/1 protocol: one connection,
// line-oriented request/response. Shared by the am_client CLI and the
// bench_s1_service load generator (each load-generator connection owns one
// ServiceClient).
#pragma once

#include <optional>
#include <string>

#include "service/net.hpp"

namespace am::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  /// Connects (blocking). False with @p error filled on failure.
  bool connect(const Endpoint& ep, std::string* error);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends one request line ('\n' appended when missing).
  bool send_line(const std::string& line);

  /// Reads the next response line (without the trailing '\n'). False on
  /// EOF/error before a complete line arrived.
  bool recv_line(std::string* line);

  /// send_line + recv_line. Returns nullopt with @p error filled on
  /// transport failure (protocol-level errors come back as error
  /// envelopes, not nullopt).
  std::optional<std::string> roundtrip(const std::string& line,
                                       std::string* error);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace am::service
