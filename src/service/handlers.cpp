#include "service/handlers.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "common/base64.hpp"
#include "common/json.hpp"
#include "guest/runner.hpp"
#include "model/advisor.hpp"
#include "model/bouncing_model.hpp"
#include "model/calibrate.hpp"
#include "model/params_io.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"

namespace am::service {

namespace {

/// Sim preset + analytic model params for a validated machine name.
/// Machine names were validated at parse time, so lookups cannot fail.
sim::MachineConfig machine_for(const std::string& name) {
  return sim::preset_by_name(name);
}

bench::WorkloadMode workload_mode(const std::string& mode) {
  if (mode == "private") return bench::WorkloadMode::kLowContention;
  if (mode == "mixed") return bench::WorkloadMode::kMixedReadWrite;
  if (mode == "zipf") return bench::WorkloadMode::kZipf;
  return bench::WorkloadMode::kHighContention;
}

void write_prediction(JsonWriter& w, const PointQuery& q,
                      const model::Prediction& p) {
  w.begin_object();
  w.kv("machine", q.machine);
  w.kv("mode", q.mode);
  w.kv("prim", to_string(p.prim));
  w.kv("threads", std::uint64_t{p.threads});
  w.kv("work", p.work);
  w.kv("regime", model::to_string(p.regime));
  w.kv("crossover_work", p.crossover_work);
  w.kv("mean_transfer_cycles", p.mean_transfer_cycles);
  w.kv("hold_cycles", p.hold_cycles);
  w.kv("throughput_ops_per_kcycle", p.throughput_ops_per_kcycle);
  w.kv("throughput_mops", p.throughput_mops);
  w.kv("latency_cycles", p.latency_cycles);
  w.kv("success_rate", p.success_rate);
  w.kv("attempts_per_op", p.attempts_per_op);
  w.kv("fairness_jain", p.fairness_jain);
  w.kv("energy_per_op_nj", p.energy_per_op_nj);
  w.end_object();
}

void write_advice(JsonWriter& w, const model::Advice& a) {
  w.begin_object();
  w.kv("scenario", a.scenario);
  w.kv("recommended", a.recommended);
  w.key("options").begin_array();
  for (const model::Option& o : a.options) {
    w.begin_object();
    w.kv("name", o.name);
    w.kv("throughput_mops", o.throughput_mops);
    w.kv("note", o.note);
    w.end_object();
  }
  w.end_array();
  w.kv("rationale", a.rationale);
  w.end_object();
}

/// ExecutionBackend that replays client-supplied probe measurements. The
/// calibration procedure asks for specific workloads (single-threaded
/// private runs per primitive, a shared FAA thread sweep); this backend
/// answers each from the sample table and reports zero ops for probes the
/// client did not measure, which calibrate() skips.
class SampleReplayBackend final : public bench::ExecutionBackend {
 public:
  SampleReplayBackend(const CalibrateQuery& q, std::uint32_t cores,
                      double freq_ghz)
      : machine_(q.machine), cores_(cores), freq_ghz_(freq_ghz) {
    for (const CalibrateSample& s : q.samples) {
      samples_[key(s.mode == "private", s.prim, s.threads)] = s.cycles_per_op;
    }
  }

  std::string name() const override { return "client"; }
  std::string machine_name() const override { return machine_; }
  std::uint32_t max_threads() const override { return cores_; }
  double freq_ghz() const override { return freq_ghz_; }

 private:
  static std::uint64_t key(bool is_private, Primitive p,
                           std::uint32_t threads) {
    return (std::uint64_t{is_private} << 48) |
           (std::uint64_t{static_cast<std::uint8_t>(p)} << 32) | threads;
  }

  bench::MeasuredRun do_run(const bench::WorkloadConfig& config) override {
    bench::MeasuredRun run;
    run.backend = "client";
    run.machine = machine_;
    run.freq_ghz = freq_ghz_;
    run.threads.resize(config.threads);
    const bool is_private =
        config.mode == bench::WorkloadMode::kLowContention;
    const auto it = samples_.find(key(is_private, config.prim, config.threads));
    if (it == samples_.end()) return run;  // unmeasured probe: zero ops
    // Synthesize a run whose cycles-per-op ratio is exactly the client's
    // sample: 1e6 ops over cycles_per_op * 1e6 cycles.
    constexpr std::uint64_t kOps = 1'000'000;
    run.duration_cycles = it->second * static_cast<double>(kOps);
    run.threads[0].ops = kOps;
    run.threads[0].successes = kOps;
    run.threads[0].attempts = kOps;
    return run;
  }

  std::string machine_;
  std::uint32_t cores_;
  double freq_ghz_;
  std::map<std::uint64_t, double> samples_;
};

}  // namespace

ServiceCore::ServiceCore(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards) {
  if (config_.metrics) {
    cache_.attach_metrics(obs::metrics::default_registry());
  }
}

void ServiceCore::append_stats(JsonWriter& w) const {
  const CacheCounters cache = cache_.counters();
  w.key("cache").begin_object();
  w.kv("capacity", std::uint64_t{cache_.capacity()});
  w.kv("shards", std::uint64_t{cache_.shard_count()});
  w.kv("entries", cache.entries);
  w.kv("hits", cache.hits);
  w.kv("misses", cache.misses);
  w.kv("insertions", cache.insertions);
  w.kv("evictions", cache.evictions);
  const std::uint64_t lookups = cache.hits + cache.misses;
  w.kv("hit_rate", lookups > 0
                       ? static_cast<double>(cache.hits) /
                             static_cast<double>(lookups)
                       : 0.0);
  w.end_object();
}

ServiceCore::HandleResult ServiceCore::handle(const Request& r,
                                              const RequestContext* ctx) {
  HandleResult out;
  if (r.kind == RequestKind::kPing) {
    out.response = make_result_response(r, "{\"pong\":true}");
    return out;
  }

  std::string key;
  if (r.cacheable()) {
    key = request_cache_key(r);
    if (auto cached = cache_.get(key)) {
      out.response = make_result_response(r, *cached);
      out.cache_hit = true;
      return out;
    }
  }

  std::string error;
  std::string error_code;
  std::string result;
  switch (r.kind) {
    case RequestKind::kPredict: result = run_predict(r.point, &error); break;
    case RequestKind::kAdvise: result = run_advise(r.advise, &error); break;
    case RequestKind::kCalibrate:
      result = run_calibrate(r.calibrate, &error);
      break;
    case RequestKind::kSimulate:
      result = run_simulate(r.point, &error, ctx);
      break;
    case RequestKind::kRunGuest:
      result = run_guest(r.guest, &error, &error_code, ctx);
      break;
    case RequestKind::kStats:
    case RequestKind::kPing:
    case RequestKind::kMetrics:
      error = "kind not handled by ServiceCore";
      break;
  }
  if (!error.empty()) {
    out.response = error_code.empty()
                       ? make_error_response(r.id, error)
                       : make_error_response(r.id, error_code, error);
    out.ok = false;
    return out;
  }
  if (!key.empty()) cache_.put(key, result);
  out.response = make_result_response(r, result);
  return out;
}

std::string ServiceCore::run_predict(const PointQuery& q, std::string* error) {
  const sim::MachineConfig mc = machine_for(q.machine);
  if (q.threads > mc.cores) {
    *error = "threads=" + std::to_string(q.threads) + " exceeds " + q.machine +
             "'s " + std::to_string(mc.cores) + " cores";
    return "";
  }
  // A fresh model per request keeps predict() reentrant: BouncingModel's
  // hand-off cache mutates on use, so instances are never shared between
  // worker threads.
  const model::BouncingModel model(model::ModelParams::from_machine(mc));
  model::Prediction p;
  if (q.mode == "private") {
    p = model.predict_private(q.prim, q.threads, q.work);
  } else if (q.mode == "mixed") {
    p = model.predict_mixed(q.prim, q.write_fraction, q.threads, q.work);
  } else if (q.mode == "zipf") {
    p = model.predict_zipf(q.prim, q.threads, q.work,
                           static_cast<std::size_t>(q.zipf_lines), q.zipf_s);
  } else {
    p = model.predict(q.prim, q.threads, q.work);
  }
  std::ostringstream os;
  JsonWriter w(os);
  write_prediction(w, q, p);
  return os.str();
}

std::string ServiceCore::run_advise(const AdviseQuery& q, std::string* error) {
  const sim::MachineConfig mc = machine_for(q.machine);
  if (q.threads > mc.cores) {
    *error = "threads=" + std::to_string(q.threads) + " exceeds " + q.machine +
             "'s " + std::to_string(mc.cores) + " cores";
    return "";
  }
  const model::BouncingModel model(model::ModelParams::from_machine(mc));
  std::ostringstream os;
  JsonWriter w(os);
  if (q.target == "backoff") {
    const double backoff = model::recommended_backoff_cycles(model, q.threads);
    w.begin_object();
    w.kv("machine", q.machine);
    w.kv("threads", std::uint64_t{q.threads});
    w.kv("backoff_cycles", backoff);
    w.kv("crossover_work",
         model.crossover_work(Primitive::kCasLoop, q.threads));
    w.end_object();
  } else if (q.target == "lock") {
    write_advice(w, model::advise_lock(model, q.threads, q.critical,
                                       q.outside));
  } else {
    write_advice(w, model::advise_counter(model, q.threads, q.work));
  }
  return os.str();
}

std::string ServiceCore::run_calibrate(const CalibrateQuery& q,
                                       std::string* error) {
  const sim::MachineConfig mc = machine_for(q.machine);
  const model::ModelParams skeleton = model::ModelParams::from_machine(mc);
  SampleReplayBackend backend(q, mc.cores, mc.freq_ghz);

  // The client's shared-sweep thread counts drive the transfer fit; probing
  // only what was measured keeps the fit exactly as informative as the
  // samples.
  model::CalibrationOptions options;
  for (const CalibrateSample& s : q.samples) {
    if (s.mode == "shared" && s.threads >= 2) {
      options.sweep_threads.push_back(s.threads);
    }
  }
  if (options.sweep_threads.empty()) {
    // Without an explicit sweep, calibrate() would probe its default thread
    // counts against the replay backend's zero-op blanks and fit noise.
    bench::clear_run_log();
    *error = "calibration failed: need at least one shared FAA sample with "
             "threads >= 2 plus private local-cost samples";
    return "";
  }
  const model::Calibration cal = model::calibrate(backend, skeleton, options);
  // The replay backend routed its runs into the process-wide run log (the
  // daemon never reads it); drop them so a long-lived server stays bounded.
  bench::clear_run_log();
  if (!cal.ok) {
    *error = "calibration failed: need at least one shared FAA sample with "
             "threads >= 2 plus private local-cost samples";
    return "";
  }

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("machine", q.machine);
  w.kv("backend", cal.backend);
  w.kv("ok", cal.ok);
  w.kv("t_near", cal.t_near);
  w.kv("t_far", cal.t_far);
  w.kv("fit_r_squared", cal.fit_r_squared);
  w.kv("hop_fit", cal.hop_fit);
  if (cal.hop_fit) {
    w.kv("t_base", cal.t_base);
    w.kv("t_per_hop", cal.t_per_hop);
    w.kv("hop_fit_r_squared", cal.hop_fit_r_squared);
  }
  w.key("local_cost").begin_object();
  for (Primitive p : all_primitives()) {
    w.kv(to_string(p), cal.local_cost[static_cast<std::size_t>(p)]);
  }
  w.end_object();
  // The calibrated parameter set in the amp1 persistence format: clients
  // save this once and load it in later runs (params_io round-trips it).
  std::ostringstream amp;
  model::save_params(cal.apply_to(skeleton), amp);
  w.kv("amp1", amp.str());
  w.kv("log", cal.log);
  w.end_object();
  return os.str();
}

bench::WorkloadConfig simulate_workload(const PointQuery& q) {
  bench::WorkloadConfig workload;
  workload.mode = workload_mode(q.mode);
  workload.prim = q.prim;
  workload.threads = q.threads;
  workload.work = static_cast<bench::Cycles>(q.work);
  workload.write_fraction = q.write_fraction;
  workload.zipf_lines = static_cast<std::size_t>(q.zipf_lines);
  workload.zipf_s = q.zipf_s;
  return workload;
}

std::string ServiceCore::run_simulate(const PointQuery& q, std::string* error,
                                      const RequestContext* ctx) {
  const sim::MachineConfig mc = machine_for(q.machine);
  if (q.threads > mc.cores) {
    *error = "threads=" + std::to_string(q.threads) + " exceeds " + q.machine +
             "'s " + std::to_string(mc.cores) + " cores";
    return "";
  }

  const bench::WorkloadConfig workload = simulate_workload(q);

  bench::SweepOptions opts;
  opts.jobs = 1;
  opts.cache_dir = config_.sim_cache_dir;
  opts.base_seed = q.seed;
  const std::int64_t budget = config_.max_point_cycles;
  // Trace continuity: a sink in the request context makes the simulator's
  // protocol-level events (issue/grant/done per coherence transaction) land
  // in the same trace file as the server's request span, so a slow simulate
  // can be drilled into by request id. Cached/journal hits run no machine
  // and emit nothing — response bytes are identical either way.
  obs::TraceSink* trace = ctx != nullptr ? ctx->trace : nullptr;
  bench::SweepEngine engine(
      [&mc, budget, trace](std::uint64_t seed) {
        bench::SimBackendOptions options;
        if (budget >= 0) {
          options.watchdog.max_cycles =
              budget > 0 ? static_cast<sim::Cycles>(budget)
                         : 64 * (options.warmup_cycles +
                                 options.measure_cycles);
          options.watchdog.progress_events = 1'000'000;
        }
        auto backend = std::make_unique<bench::SimBackend>(mc, options, seed);
        if (trace != nullptr) backend->set_sink(trace);
        return backend;
      },
      opts);
  const std::size_t index = engine.submit(workload);
  engine.drain();
  // drain() flushed the run into the process-wide run log, which the daemon
  // never reads; drop it so a long-lived server stays bounded.
  bench::clear_run_log();

  const bench::PointOutcome outcome = engine.outcome(index);
  const bench::MeasuredRun* run = engine.result_or_null(index);
  if (run == nullptr) {
    *error = std::string("simulation ") + bench::to_string(outcome.status) +
             (outcome.message.empty() ? "" : ": " + outcome.message);
    return "";
  }
  return render_simulate_result(q, *run);
}

std::string ServiceCore::run_guest(const GuestQuery& q, std::string* error,
                                   std::string* error_code,
                                   const RequestContext* ctx) {
  // Per-request counters; registration is idempotent, so resolving them
  // here (the cold path — a cache hit never reaches run_guest) is fine.
  obs::metrics::Registry& reg = obs::metrics::default_registry();
  obs::metrics::Counter* runs =
      config_.metrics
          ? &reg.counter("am_guest_runs_total", "run_guest executions")
          : nullptr;
  obs::metrics::Counter* errors =
      config_.metrics ? &reg.counter("am_guest_errors_total",
                                     "run_guest executions that failed")
                      : nullptr;
  obs::metrics::Counter* instret =
      config_.metrics ? &reg.counter("am_guest_instructions_total",
                                     "guest instructions retired")
                      : nullptr;
  obs::metrics::Counter* cycles =
      config_.metrics ? &reg.counter("am_guest_cycles_total",
                                     "simulated cycles spent on guest runs")
                      : nullptr;
  if (runs != nullptr) runs->inc();

  guest::GuestRunConfig config;
  config.backend = "sim:" + q.machine + ":" + q.memory_model;
  config.harts = q.harts;
  config.seed = q.seed;
  config.max_cycles = config_.guest_max_cycles;
  config.guest.max_instructions = config_.guest_max_instructions;
  config.guest.max_stdout_bytes = 4096;  // response-size guard
  config.trace = ctx != nullptr ? ctx->trace : nullptr;

  const guest::GuestRunResult result =
      guest::run_guest(q.elf.data(), q.elf.size(), config);

  if (instret != nullptr) instret->inc(result.total_instructions);
  if (cycles != nullptr) cycles->inc(result.completion_cycles);
  if (!result.error.ok()) {
    if (errors != nullptr) errors->inc();
    *error = result.error.code + ": " + result.error.message;
    *error_code = errcode::kGuestError;
    return "";
  }

  const bench::MeasuredRun run = guest::to_measured_run(result);
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("machine", q.machine);
  w.kv("memory_model", q.memory_model);
  w.kv("harts", std::uint64_t{q.harts});
  w.kv("seed", q.seed);
  w.kv("elf_sha", q.elf_sha);
  w.kv("completion_cycles", result.completion_cycles);
  w.kv("instructions", result.total_instructions);
  w.kv("atomics", result.total_atomics);
  w.kv("yields", result.total_yields);
  w.kv("sc_failures", result.total_sc_failures);
  w.kv("guest_ipc", result.instructions_per_cycle());
  w.kv("atomics_per_kcycle", result.atomics_per_kcycle());
  w.key("hart_reports").begin_array();
  for (const guest::HartReport& h : result.hart_reports) {
    w.begin_object();
    w.kv("exit_code", std::uint64_t{h.exit_code});
    w.kv("instructions", h.instructions);
    w.kv("atomics", h.atomics);
    w.kv("sc_failures", h.sc_failures);
    w.end_object();
  }
  w.end_array();
  w.key("transfers").begin_object();
  w.kv("local_hit", run.transfers[0]);
  w.kv("near", run.transfers[1]);
  w.kv("far", run.transfers[2]);
  w.kv("memory", run.transfers[3]);
  w.end_object();
  w.kv("invalidations", run.invalidations);
  w.kv("memory_fetches", run.memory_fetches);
  if (run.energy_valid) {
    w.kv("energy_package_j", run.energy_package_j);
  } else {
    w.kv_null("energy_package_j");
  }
  // Guest stdout may be arbitrary bytes; ship it base64 so the response
  // line stays valid JSON regardless of what the binary printed.
  w.kv("stdout_b64", base64_encode(result.stdout_bytes));
  w.end_object();
  return os.str();
}

std::string render_simulate_result(const PointQuery& q,
                                   const bench::MeasuredRun& run) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("machine", q.machine);
  w.kv("mode", q.mode);
  w.kv("prim", to_string(q.prim));
  w.kv("threads", std::uint64_t{q.threads});
  w.kv("work", q.work);
  w.kv("seed", q.seed);
  w.kv("duration_cycles", run.duration_cycles);
  w.kv("total_ops", run.total_ops());
  w.kv("total_attempts", run.total_attempts());
  w.kv("throughput_ops_per_kcycle", run.throughput_ops_per_kcycle());
  w.kv("throughput_mops", run.throughput_mops());
  w.kv("mean_latency_cycles", run.mean_latency_cycles());
  w.kv("success_rate", run.success_rate());
  w.kv("attempts_per_op", run.attempts_per_op());
  w.kv("fairness_jain", run.jain_fairness());
  w.key("transfers").begin_object();
  w.kv("local_hit", run.transfers[0]);
  w.kv("near", run.transfers[1]);
  w.kv("far", run.transfers[2]);
  w.kv("memory", run.transfers[3]);
  w.end_object();
  w.kv("invalidations", run.invalidations);
  w.kv("memory_fetches", run.memory_fetches);
  w.kv("evictions", run.evictions);
  if (run.energy_valid) {
    w.kv("energy_per_op_nj", run.energy_per_op_nj());
  } else {
    w.kv_null("energy_per_op_nj");
  }
  w.end_object();
  return os.str();
}

}  // namespace am::service
