// Socket endpoints for the am-serve daemon and its clients.
//
// One grammar covers both transports:
//   host:port    TCP (port 0 asks the kernel for an ephemeral port, which
//                 bound_port() then reports — the test harness relies on it)
//   unix:path    Unix-domain stream socket at path
// parse_endpoint() accepts exactly the strings CliParser::kEndpoint flags
// validate, so a flag that parsed always yields an Endpoint here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace am::service {

struct Endpoint {
  enum class Kind : std::uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";
  std::uint16_t port = 7787;
  std::string path;  ///< unix-domain socket path (kUnix)

  std::string to_string() const;
};

/// Parses "host:port" / "unix:path". Returns nullopt and fills @p error on
/// malformed specs (bad port, empty host/path).
std::optional<Endpoint> parse_endpoint(const std::string& spec,
                                       std::string* error = nullptr);

/// Binds and listens on @p ep. Returns the listening fd, or -1 with
/// @p error filled. Unix endpoints unlink a pre-existing socket file first
/// (stale leftovers from a killed daemon).
int listen_on(const Endpoint& ep, std::string* error);

/// Blocking connect to @p ep. Returns the connected fd, or -1 with @p error
/// filled.
int connect_to(const Endpoint& ep, std::string* error);

/// Port a bound TCP socket actually listens on (resolves port 0 after
/// listen_on). Returns 0 on failure or for unix sockets.
std::uint16_t bound_port(int fd);

/// Writes all of @p data to @p fd, retrying short writes, EINTR and EAGAIN
/// (waits for writability); returns false on a hard error or peer close.
bool write_all(int fd, const std::string& data);

/// Outcome of a bounded line read (see recv_line).
enum class RecvStatus : std::uint8_t {
  kOk,        ///< one full line extracted into *line
  kClosed,    ///< peer closed cleanly before a newline arrived
  kError,     ///< hard socket error (errno-level failure)
  kTimeout,   ///< EAGAIN/EWOULDBLOCK on a socket with SO_RCVTIMEO armed
  kTooLarge,  ///< buffered bytes exceeded max_bytes with no newline
};

/// Reads from @p fd into @p buffer until it holds a '\n', then moves the
/// first line (newline stripped) into @p *line, leaving any over-read tail
/// in @p buffer for the next call. EINTR is retried; EAGAIN/EWOULDBLOCK is
/// reported as kTimeout (meaningful when the caller armed SO_RCVTIMEO).
/// The buffer is capped at @p max_bytes (0 = unlimited): exceeding it
/// without a newline yields kTooLarge and clears the buffer, so the caller
/// can answer with a structured `request_too_large` error instead of
/// growing without bound.
RecvStatus recv_line(int fd, std::string* buffer, std::string* line,
                     std::size_t max_bytes = 0);

}  // namespace am::service
