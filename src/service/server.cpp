#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/rolling.hpp"

namespace am::service {

namespace {

// Process-wide shutdown self-pipe. Signal handlers may only call
// async-signal-safe functions; write(2) on a pre-created pipe qualifies,
// poll(2) on its read end wakes the poller. Created once, on first use.
std::atomic<int> g_shutdown_write{-1};
int g_shutdown_read = -1;

void ensure_shutdown_pipe() {
  if (g_shutdown_write.load(std::memory_order_acquire) >= 0) return;
  int fds[2];
  if (::pipe(fds) != 0) return;
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  g_shutdown_read = fds[0];
  g_shutdown_write.store(fds[1], std::memory_order_release);
}

void drain_fd(int fd) {
  char buf[64];
  while (::read(fd, buf, sizeof buf) > 0) {
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Server-side instruments plus the rolling-window machinery. Instruments
/// live in the process-wide default registry — one scrape shows request
/// counters next to the simulator/sweep/cache counters the handlers bump —
/// and are interned once here; the per-request cost is relaxed fetch-adds.
struct Server::Telemetry {
  explicit Telemetry(obs::metrics::Registry& reg) : windows(reg) {
    namespace m = obs::metrics;
    static constexpr const char* kKinds[kRequestKindCount] = {
        "predict", "advise", "calibrate", "simulate",
        "stats",   "ping",   "metrics",   "run_guest"};
    for (std::size_t i = 0; i < kRequestKindCount; ++i) {
      by_kind[i] =
          &reg.counter("am_server_requests_total", "Requests handled, by kind",
                       {{"kind", kKinds[i]}});
    }
    responses = &reg.counter("am_server_responses_total",
                             "Response lines written (incl. parse errors)");
    parse_errors = &reg.counter("am_server_parse_errors_total",
                                "Request lines that failed to parse");
    handler_errors = &reg.counter("am_server_handler_errors_total",
                                  "Parsed requests answered with an error");
    cache_hit_responses =
        &reg.counter("am_server_cache_hit_responses_total",
                     "Responses served from the prediction cache");
    accepted = &reg.counter("am_server_connections_accepted_total",
                            "Client connections accepted");
    slow_requests = &reg.counter(
        "am_server_slow_requests_total",
        "Requests over the --slow-request-us latency threshold");
    latency = &reg.histogram("am_server_request_latency_us",
                             "Service latency per request (microseconds)");
    active_connections =
        &reg.gauge("am_server_active_connections", "Open client connections");
    uptime_seconds =
        &reg.gauge("am_server_uptime_seconds", "Seconds since start()");
    // The cache / simulator counters consulted for derived scrape families;
    // interning here guarantees they exist even before any handler ran.
    cache_hits = &reg.counter("am_cache_hits_total",
                              "Prediction-cache lookups served from memory");
    cache_misses =
        &reg.counter("am_cache_misses_total",
                     "Prediction-cache lookups that fell through");
    sim_cycles = &reg.counter("am_sim_cycles_total",
                              "Simulated cycles elapsed across all runs");
  }

  obs::metrics::Counter* by_kind[kRequestKindCount] = {};
  obs::metrics::Counter* responses = nullptr;
  obs::metrics::Counter* parse_errors = nullptr;
  obs::metrics::Counter* handler_errors = nullptr;
  obs::metrics::Counter* cache_hit_responses = nullptr;
  obs::metrics::Counter* accepted = nullptr;
  obs::metrics::Counter* slow_requests = nullptr;
  obs::metrics::Histogram* latency = nullptr;
  obs::metrics::Gauge* active_connections = nullptr;
  obs::metrics::Gauge* uptime_seconds = nullptr;
  obs::metrics::Counter* cache_hits = nullptr;
  obs::metrics::Counter* cache_misses = nullptr;
  obs::metrics::Counter* sim_cycles = nullptr;

  obs::metrics::RollingWindows windows;
  std::thread sampler;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
};

Server::Server(RequestHandler& handler, ServerConfig config)
    : handler_(handler), config_(std::move(config)) {
  if (config_.service_threads == 0) config_.service_threads = 1;
  ensure_shutdown_pipe();
}

Server::~Server() {
  wait();
  for (const int fd : listen_fds_) ::close(fd);
  for (const Endpoint& ep : bound_) {
    if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Server::request_shutdown() noexcept {
  const int fd = g_shutdown_write.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool Server::start(std::string* error) {
  if (config_.listen.empty()) {
    if (error != nullptr) *error = "no endpoints to listen on";
    return false;
  }
  if (g_shutdown_read < 0) {
    if (error != nullptr) *error = "cannot create shutdown pipe";
    return false;
  }
  drain_fd(g_shutdown_read);  // stale requests from a previous server
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) *error = "cannot create wakeup pipe";
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  for (const Endpoint& ep : config_.listen) {
    const int fd = listen_on(ep, error);
    if (fd < 0) {
      for (const int open : listen_fds_) ::close(open);
      listen_fds_.clear();
      bound_.clear();
      return false;
    }
    set_nonblocking(fd);
    listen_fds_.push_back(fd);
    Endpoint resolved = ep;
    if (resolved.kind == Endpoint::Kind::kTcp && resolved.port == 0) {
      resolved.port = bound_port(fd);
    }
    bound_.push_back(resolved);
  }

  start_time_ = std::chrono::steady_clock::now();
  if (config_.metrics) {
    telemetry_ = std::make_unique<Telemetry>(obs::metrics::default_registry());
    telemetry_->windows.sample(0);  // t=0 baseline: windows answer from boot
    telemetry_->sampler = std::thread([this] {
      Telemetry& t = *telemetry_;
      std::unique_lock<std::mutex> lock(t.mu);
      while (!t.stop) {
        t.cv.wait_for(lock, std::chrono::milliseconds(250));
        if (t.stop) break;
        lock.unlock();
        t.windows.sample(uptime_ms());
        lock.lock();
      }
    });
  }
  for (unsigned i = 0; i < config_.service_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  poller_ = std::thread([this] { poll_loop(); });
  started_ = true;
  return true;
}

void Server::wait() {
  if (!started_ || joined_) return;
  poller_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_workers_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (telemetry_ != nullptr && telemetry_->sampler.joinable()) {
    {
      std::lock_guard<std::mutex> lock(telemetry_->mu);
      telemetry_->stop = true;
    }
    telemetry_->cv.notify_all();
    telemetry_->sampler.join();
  }
  joined_ = true;
}

std::uint64_t Server::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void Server::poll_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  std::uint32_t next_conn_id = 1;

  for (;;) {
    fds.clear();
    polled.clear();
    fds.push_back({g_shutdown_read, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    bool any_busy = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_) {
        for (const int fd : listen_fds_) fds.push_back({fd, POLLIN, 0});
      }
      for (const auto& conn : connections_) {
        if (conn->busy || !conn->pending.empty()) any_busy = true;
        // While draining, stop reading request bytes entirely: in-flight and
        // already-received requests finish, but a closed-loop client cannot
        // keep the drain alive by sending more.
        if (!conn->busy && !conn->close_after && !draining_) {
          fds.push_back({conn->fd, POLLIN, 0});
          polled.push_back(conn);
        }
      }
      if (draining_ && !any_busy) {
        // Drained: nothing in flight, nothing queued. Idle connections are
        // closed here rather than served further.
        for (const auto& conn : connections_) ::close(conn->fd);
        connections_.clear();
        return;
      }
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (rc < 0 && errno != EINTR) return;

    if ((fds[0].revents & POLLIN) != 0) {
      drain_fd(g_shutdown_read);
      bool entered_drain = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!draining_) {
          draining_ = true;
          entered_drain = true;
          for (const int fd : listen_fds_) ::close(fd);
          listen_fds_.clear();
        }
      }
      // Outside mu_: a forwarding handler's drain may block on its workers.
      if (entered_drain) handler_.on_drain();
      continue;  // re-evaluate: maybe nothing is in flight and we can exit
    }

    if ((fds[1].revents & POLLIN) != 0) {
      drain_fd(wake_pipe_[0]);
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        Connection& conn = **it;
        if (conn.done) {
          conn.done = false;
          conn.busy = false;
          if (!conn.pending.empty()) dispatch_locked(conn);
        }
        if (!conn.busy && conn.pending.empty() && conn.close_after) {
          ::close(conn.fd);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }

    // Accept on every ready listener (index offset: shutdown + wake pipes,
    // then listeners in order — only when not draining).
    std::size_t idx = 2;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_) {
        for (std::size_t i = 0; i < listen_fds_.size(); ++i, ++idx) {
          if ((fds[idx].revents & POLLIN) == 0) continue;
          for (;;) {
            const int cfd = ::accept(listen_fds_[i], nullptr, nullptr);
            if (cfd < 0) break;
            set_nonblocking(cfd);
            auto conn = std::make_shared<Connection>();
            conn->fd = cfd;
            conn->id = next_conn_id++;
            connections_.push_back(std::move(conn));
            {
              std::lock_guard<std::mutex> slock(stats_mu_);
              ++accepted_;
            }
            if (telemetry_ != nullptr) telemetry_->accepted->inc();
          }
        }
      }
    }

    for (std::size_t p = 0; p < polled.size(); ++p, ++idx) {
      if (idx >= fds.size()) break;
      if ((fds[idx].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      handle_readable(*polled[p]);
    }
  }
}

void Server::handle_readable(Connection& conn) {
  char buf[16384];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.buffer.append(buf, static_cast<std::size_t>(n));
      if (conn.buffer.size() > config_.max_line_bytes) {
        // Oversized line: answer once, then hang up. The buffer cannot be
        // resynchronized to the next line boundary reliably.
        write_all(conn.fd,
                  make_error_response("", errcode::kRequestTooLarge,
                                      "request line exceeds " +
                                          std::to_string(
                                              config_.max_line_bytes) +
                                          " bytes"));
        eof = true;
        break;
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;
    break;
  }

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn.buffer.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn.buffer.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) conn.pending.push_back(std::move(line));
    start = nl + 1;
  }
  conn.buffer.erase(0, start);
  if (eof) conn.close_after = true;
  if (!conn.busy && !conn.pending.empty()) dispatch_locked(conn);
  if (eof && !conn.busy && conn.pending.empty()) {
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->get() == &conn) {
        ::close(conn.fd);
        connections_.erase(it);
        break;
      }
    }
  }
}

void Server::dispatch_locked(Connection& conn) {
  conn.busy = true;
  for (const auto& c : connections_) {
    if (c.get() == &conn) {
      job_queue_.push_back(c);
      break;
    }
  }
  job_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this] { return stop_workers_ || !job_queue_.empty(); });
      if (job_queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      conn = std::move(job_queue_.front());
      job_queue_.pop_front();
    }
    process(std::move(conn));
  }
}

void Server::process(std::shared_ptr<Connection> conn) {
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->pending.empty()) {
      conn->done = true;
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
      return;
    }
    line = std::move(conn->pending.front());
    conn->pending.pop_front();
  }

  const auto t0 = std::chrono::steady_clock::now();
  // The request id is minted when the line is dequeued, before any handler
  // runs, so the trace events a simulate emits mid-flight and the request's
  // own issue/done span agree on the id.
  std::uint64_t req_id = 0;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    req_id = ++next_req_id_;
  }
  std::string response;
  RequestKind kind = RequestKind::kPing;
  bool ok = true;
  bool cache_hit = false;

  std::string parse_error;
  const std::optional<Request> request = parse_request(line, &parse_error);
  if (!request.has_value()) {
    response = make_error_response("", parse_error);
    ok = false;
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++parse_errors_;
  } else {
    kind = request->kind;
    if (request->kind == RequestKind::kStats) {
      response = make_result_response(*request, stats_json());
    } else if (request->kind == RequestKind::kMetrics) {
      // Prometheus text travels inside the JSON envelope: the protocol stays
      // one-line-JSON-per-request, scrapers unwrap result.text.
      std::string body = "{\"content_type\":\"text/plain; version=0.0.4\","
                         "\"text\":\"";
      body += json_escape(metrics_text());
      body += "\"}";
      response = make_result_response(*request, body);
    } else {
      const RequestContext ctx{req_id, config_.trace};
      HandleResult result = handler_.handle(*request, line, &ctx);
      response = std::move(result.response);
      ok = result.ok;
      cache_hit = result.cache_hit;
    }
  }

  write_all(conn->fd, response);
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  record_request(kind, request.has_value(), ok, cache_hit, latency_us,
                 conn->id, req_id);
  if (config_.slow_request_us > 0.0 && latency_us >= config_.slow_request_us) {
    if (telemetry_ != nullptr) telemetry_->slow_requests->inc();
    // One structured line per slow request; req_id is the join key into the
    // trace file.
    std::fprintf(stderr,
                 "{\"slow_request\":true,\"req_id\":%llu,\"kind\":\"%s\","
                 "\"conn\":%u,\"latency_us\":%.1f,\"ok\":%s,"
                 "\"threshold_us\":%.1f}\n",
                 static_cast<unsigned long long>(req_id),
                 request.has_value() ? to_string(kind) : "parse_error",
                 conn->id, latency_us, ok ? "true" : "false",
                 config_.slow_request_us);
  }

  std::lock_guard<std::mutex> lock(mu_);
  conn->done = true;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::record_request(RequestKind kind, bool parsed, bool ok,
                            bool cache_hit, double latency_us,
                            std::uint32_t conn_id, std::uint64_t req_id) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Unparseable lines have no kind; they are tallied as parse_errors only.
    if (parsed) ++requests_by_kind_[static_cast<std::size_t>(kind)];
    if (parsed && !ok) ++handler_errors_;
    if (cache_hit) ++cache_hit_responses_;
    latency_us_.add(latency_us);
  }
  if (telemetry_ != nullptr) {
    Telemetry& t = *telemetry_;
    t.responses->inc();
    if (parsed) {
      t.by_kind[static_cast<std::size_t>(kind)]->inc();
      if (!ok) t.handler_errors->inc();
    } else {
      t.parse_errors->inc();
    }
    if (cache_hit) t.cache_hit_responses->inc();
    t.latency->observe(
        static_cast<std::uint64_t>(latency_us < 0.0 ? 0.0 : latency_us));
  }
  if (config_.trace != nullptr) {
    // One issue/done pair per request on the structured trace seam: the
    // connection plays the core, the request kind the primitive, and the
    // service latency the op latency (microseconds on the cycle axis).
    const auto now_us = static_cast<std::uint64_t>(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_time_)
            .count());
    obs::TraceEvent issue;
    issue.kind = obs::TraceEventKind::kIssue;
    issue.time = now_us - static_cast<std::uint64_t>(latency_us);
    issue.core = conn_id;
    issue.req_id = req_id;
    issue.prim = static_cast<std::uint8_t>(kind);
    obs::TraceEvent done = issue;
    done.kind = obs::TraceEventKind::kOpDone;
    done.time = now_us;
    done.success = ok;
    done.latency = static_cast<std::uint64_t>(latency_us);
    std::lock_guard<std::mutex> lock(stats_mu_);
    config_.trace->on_event(issue);
    config_.trace->on_event(done);
  }
}

std::string Server::stats_json() const {
  std::uint64_t by_kind[kRequestKindCount];
  std::uint64_t parse_errors = 0;
  std::uint64_t handler_errors = 0;
  std::uint64_t cache_hit_responses = 0;
  std::uint64_t accepted = 0;
  double uptime_s = 0.0;
  double lat_count = 0.0, lat_mean = 0.0, lat_p50 = 0.0, lat_p90 = 0.0,
         lat_p99 = 0.0, lat_min = 0.0, lat_max = 0.0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (std::size_t i = 0; i < kRequestKindCount; ++i) {
      by_kind[i] = requests_by_kind_[i];
    }
    parse_errors = parse_errors_;
    handler_errors = handler_errors_;
    cache_hit_responses = cache_hit_responses_;
    accepted = accepted_;
    uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_time_)
                   .count();
    lat_count = static_cast<double>(latency_us_.total_count());
    if (latency_us_.total_count() > 0) {
      lat_mean = latency_us_.mean();
      lat_p50 = latency_us_.value_at_percentile(50.0);
      lat_p90 = latency_us_.value_at_percentile(90.0);
      lat_p99 = latency_us_.value_at_percentile(99.0);
      lat_min = latency_us_.observed_min();
      lat_max = latency_us_.observed_max();
    }
  }
  std::size_t active = 0;
  bool draining = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = connections_.size();
    draining = draining_;
  }

  std::uint64_t total = 0;
  for (const std::uint64_t n : by_kind) total += n;
  total += parse_errors;

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "am-serve-stats/1");
  w.kv("uptime_s", uptime_s);
  // Lifetime average — misleading for a long-lived daemon with bursty load
  // (it decays towards zero between bursts), kept for compatibility. The
  // rolling-window rates next to it are what dashboards should read.
  w.kv("qps", uptime_s > 0.0 ? static_cast<double>(total) / uptime_s : 0.0);
  {
    const double lifetime =
        uptime_s > 0.0 ? static_cast<double>(total) / uptime_s : 0.0;
    double q1 = lifetime, q10 = lifetime, q60 = lifetime;
    if (telemetry_ != nullptr) {
      const std::uint64_t now = uptime_ms();
      if (const auto d = telemetry_->windows.delta(*telemetry_->responses,
                                                   1.0, now)) {
        q1 = d->rate();
      }
      if (const auto d = telemetry_->windows.delta(*telemetry_->responses,
                                                   10.0, now)) {
        q10 = d->rate();
      }
      if (const auto d = telemetry_->windows.delta(*telemetry_->responses,
                                                   60.0, now)) {
        q60 = d->rate();
      }
    }
    w.kv("qps_1s", q1);
    w.kv("qps_10s", q10);
    w.kv("qps_60s", q60);
  }
  w.key("requests").begin_object();
  w.kv("total", total);
  w.kv("predict", by_kind[static_cast<std::size_t>(RequestKind::kPredict)]);
  w.kv("advise", by_kind[static_cast<std::size_t>(RequestKind::kAdvise)]);
  w.kv("calibrate",
       by_kind[static_cast<std::size_t>(RequestKind::kCalibrate)]);
  w.kv("simulate", by_kind[static_cast<std::size_t>(RequestKind::kSimulate)]);
  w.kv("stats", by_kind[static_cast<std::size_t>(RequestKind::kStats)]);
  w.kv("ping", by_kind[static_cast<std::size_t>(RequestKind::kPing)]);
  w.kv("metrics", by_kind[static_cast<std::size_t>(RequestKind::kMetrics)]);
  w.kv("run_guest", by_kind[static_cast<std::size_t>(RequestKind::kRunGuest)]);
  w.kv("parse_errors", parse_errors);
  w.kv("handler_errors", handler_errors);
  w.end_object();
  w.key("latency_us").begin_object();
  w.kv("count", lat_count);
  w.kv("mean", lat_mean);
  w.kv("p50", lat_p50);
  w.kv("p90", lat_p90);
  w.kv("p99", lat_p99);
  w.kv("min", lat_min);
  w.kv("max", lat_max);
  w.end_object();
  handler_.append_stats(w);  // "cache" for ServiceCore, "fleet" for a router
  w.key("connections").begin_object();
  w.kv("accepted", accepted);
  w.kv("active", std::uint64_t{active});
  w.end_object();
  w.kv("service_threads", std::uint64_t{config_.service_threads});
  w.kv("draining", draining);
  w.end_object();
  return os.str();
}

std::string Server::metrics_text() const {
  namespace m = obs::metrics;
  if (telemetry_ != nullptr) {
    // Point-in-time gauges refresh at scrape time — there is no sampler for
    // values that are cheap to read exactly.
    std::size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      active = connections_.size();
    }
    telemetry_->active_connections->set(static_cast<double>(active));
    telemetry_->uptime_seconds->set(static_cast<double>(uptime_ms()) /
                                    1000.0);
  }

  std::string out;
  m::PromWriter w(out);
  m::render_prometheus(m::default_registry(), w);
  if (telemetry_ == nullptr) return out;

  // Derived rolling-window families. These are scrape-time arithmetic over
  // the snapshot ring — the write path never sees them.
  Telemetry& t = *telemetry_;
  const std::uint64_t now = uptime_ms();
  struct Win {
    const char* label;
    double seconds;
  };
  static constexpr Win kWins[] = {{"1s", 1.0}, {"10s", 10.0}, {"60s", 60.0}};

  w.family("am_qps", "Requests per second over a rolling window",
           m::Type::kGauge);
  for (const Win& win : kWins) {
    const auto d = t.windows.delta(*t.responses, win.seconds, now);
    w.sample("am_qps", {{"window", win.label}}, d ? d->rate() : 0.0);
  }

  w.family("am_request_latency_window_us",
           "Request latency quantiles over a rolling window (microseconds)",
           m::Type::kGauge);
  for (const Win& win : kWins) {
    const auto h = t.windows.histogram_delta(*t.latency, win.seconds, now);
    for (const double q : {50.0, 90.0, 99.0}) {
      char qbuf[8];
      std::snprintf(qbuf, sizeof qbuf, "%g", q / 100.0);
      w.sample("am_request_latency_window_us",
               {{"window", win.label}, {"quantile", qbuf}},
               h ? h->percentile(q) : 0.0);
    }
  }

  w.family("am_cache_hit_ratio",
           "Prediction-cache hit ratio over a rolling window",
           m::Type::kGauge);
  for (const Win& win : kWins) {
    const auto hits = t.windows.delta(*t.cache_hits, win.seconds, now);
    const auto misses = t.windows.delta(*t.cache_misses, win.seconds, now);
    const double h = hits ? static_cast<double>(hits->count) : 0.0;
    const double miss = misses ? static_cast<double>(misses->count) : 0.0;
    w.sample("am_cache_hit_ratio", {{"window", win.label}},
             h + miss > 0.0 ? h / (h + miss) : 0.0);
  }

  w.family("am_sim_cycles_per_second",
           "Simulated cycles retired per wall-clock second (rolling)",
           m::Type::kGauge);
  for (const Win& win : kWins) {
    const auto d = t.windows.delta(*t.sim_cycles, win.seconds, now);
    w.sample("am_sim_cycles_per_second", {{"window", win.label}},
             d ? d->rate() : 0.0);
  }
  return out;
}

}  // namespace am::service
