#include "service/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench_core/sweep.hpp"  // splitmix64
#include "common/base64.hpp"
#include "common/json.hpp"
#include "common/sha256.hpp"

namespace am::service {

namespace {

/// Canonical number rendering: integers print without a fraction, other
/// values go through the writer's %.12g convention. Keeps "16", "16.0" and
/// "1.6e1" canonically identical.
std::string canon_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

/// Field extraction with error accumulation; every getter appends to @p err
/// on type/domain violations so one parse reports every problem at once.
struct Fields {
  const JsonValue& obj;
  std::string& err;

  void fail(const std::string& m) {
    if (!err.empty()) err += "; ";
    err += m;
  }

  std::string get_string(const char* key, const std::string& def) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return def;
    if (v->type() != JsonValue::Type::kString) {
      fail(std::string(key) + " must be a string");
      return def;
    }
    return v->as_string();
  }

  double get_number(const char* key, double def, double lo, double hi) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return def;
    if (v->type() != JsonValue::Type::kNumber) {
      fail(std::string(key) + " must be a number");
      return def;
    }
    const double x = v->as_number();
    if (!(x >= lo && x <= hi)) {
      fail(std::string(key) + " out of range [" + canon_number(lo) + ", " +
           canon_number(hi) + "]");
      return def;
    }
    return x;
  }

  std::uint64_t get_uint(const char* key, std::uint64_t def,
                         std::uint64_t lo, std::uint64_t hi) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return def;
    if (v->type() != JsonValue::Type::kNumber ||
        v->as_number() != std::floor(v->as_number()) || v->as_number() < 0) {
      fail(std::string(key) + " must be a non-negative integer");
      return def;
    }
    const auto x = static_cast<std::uint64_t>(v->as_number());
    if (x < lo || x > hi) {
      fail(std::string(key) + " out of range");
      return def;
    }
    return x;
  }
};

bool valid_machine(const std::string& m) {
  return m == "xeon" || m == "knl" || m == "test";
}

std::optional<Primitive> parse_prim_loose(const std::string& name) {
  return parse_primitive(upper(name));
}

void parse_point(Fields& f, PointQuery& q, bool is_simulate) {
  q.machine = lower(f.get_string("machine", q.machine));
  if (!valid_machine(q.machine)) f.fail("machine must be xeon|knl|test");
  q.mode = lower(f.get_string("mode", q.mode));
  if (q.mode != "shared" && q.mode != "private" && q.mode != "mixed" &&
      q.mode != "zipf") {
    f.fail("mode must be shared|private|mixed|zipf");
  }
  const std::string prim = f.get_string("prim", to_string(q.prim));
  if (const auto p = parse_prim_loose(prim)) {
    q.prim = *p;
  } else {
    f.fail("unknown prim '" + prim + "'");
  }
  q.threads = static_cast<std::uint32_t>(f.get_uint("threads", 1, 1, 1024));
  q.work = f.get_number("work", 0.0, 0.0, 1e12);
  if (q.mode == "mixed") {
    q.write_fraction = f.get_number("write_fraction", 0.1, 0.0, 1.0);
  }
  if (q.mode == "zipf") {
    q.zipf_lines = f.get_uint("zipf_lines", 64, 1, 1u << 20);
    q.zipf_s = f.get_number("zipf_s", 0.99, 0.0, 10.0);
  }
  if (is_simulate) q.seed = f.get_uint("seed", 1, 0, ~std::uint64_t{0});
}

void parse_advise(Fields& f, AdviseQuery& q) {
  q.machine = lower(f.get_string("machine", q.machine));
  if (!valid_machine(q.machine)) f.fail("machine must be xeon|knl|test");
  q.target = lower(f.get_string("target", q.target));
  if (q.target != "counter" && q.target != "lock" && q.target != "backoff") {
    f.fail("target must be counter|lock|backoff");
  }
  q.threads = static_cast<std::uint32_t>(f.get_uint("threads", 1, 1, 1024));
  if (q.target == "counter") q.work = f.get_number("work", 0.0, 0.0, 1e12);
  if (q.target == "lock") {
    q.critical = f.get_number("critical", 100.0, 0.0, 1e12);
    q.outside = f.get_number("outside", 0.0, 0.0, 1e12);
  }
}

void parse_calibrate(Fields& f, CalibrateQuery& q) {
  q.machine = lower(f.get_string("machine", q.machine));
  if (!valid_machine(q.machine)) f.fail("machine must be xeon|knl|test");
  const JsonValue* samples = f.obj.find("samples");
  if (samples == nullptr || samples->type() != JsonValue::Type::kArray) {
    f.fail("samples must be an array");
    return;
  }
  if (samples->size() > 4096) {
    f.fail("too many samples (max 4096)");
    return;
  }
  for (std::size_t i = 0; i < samples->size(); ++i) {
    const JsonValue* s = samples->at(i);
    if (s->type() != JsonValue::Type::kObject) {
      f.fail("samples[" + std::to_string(i) + "] must be an object");
      continue;
    }
    Fields sf{*s, f.err};
    CalibrateSample out;
    out.mode = lower(sf.get_string("mode", "private"));
    if (out.mode != "private" && out.mode != "shared") {
      f.fail("sample mode must be private|shared");
    }
    const std::string prim = sf.get_string("prim", "FAA");
    if (const auto p = parse_prim_loose(prim)) {
      out.prim = *p;
    } else {
      f.fail("unknown sample prim '" + prim + "'");
    }
    out.threads =
        static_cast<std::uint32_t>(sf.get_uint("threads", 1, 1, 1024));
    out.cycles_per_op = sf.get_number("cycles_per_op", 0.0, 1e-9, 1e12);
    q.samples.push_back(std::move(out));
  }
  if (q.samples.empty()) f.fail("samples must not be empty");
}

void parse_guest(Fields& f, GuestQuery& q) {
  q.machine = lower(f.get_string("machine", q.machine));
  if (!valid_machine(q.machine)) f.fail("machine must be xeon|knl|test");
  q.memory_model = lower(f.get_string("memory_model", q.memory_model));
  if (q.memory_model != "sc" && q.memory_model != "tso") {
    f.fail("memory_model must be sc|tso");
  }
  q.harts = static_cast<std::uint32_t>(f.get_uint("harts", 1, 1, 256));
  q.seed = f.get_uint("seed", 1, 0, ~std::uint64_t{0});
  const std::string b64 = f.get_string("elf", "");
  if (b64.empty()) {
    f.fail("elf (base64) is required");
    return;
  }
  std::string decoded;
  if (!base64_decode(b64, &decoded)) {
    f.fail("elf is not valid base64");
    return;
  }
  if (decoded.empty() || decoded.size() > kMaxGuestElfBytes) {
    f.fail("elf must decode to 1.." + std::to_string(kMaxGuestElfBytes) +
           " bytes");
    return;
  }
  q.elf.assign(decoded.begin(), decoded.end());
  q.elf_sha = guest_elf_sha(decoded);
}

}  // namespace

const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kPredict: return "predict";
    case RequestKind::kAdvise: return "advise";
    case RequestKind::kCalibrate: return "calibrate";
    case RequestKind::kSimulate: return "simulate";
    case RequestKind::kStats: return "stats";
    case RequestKind::kPing: return "ping";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kRunGuest: return "run_guest";
  }
  return "?";
}

std::optional<RequestKind> parse_kind(std::string_view name) noexcept {
  for (RequestKind k :
       {RequestKind::kPredict, RequestKind::kAdvise, RequestKind::kCalibrate,
        RequestKind::kSimulate, RequestKind::kStats, RequestKind::kPing,
        RequestKind::kMetrics, RequestKind::kRunGuest}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  auto fail = [&](const std::string& m) -> std::optional<Request> {
    if (error != nullptr) *error = m;
    return std::nullopt;
  };
  std::string parse_err;
  const auto doc = JsonValue::parse(line, &parse_err);
  if (!doc.has_value()) return fail("malformed JSON: " + parse_err);
  if (doc->type() != JsonValue::Type::kObject) {
    return fail("request must be a JSON object");
  }

  std::string err;
  Fields f{*doc, err};
  const std::string version = f.get_string("v", kProtocolVersion);
  if (version != kProtocolVersion) {
    return fail("unsupported protocol version '" + version + "'");
  }

  Request r;
  r.id = f.get_string("id", "");
  const std::string kind = lower(f.get_string("kind", ""));
  const auto k = parse_kind(kind);
  if (!k.has_value()) {
    return fail("unknown kind '" + kind +
                "' (want predict|advise|calibrate|simulate|stats|ping|"
                "metrics|run_guest)");
  }
  r.kind = *k;

  switch (r.kind) {
    case RequestKind::kPredict:
      parse_point(f, r.point, /*is_simulate=*/false);
      break;
    case RequestKind::kSimulate:
      parse_point(f, r.point, /*is_simulate=*/true);
      break;
    case RequestKind::kAdvise:
      parse_advise(f, r.advise);
      break;
    case RequestKind::kCalibrate:
      parse_calibrate(f, r.calibrate);
      break;
    case RequestKind::kRunGuest:
      parse_guest(f, r.guest);
      break;
    case RequestKind::kStats:
    case RequestKind::kPing:
    case RequestKind::kMetrics:
      break;
  }
  if (!err.empty()) return fail(err);
  return r;
}

std::string canonical_request(const Request& r) {
  // Built by hand (not through JsonWriter): every member here is a
  // controlled token, and the canonical form must never drift with writer
  // formatting changes — it is hashed into cache keys.
  std::string s = "{\"kind\":\"";
  s += to_string(r.kind);
  s += '"';
  auto str = [&s](const char* k, const std::string& v) {
    s += ",\"";
    s += k;
    s += "\":\"";
    s += v;
    s += '"';
  };
  auto num = [&s](const char* k, double v) {
    s += ",\"";
    s += k;
    s += "\":";
    s += canon_number(v);
  };
  auto uint = [&s](const char* k, std::uint64_t v) {
    s += ",\"";
    s += k;
    s += "\":";
    s += std::to_string(v);
  };
  switch (r.kind) {
    case RequestKind::kPredict:
    case RequestKind::kSimulate: {
      const PointQuery& q = r.point;
      str("machine", q.machine);
      str("mode", q.mode);
      str("prim", am::to_string(q.prim));
      uint("threads", q.threads);
      num("work", q.work);
      if (q.mode == "mixed") num("write_fraction", q.write_fraction);
      if (q.mode == "zipf") {
        uint("zipf_lines", q.zipf_lines);
        num("zipf_s", q.zipf_s);
      }
      if (r.kind == RequestKind::kSimulate) uint("seed", q.seed);
      break;
    }
    case RequestKind::kAdvise: {
      const AdviseQuery& q = r.advise;
      str("machine", q.machine);
      str("target", q.target);
      uint("threads", q.threads);
      if (q.target == "counter") num("work", q.work);
      if (q.target == "lock") {
        num("critical", q.critical);
        num("outside", q.outside);
      }
      break;
    }
    case RequestKind::kCalibrate: {
      const CalibrateQuery& q = r.calibrate;
      str("machine", q.machine);
      s += ",\"samples\":[";
      for (std::size_t i = 0; i < q.samples.size(); ++i) {
        const CalibrateSample& sm = q.samples[i];
        if (i > 0) s += ',';
        s += "{\"mode\":\"" + sm.mode + "\",\"prim\":\"";
        s += am::to_string(sm.prim);
        s += "\",\"threads\":" + std::to_string(sm.threads) +
             ",\"cycles_per_op\":" + canon_number(sm.cycles_per_op) + "}";
      }
      s += ']';
      break;
    }
    case RequestKind::kRunGuest: {
      const GuestQuery& q = r.guest;
      str("machine", q.machine);
      str("memory_model", q.memory_model);
      uint("harts", q.harts);
      uint("seed", q.seed);
      // The binary participates via its content hash, not its (possibly
      // re-encoded) base64 spelling — see GuestQuery.
      str("elf_sha", q.elf_sha);
      break;
    }
    case RequestKind::kStats:
    case RequestKind::kPing:
    case RequestKind::kMetrics:
      break;
  }
  s += '}';
  return s;
}

std::string guest_elf_sha(std::string_view elf_bytes) {
  return sha256_hex(elf_bytes, 16);
}

std::uint64_t chain_hash(std::string_view bytes,
                         std::uint64_t seed_salt) noexcept {
  // splitmix64 chaining in 8-byte chunks: the same finalizer the sweep
  // engine uses for per-point seeds, applied as a running mix.
  std::uint64_t h = bench::splitmix64(seed_salt ^ bytes.size());
  std::size_t i = 0;
  while (i + 8 <= bytes.size()) {
    std::uint64_t chunk = 0;
    for (int b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[i + b]))
               << (8 * b);
    }
    h = bench::splitmix64(h ^ chunk);
    i += 8;
  }
  std::uint64_t tail = 0;
  int shift = 0;
  for (; i < bytes.size(); ++i, shift += 8) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
            << shift;
  }
  return bench::splitmix64(h ^ tail);
}

std::string request_cache_key(const Request& r) {
  const std::string canon = canonical_request(r);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(
                    chain_hash(canon, 0x616d2d7365727665ull)),  // "am-serve"
                static_cast<unsigned long long>(
                    chain_hash(canon, 0x2f31000000000000ull))); // "/1"
  return buf;
}

std::string make_result_response(const Request& r,
                                 const std::string& result_json) {
  std::string out = "{\"v\":\"";
  out += kProtocolVersion;
  out += "\"";
  if (!r.id.empty()) {
    out += ",\"id\":\"" + json_escape(r.id) + "\"";
  }
  out += ",\"kind\":\"";
  out += to_string(r.kind);
  out += "\",\"ok\":true,\"result\":";
  out += result_json;
  out += "}\n";
  return out;
}

std::string make_error_response(const std::string& id,
                                const std::string& message) {
  std::string out = "{\"v\":\"";
  out += kProtocolVersion;
  out += "\"";
  if (!id.empty()) out += ",\"id\":\"" + json_escape(id) + "\"";
  out += ",\"ok\":false,\"error\":\"" + json_escape(message) + "\"}\n";
  return out;
}

std::string make_error_response(const std::string& id, const std::string& code,
                                const std::string& message) {
  std::string out = "{\"v\":\"";
  out += kProtocolVersion;
  out += "\"";
  if (!id.empty()) out += ",\"id\":\"" + json_escape(id) + "\"";
  out += ",\"ok\":false,\"code\":\"" + json_escape(code) +
         "\",\"error\":\"" + json_escape(message) + "\"}\n";
  return out;
}

std::string response_error_code(std::string_view response_line) {
  const auto doc = JsonValue::parse(std::string(response_line));
  if (!doc.has_value()) return "";
  const JsonValue* ok = doc->find("ok");
  if (ok == nullptr || ok->as_bool()) return "";
  const JsonValue* code = doc->find("code");
  if (code == nullptr || code->type() != JsonValue::Type::kString) return "";
  return code->as_string();
}

}  // namespace am::service
