// Sharded LRU prediction cache.
//
// The daemon's hot path is "canonical key -> serialized result"; this cache
// keeps the most recently used results in memory in front of the (much
// slower) model/simulator handlers. Sharding by key hash keeps lock
// contention off the serving threads: each shard has its own mutex, map and
// recency list, so concurrent lookups of different keys rarely collide.
// Counters (hits / misses / insertions / evictions) are maintained per
// shard under the shard lock and summed on demand for the stats endpoint.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace am::service {

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< current resident entries (snapshot)
};

class ShardedLruCache {
 public:
  /// @param capacity  total entry budget across all shards (0 disables
  ///                  caching: every get misses, every put is dropped).
  /// @param shards    shard count; rounded up to a power of two, capped so
  ///                  every shard holds at least one entry.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16);

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) @p key. Evicts the shard's least recently used
  /// entry when the shard is at capacity.
  void put(const std::string& key, std::string value);

  /// Counters summed over all shards.
  CacheCounters counters() const;

  /// Mirrors hit/miss/insert/evict events into registry counters (named
  /// am_cache_<event>s_total) so scrapes see cache activity without polling
  /// counters(). The shard already holds its mutex when an event fires, so
  /// the mirror is one extra relaxed fetch-add per event. Call before the
  /// cache is shared across threads; passing the same registry twice is
  /// idempotent (instruments are interned by name).
  void attach_metrics(obs::metrics::Registry& registry);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most recent at the front; pairs of (key, value).
    std::list<std::pair<std::string, std::string>> order;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry mirrors; null until attach_metrics(). Instruments are immortal
  // (owned by the registry), so raw pointers are safe.
  obs::metrics::Counter* m_hits_ = nullptr;
  obs::metrics::Counter* m_misses_ = nullptr;
  obs::metrics::Counter* m_insertions_ = nullptr;
  obs::metrics::Counter* m_evictions_ = nullptr;
};

}  // namespace am::service
