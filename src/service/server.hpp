// The am_serve daemon's network engine.
//
// Architecture: one poller thread multiplexes every listening socket and
// every *idle* connection with poll(2); complete request lines are handed to
// a bounded worker pool (--service-threads). A connection has at most one
// request in flight — while a worker owns it, its fd is not polled, so a
// slow simulate on one connection never blocks service to the others, and
// a closed-loop load generator with many more connections than workers
// queues at the server instead of deadlocking it. Workers write the
// response themselves (they are the only owner of the connection at that
// point) and re-arm the fd through a wakeup pipe.
//
// Shutdown: request_shutdown() is async-signal-safe (one write(2) to a
// self-pipe) and is what the SIGTERM/SIGINT handlers call. The poller then
// stops accepting, closes idle connections, lets in-flight and
// already-received requests finish, and wait() returns — a clean drain.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "service/handlers.hpp"
#include "service/net.hpp"

namespace am::service {

struct ServerConfig {
  std::vector<Endpoint> listen;     ///< bound in order; all serve requests
  unsigned service_threads = 4;     ///< worker pool width (>= 1)
  std::size_t max_line_bytes = 1 << 20;  ///< request-line size cap
  /// Per-request structured logging: a kIssue event when a request line is
  /// dequeued and a kOpDone with the service latency when its response is
  /// written; simulate requests additionally stream their machine's
  /// protocol events through the same sink. Not owned; nullptr disables.
  /// Must be thread-safe (wrap in obs::SynchronizedTraceSink) — workers and
  /// embedded simulator runs emit concurrently.
  obs::TraceSink* trace = nullptr;
  /// Registers server instruments in obs::metrics::default_registry() and
  /// runs the rolling-window sampler thread. Off for overhead A/B runs.
  bool metrics = true;
  /// Requests whose service latency exceeds this many microseconds are
  /// logged to stderr as one structured JSON line each. 0 disables.
  double slow_request_us = 0.0;
};

class Server {
 public:
  /// @p handler outlives the server; it is shared by every worker thread.
  /// A ServiceCore makes this a one-process daemon; a fleet::Router makes
  /// it the supervisor's front door.
  Server(RequestHandler& handler, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds every configured endpoint and starts the poller + workers.
  /// False (with @p error filled) when any bind fails; nothing keeps
  /// running in that case.
  bool start(std::string* error);

  /// Blocks until a drain completes (request_shutdown()), then joins every
  /// thread. Idempotent.
  void wait();

  /// Async-signal-safe shutdown request; callable from signal handlers.
  static void request_shutdown() noexcept;

  /// Endpoints actually bound — TCP port 0 is resolved to the kernel's
  /// ephemeral choice. Valid after start().
  const std::vector<Endpoint>& bound_endpoints() const noexcept {
    return bound_;
  }

  /// The stats response body (also served to `{"kind":"stats"}` requests).
  std::string stats_json() const;

  /// Prometheus text exposition (format 0.0.4): every instrument in
  /// obs::metrics::default_registry() plus scrape-time derived families
  /// (rolling qps, window latency quantiles, cache hit ratio, simulated
  /// cycles/s). Served to `{"kind":"metrics"}` requests wrapped in a JSON
  /// envelope as result.text.
  std::string metrics_text() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint32_t id = 0;
    std::string buffer;              ///< bytes read, not yet split
    std::deque<std::string> pending; ///< complete lines awaiting a worker
    bool busy = false;               ///< a worker owns this connection
    bool done = false;               ///< worker finished; poller must re-arm
    bool close_after = false;        ///< EOF/overflow seen; close when idle
  };

  void poll_loop();
  void worker_loop();
  void handle_readable(Connection& conn);
  void dispatch_locked(Connection& conn);
  void process(std::shared_ptr<Connection> conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void record_request(RequestKind kind, bool parsed, bool ok, bool cache_hit,
                      double latency_us, std::uint32_t conn_id,
                      std::uint64_t req_id);
  /// Milliseconds of steady-clock time since start() — the rolling-window
  /// sampler's clock.
  std::uint64_t uptime_ms() const;

  RequestHandler& handler_;
  ServerConfig config_;
  std::vector<int> listen_fds_;
  std::vector<Endpoint> bound_;
  int wake_pipe_[2] = {-1, -1};

  std::thread poller_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool joined_ = false;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::deque<std::shared_ptr<Connection>> job_queue_;
  bool stop_workers_ = false;
  bool draining_ = false;

  // --- stats (guarded by stats_mu_) ---------------------------------------
  mutable std::mutex stats_mu_;
  std::uint64_t requests_by_kind_[kRequestKindCount] = {};
  std::uint64_t parse_errors_ = 0;
  std::uint64_t handler_errors_ = 0;
  std::uint64_t cache_hit_responses_ = 0;
  std::uint64_t accepted_ = 0;
  LogHistogram latency_us_{0.1, 1e8, 16};
  std::chrono::steady_clock::time_point start_time_;
  std::uint64_t next_req_id_ = 0;

  // --- telemetry (registry instruments + rolling windows) ------------------
  // Defined in server.cpp; created by start() when config_.metrics. The
  // instruments live in the process-wide default registry (so simulator and
  // sweep counters appear in the same scrape); Telemetry holds borrowed
  // pointers plus the sampler thread feeding the snapshot ring.
  struct Telemetry;
  std::unique_ptr<Telemetry> telemetry_;

  std::condition_variable job_cv_;
};

}  // namespace am::service
