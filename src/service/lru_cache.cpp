#include "service/lru_cache.hpp"

#include "service/protocol.hpp"  // chain_hash

namespace am::service {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  // Never more shards than capacity: a shard with a zero budget would
  // evict everything it is handed.
  while (n > 1 && capacity_ / n == 0) n >>= 1;
  per_shard_capacity_ = capacity_ == 0 ? 0 : capacity_ / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedLruCache::Shard& ShardedLruCache::shard_for(const std::string& key) {
  const std::uint64_t h = chain_hash(key, 0x73686172645f6c72ull);  // "shard_lr"
  return *shards_[h & (shards_.size() - 1)];
}

void ShardedLruCache::attach_metrics(obs::metrics::Registry& registry) {
  m_hits_ = &registry.counter("am_cache_hits_total",
                              "Prediction-cache lookups served from memory");
  m_misses_ = &registry.counter("am_cache_misses_total",
                                "Prediction-cache lookups that fell through");
  m_insertions_ = &registry.counter("am_cache_insertions_total",
                                    "Prediction-cache entries inserted");
  m_evictions_ = &registry.counter(
      "am_cache_evictions_total", "Prediction-cache entries evicted (LRU)");
}

std::optional<std::string> ShardedLruCache::get(const std::string& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    if (m_misses_ != nullptr) m_misses_->inc();
    return std::nullopt;
  }
  ++s.hits;
  if (m_hits_ != nullptr) m_hits_->inc();
  // Refresh recency: splice the node to the front without reallocating.
  s.order.splice(s.order.begin(), s.order, it->second);
  return it->second->second;
}

void ShardedLruCache::put(const std::string& key, std::string value) {
  if (per_shard_capacity_ == 0) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    it->second->second = std::move(value);
    s.order.splice(s.order.begin(), s.order, it->second);
    return;
  }
  s.order.emplace_front(key, std::move(value));
  s.index[key] = s.order.begin();
  ++s.insertions;
  if (m_insertions_ != nullptr) m_insertions_->inc();
  while (s.order.size() > per_shard_capacity_) {
    s.index.erase(s.order.back().first);
    s.order.pop_back();
    ++s.evictions;
    if (m_evictions_ != nullptr) m_evictions_->inc();
  }
}

CacheCounters ShardedLruCache::counters() const {
  CacheCounters out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->order.size();
  }
  return out;
}

}  // namespace am::service
