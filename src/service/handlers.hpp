// Request execution for the am-serve daemon.
//
// ServiceCore is the transport-free heart of the service: it takes a parsed
// Request, consults the sharded LRU prediction cache, and computes misses
// with the repo's existing engines —
//   predict   -> model::BouncingModel closed forms,
//   advise    -> model::advise_counter / advise_lock /
//                recommended_backoff_cycles,
//   calibrate -> model::calibrate over a backend that replays the client's
//                probe samples (serving per-machine calibrated parameter
//                sets instead of recomputing them per query),
//   simulate  -> a bounded sim::Machine run dispatched through a
//                single-point SweepEngine with the watchdog armed and the
//                on-disk sweep result cache attached, so repeated deep
//                queries are served from disk exactly like sweep points.
// Results are serialized once and cached as bytes, which is what makes
// responses byte-identical across worker threads and cache temperature.
//
// The transport (Server) talks to handlers through the RequestHandler
// interface, so the same poll loop can front either a ServiceCore (one
// worker process) or a fleet::Router (the supervisor's forwarding tier).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bench_core/result.hpp"
#include "bench_core/workload.hpp"
#include "obs/trace.hpp"
#include "service/lru_cache.hpp"
#include "service/protocol.hpp"

namespace am {
class JsonWriter;
}  // namespace am

namespace am::service {

/// Per-request observability context, minted by the transport when a request
/// line is dequeued. Carried through the handlers so a simulate run's
/// protocol-level trace events land in the same sink (and on the same
/// timeline) as the server's own request span.
struct RequestContext {
  std::uint64_t req_id = 0;          ///< server-wide request sequence number
  obs::TraceSink* trace = nullptr;   ///< shared sink; must be thread-safe
};

struct HandleResult {
  std::string response;  ///< full response line, '\n'-terminated
  bool ok = true;        ///< envelope carried a result (not an error)
  bool cache_hit = false;
};

/// What the Server's worker threads call for every parsed request. @p raw
/// is the original request line exactly as received (no trailing '\n') —
/// a forwarding handler relays it verbatim so the answering worker
/// re-canonicalizes the same bytes and the response (id echo included)
/// stays byte-identical to a direct-served run.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  virtual HandleResult handle(const Request& r, std::string_view raw,
                              const RequestContext* ctx) = 0;

  /// Appends handler-specific sections ("cache", "fleet", ...) into the
  /// stats response object being built. Must be thread-safe: stats requests
  /// run on worker threads.
  virtual void append_stats(JsonWriter& w) const { (void)w; }

  /// Invoked once when the server enters drain (SIGTERM/SIGINT): a
  /// forwarding handler propagates drain to its workers here.
  virtual void on_drain() {}
};

struct ServiceConfig {
  /// Total in-memory prediction cache entries (0 disables).
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 16;
  /// On-disk result cache directory for simulate points (empty disables);
  /// shared format with --sweep-cache, so daemon and batch sweeps can share
  /// a cache directory.
  std::string sim_cache_dir;
  /// Per-simulation watchdog budget in simulated cycles: 0 = auto (64x the
  /// warmup+measure window), negative = watchdog off. Mirrors
  /// --max-point-cycles.
  std::int64_t max_point_cycles = 0;
  /// Mirror prediction-cache hit/miss/insert/evict events into
  /// obs::metrics::default_registry() counters.
  bool metrics = true;
  /// run_guest resource ceilings, service-side (the CLI runs with larger
  /// defaults): simulated-cycle window and total guest-instruction budget
  /// per request. A guest still running at either cap gets a coded
  /// guest_error response.
  std::uint64_t guest_max_cycles = 50'000'000;
  std::uint64_t guest_max_instructions = 20'000'000;
};

class ServiceCore final : public RequestHandler {
 public:
  explicit ServiceCore(ServiceConfig config);

  /// Back-compat alias: callers historically named the result through the
  /// class (ServiceCore::HandleResult).
  using HandleResult = am::service::HandleResult;

  /// Executes @p r (any kind except kStats/kMetrics, which need server-wide
  /// state and are answered by the Server). Never throws: failures become
  /// error envelopes. @p ctx is optional observability context; it never
  /// affects response bytes (responses stay byte-identical with and without
  /// tracing attached).
  HandleResult handle(const Request& r, const RequestContext* ctx = nullptr);

  HandleResult handle(const Request& r, std::string_view raw,
                      const RequestContext* ctx) override {
    (void)raw;
    return handle(r, ctx);
  }

  /// Writes the "cache" stats section (hits/misses/size/...).
  void append_stats(JsonWriter& w) const override;

  const ShardedLruCache& cache() const noexcept { return cache_; }
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  std::string run_predict(const PointQuery& q, std::string* error);
  std::string run_advise(const AdviseQuery& q, std::string* error);
  std::string run_calibrate(const CalibrateQuery& q, std::string* error);
  std::string run_simulate(const PointQuery& q, std::string* error,
                           const RequestContext* ctx);
  /// On failure sets @p error_code to errcode::kGuestError and @p error to
  /// "<guest code>: <message>" — guest failures are coded so clients can
  /// tell a broken binary from an unhealthy service.
  std::string run_guest(const GuestQuery& q, std::string* error,
                        std::string* error_code, const RequestContext* ctx);

  ServiceConfig config_;
  ShardedLruCache cache_;
};

/// The exact WorkloadConfig a simulate request runs (also the key half of
/// the sweep disk-cache entry for that request — the fleet's stale-serve
/// path recomputes it to address the shared cache without a live worker).
bench::WorkloadConfig simulate_workload(const PointQuery& q);

/// Serializes a finished simulate run into the result-object JSON the
/// handler caches and returns. Split out so the fleet can render disk-cache
/// hits byte-identically to a worker-served response.
std::string render_simulate_result(const PointQuery& q,
                                   const bench::MeasuredRun& run);

}  // namespace am::service
