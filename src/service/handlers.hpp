// Request execution for the am-serve daemon.
//
// ServiceCore is the transport-free heart of the service: it takes a parsed
// Request, consults the sharded LRU prediction cache, and computes misses
// with the repo's existing engines —
//   predict   -> model::BouncingModel closed forms,
//   advise    -> model::advise_counter / advise_lock /
//                recommended_backoff_cycles,
//   calibrate -> model::calibrate over a backend that replays the client's
//                probe samples (serving per-machine calibrated parameter
//                sets instead of recomputing them per query),
//   simulate  -> a bounded sim::Machine run dispatched through a
//                single-point SweepEngine with the watchdog armed and the
//                on-disk sweep result cache attached, so repeated deep
//                queries are served from disk exactly like sweep points.
// Results are serialized once and cached as bytes, which is what makes
// responses byte-identical across worker threads and cache temperature.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "service/lru_cache.hpp"
#include "service/protocol.hpp"

namespace am::service {

/// Per-request observability context, minted by the transport when a request
/// line is dequeued. Carried through the handlers so a simulate run's
/// protocol-level trace events land in the same sink (and on the same
/// timeline) as the server's own request span.
struct RequestContext {
  std::uint64_t req_id = 0;          ///< server-wide request sequence number
  obs::TraceSink* trace = nullptr;   ///< shared sink; must be thread-safe
};

struct ServiceConfig {
  /// Total in-memory prediction cache entries (0 disables).
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 16;
  /// On-disk result cache directory for simulate points (empty disables);
  /// shared format with --sweep-cache, so daemon and batch sweeps can share
  /// a cache directory.
  std::string sim_cache_dir;
  /// Per-simulation watchdog budget in simulated cycles: 0 = auto (64x the
  /// warmup+measure window), negative = watchdog off. Mirrors
  /// --max-point-cycles.
  std::int64_t max_point_cycles = 0;
  /// Mirror prediction-cache hit/miss/insert/evict events into
  /// obs::metrics::default_registry() counters.
  bool metrics = true;
};

class ServiceCore {
 public:
  explicit ServiceCore(ServiceConfig config);

  struct HandleResult {
    std::string response;  ///< full response line, '\n'-terminated
    bool ok = true;        ///< envelope carried a result (not an error)
    bool cache_hit = false;
  };

  /// Executes @p r (any kind except kStats/kMetrics, which need server-wide
  /// state and are answered by the Server). Never throws: failures become
  /// error envelopes. @p ctx is optional observability context; it never
  /// affects response bytes (responses stay byte-identical with and without
  /// tracing attached).
  HandleResult handle(const Request& r, const RequestContext* ctx = nullptr);

  const ShardedLruCache& cache() const noexcept { return cache_; }
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  std::string run_predict(const PointQuery& q, std::string* error);
  std::string run_advise(const AdviseQuery& q, std::string* error);
  std::string run_calibrate(const CalibrateQuery& q, std::string* error);
  std::string run_simulate(const PointQuery& q, std::string* error,
                           const RequestContext* ctx);

  ServiceConfig config_;
  ShardedLruCache cache_;
};

}  // namespace am::service
