#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace am::service {

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_ms_(other.timeout_ms_),
      max_line_bytes_(other.max_line_bytes_),
      last_status_(other.last_status_),
      buffer_(std::move(other.buffer_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ms_ = other.timeout_ms_;
    max_line_bytes_ = other.max_line_bytes_;
    last_status_ = other.last_status_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

bool ServiceClient::connect(const Endpoint& ep, std::string* error) {
  close();
  fd_ = connect_to(ep, error);
  if (fd_ >= 0) apply_timeout();
  return fd_ >= 0;
}

bool ServiceClient::connect_retry(const Endpoint& ep, int retries,
                                  int backoff_ms, std::uint64_t jitter_seed,
                                  std::string* error) {
  int delay_ms = backoff_ms > 0 ? backoff_ms : 1;
  for (int attempt = 0;; ++attempt) {
    if (connect(ep, error)) return true;
    if (attempt >= retries) return false;
    // splitmix64 step: deterministic jitter in [0, delay_ms) avoids
    // retry-storm synchronization without a global RNG.
    jitter_seed += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = jitter_seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const int jitter = static_cast<int>(z % static_cast<std::uint64_t>(delay_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms + jitter));
    if (delay_ms < 2000) delay_ms = std::min(2000, delay_ms * 2);
  }
}

void ServiceClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void ServiceClient::set_timeout_ms(int timeout_ms) {
  timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
  if (fd_ >= 0) apply_timeout();
}

void ServiceClient::apply_timeout() {
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms_ % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool ServiceClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  if (!line.empty() && line.back() == '\n') return write_all(fd_, line);
  return write_all(fd_, line + "\n");
}

bool ServiceClient::recv_line(std::string* line) {
  if (fd_ < 0) {
    last_status_ = RecvStatus::kError;
    return false;
  }
  last_status_ =
      am::service::recv_line(fd_, &buffer_, line, max_line_bytes_);
  if (last_status_ != RecvStatus::kOk) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

std::optional<std::string> ServiceClient::roundtrip(const std::string& line,
                                                    std::string* error) {
  if (!send_line(line)) {
    if (error != nullptr) *error = "send failed (connection closed?)";
    return std::nullopt;
  }
  std::string response;
  if (!recv_line(&response)) {
    if (error != nullptr) {
      switch (last_status_) {
        case RecvStatus::kTimeout:
          *error = "timed out waiting for response";
          break;
        case RecvStatus::kTooLarge:
          *error = "response line exceeded the configured byte cap";
          break;
        default:
          *error = "connection closed before response";
          break;
      }
    }
    return std::nullopt;
  }
  return response;
}

}  // namespace am::service
