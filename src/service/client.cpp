#include "service/client.hpp"

#include <unistd.h>

#include <cerrno>
#include <utility>

namespace am::service {

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

bool ServiceClient::connect(const Endpoint& ep, std::string* error) {
  close();
  fd_ = connect_to(ep, error);
  return fd_ >= 0;
}

void ServiceClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool ServiceClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  if (!line.empty() && line.back() == '\n') return write_all(fd_, line);
  return write_all(fd_, line + "\n");
}

bool ServiceClient::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char buf[16384];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error mid-line
  }
}

std::optional<std::string> ServiceClient::roundtrip(const std::string& line,
                                                    std::string* error) {
  if (!send_line(line)) {
    if (error != nullptr) *error = "send failed (connection closed?)";
    return std::nullopt;
  }
  std::string response;
  if (!recv_line(&response)) {
    if (error != nullptr) *error = "connection closed before response";
    return std::nullopt;
  }
  return response;
}

}  // namespace am::service
