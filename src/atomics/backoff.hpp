// Backoff policies for retry loops.
//
// One of the design questions the paper's model answers is when backing off
// between CAS retries pays: under heavy contention each failed CAS still
// costs a full line acquisition, so spacing retries out trades individual
// latency for system throughput. The ablation bench (A1) compares these
// policies on CASLOOP and on the TAS/TTAS locks.
#pragma once

#include <cstdint>

#include "common/cpu.hpp"

namespace am {

/// No waiting between retries (the default the primitive figures use).
struct NoBackoff {
  static constexpr const char* name() noexcept { return "none"; }
  void reset() noexcept {}
  void pause() noexcept { cpu_relax(); }
};

/// Bounded exponential backoff: wait doubles on every retry up to a cap.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t min_spins = 4,
                              std::uint32_t max_spins = 1024) noexcept
      : min_(min_spins), max_(max_spins), current_(min_spins) {}

  static constexpr const char* name() noexcept { return "exp"; }

  void reset() noexcept { current_ = min_; }

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < max_) current_ *= 2;
  }

  std::uint32_t current_spins() const noexcept { return current_; }

 private:
  std::uint32_t min_;
  std::uint32_t max_;
  std::uint32_t current_;
};

}  // namespace am
