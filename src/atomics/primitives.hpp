// The atomic primitives under study, expressed uniformly over
// std::atomic<std::uint64_t>.
//
// The paper studies the hardware read-modify-write instructions x86 exposes:
//   CAS  (lock cmpxchg)  — single attempt; can fail under contention
//   FAA  (lock xadd)     — unconditional fetch-and-add, always succeeds
//   SWP  (xchg)          — unconditional exchange
//   TAS  (lock bts/xchg) — test-and-set of one bit/byte
// plus plain atomic LOAD and STORE as the no-RMW baselines, and CASLOOP —
// fetch-and-add emulated with a CAS retry loop — as the canonical software
// pattern whose cost the model explains.
//
// All executors return an OpResult so CAS success/failure can be accounted
// separately, which the paper's CAS figures require.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace am {

enum class Primitive : std::uint8_t {
  kLoad = 0,
  kStore,
  kSwap,
  kTas,
  kFaa,
  kCas,
  kCasLoop,
  /// Full memory fence (mfence): drains the issuing core's store buffer
  /// under the simulator's TSO mode; a compiler/CPU ordering barrier on the
  /// hardware executor. Deliberately NOT in kAllPrimitives — per-primitive
  /// arrays (exec_cost, ThreadStats::ops_by_prim) and their serialized forms
  /// are 7 wide, and widening them would break the fingerprint/digest
  /// byte-identity contract. Fence cost lives in MachineConfig::fence_cost.
  kFence,
};

/// The seven line-targeting primitives of the paper. Drives sweep loops and
/// the 7-wide per-primitive stats/cost arrays; kFence is excluded (see its
/// comment above).
inline constexpr Primitive kAllPrimitives[] = {
    Primitive::kLoad, Primitive::kStore, Primitive::kSwap,  Primitive::kTas,
    Primitive::kFaa,  Primitive::kCas,   Primitive::kCasLoop,
};

/// Primitives that need exclusive (M-state) ownership of the line. LOAD can
/// complete on a Shared copy; FENCE targets no line at all.
constexpr bool needs_exclusive(Primitive p) noexcept {
  return p != Primitive::kLoad && p != Primitive::kFence;
}

/// Read-modify-write primitives (their result depends on the old value).
constexpr bool is_rmw(Primitive p) noexcept {
  return p == Primitive::kSwap || p == Primitive::kTas ||
         p == Primitive::kFaa || p == Primitive::kCas ||
         p == Primitive::kCasLoop;
}

/// Primitives that can fail and therefore may retry at the software level.
constexpr bool can_fail(Primitive p) noexcept { return p == Primitive::kCas; }

const char* to_string(Primitive p) noexcept;
std::optional<Primitive> parse_primitive(const std::string& name) noexcept;

/// Outcome of one primitive invocation.
struct OpResult {
  bool success = true;          ///< false only for a failed single-shot CAS
  std::uint64_t observed = 0;   ///< value read/returned by the primitive
  std::uint32_t attempts = 1;   ///< >1 only for CASLOOP
};

/// Per-thread execution context for the value-dependent primitives.
/// CAS needs the thread's *expectation* of the current value; keeping it
/// here (seeded by an initial load) reproduces the read-then-CAS pattern
/// real code uses, so the measured/simulated failure rate is meaningful.
struct OpContext {
  std::uint64_t expected = 0;   ///< CAS expectation, updated on every attempt
  std::uint64_t store_value = 1;///< value used by STORE/SWP
  /// When set, a successful CAS writes this instead of expected + 1
  /// (pointer-style CAS, e.g. an MCS tail swing).
  std::optional<std::uint64_t> cas_desired;
};

/// Executes one invocation of @p p on @p cell. Never allocates, never
/// blocks; a CASLOOP spins internally until it succeeds.
OpResult execute(Primitive p, std::atomic<std::uint64_t>& cell,
                 OpContext& ctx) noexcept;

/// All primitives as a span (handy for sweep loops in benches/tests).
std::span<const Primitive> all_primitives() noexcept;

}  // namespace am
