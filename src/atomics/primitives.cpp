#include "atomics/primitives.hpp"

namespace am {

const char* to_string(Primitive p) noexcept {
  switch (p) {
    case Primitive::kLoad: return "LOAD";
    case Primitive::kStore: return "STORE";
    case Primitive::kSwap: return "SWP";
    case Primitive::kTas: return "TAS";
    case Primitive::kFaa: return "FAA";
    case Primitive::kCas: return "CAS";
    case Primitive::kCasLoop: return "CASLOOP";
    case Primitive::kFence: return "FENCE";
  }
  return "?";
}

std::optional<Primitive> parse_primitive(const std::string& name) noexcept {
  for (Primitive p : kAllPrimitives) {
    if (name == to_string(p)) return p;
  }
  if (name == "FENCE" || name == "MFENCE") return Primitive::kFence;
  return std::nullopt;
}

std::span<const Primitive> all_primitives() noexcept {
  return kAllPrimitives;
}

OpResult execute(Primitive p, std::atomic<std::uint64_t>& cell,
                 OpContext& ctx) noexcept {
  OpResult r;
  switch (p) {
    case Primitive::kLoad:
      r.observed = cell.load(std::memory_order_acquire);
      ctx.expected = r.observed;
      break;
    case Primitive::kStore:
      cell.store(ctx.store_value, std::memory_order_release);
      r.observed = ctx.store_value;
      break;
    case Primitive::kSwap:
      r.observed = cell.exchange(ctx.store_value, std::memory_order_acq_rel);
      ctx.expected = ctx.store_value;
      break;
    case Primitive::kTas:
      // Byte-granularity test-and-set expressed as exchange with 1; the
      // "test" result is whether the bit was already set.
      r.observed = cell.exchange(1, std::memory_order_acq_rel);
      r.success = (r.observed == 0);  // acquired iff previously clear
      ctx.expected = 1;
      break;
    case Primitive::kFaa:
      r.observed = cell.fetch_add(1, std::memory_order_acq_rel);
      ctx.expected = r.observed + 1;
      break;
    case Primitive::kCas: {
      // Single attempt: expect the value this thread last observed. On
      // failure compare_exchange writes back the current value, refreshing
      // the expectation for the next attempt — exactly the read-CAS pattern.
      std::uint64_t expected = ctx.expected;
      const std::uint64_t desired = ctx.cas_desired.value_or(expected + 1);
      r.success = cell.compare_exchange_strong(
          expected, desired, std::memory_order_acq_rel,
          std::memory_order_acquire);
      r.observed = expected;
      ctx.expected = r.success ? desired : expected;
      break;
    }
    case Primitive::kCasLoop: {
      std::uint64_t expected = cell.load(std::memory_order_acquire);
      std::uint32_t attempts = 0;
      std::uint64_t desired = ctx.cas_desired.value_or(expected + 1);
      while (true) {
        ++attempts;
        if (cell.compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          break;
        }
        // compare_exchange refreshed `expected` with the observed value.
        if (!ctx.cas_desired) desired = expected + 1;
      }
      r.observed = expected;
      r.attempts = attempts;
      ctx.expected = desired;
      break;
    }
    case Primitive::kFence:
      // Hardware executor: a real full barrier. Touches no cell; the context
      // is left untouched so surrounding CAS expectations survive the fence.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      r.observed = 0;
      break;
  }
  return r;
}

}  // namespace am
