// Cache-line-isolated atomic cells and cell arrays.
//
// The experiment's unit of contention is the cache line. PaddedAtomic
// guarantees one atomic per (double-)line; CellArray lays out N of them so
// the high-contention workload (everyone on cell 0) and the low-contention
// workload (thread i on cell i) use identical code paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/cacheline.hpp"

namespace am {

struct alignas(kNoFalseSharingAlign) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};

static_assert(sizeof(PaddedAtomic) == kNoFalseSharingAlign);

class CellArray {
 public:
  explicit CellArray(std::size_t n)
      : cells_(std::make_unique<PaddedAtomic[]>(n)), size_(n) {}

  std::atomic<std::uint64_t>& operator[](std::size_t i) noexcept {
    return cells_[i].value;
  }
  const std::atomic<std::uint64_t>& operator[](std::size_t i) const noexcept {
    return cells_[i].value;
  }

  std::size_t size() const noexcept { return size_; }

  /// Resets every cell to @p v (not atomic w.r.t. concurrent accessors —
  /// only between measurement epochs).
  void fill(std::uint64_t v) noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      cells_[i].value.store(v, std::memory_order_relaxed);
    }
  }

 private:
  std::unique_ptr<PaddedAtomic[]> cells_;
  std::size_t size_;
};

}  // namespace am
