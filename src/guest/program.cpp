#include "guest/program.hpp"

#include <cstdio>

#include "common/random.hpp"

namespace am::guest {

namespace {

// RISC-V Linux syscall numbers (the minimal surface docs/guest.md lists).
constexpr std::uint32_t kSysWrite = 64;
constexpr std::uint32_t kSysExit = 93;
constexpr std::uint32_t kSysExitGroup = 94;
constexpr std::uint32_t kSysClockGettime64 = 403;
constexpr std::uint32_t kSysBrk = 214;

constexpr std::uint32_t kEnosys = static_cast<std::uint32_t>(-38);
constexpr std::uint32_t kEfault = static_cast<std::uint32_t>(-14);
constexpr std::uint32_t kEbadf = static_cast<std::uint32_t>(-9);

std::uint32_t mulh_signed(std::uint32_t a, std::uint32_t b) {
  const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                         static_cast<std::int64_t>(static_cast<std::int32_t>(b));
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
}

std::uint32_t mulh_su(std::uint32_t a, std::uint32_t b) {
  const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                         static_cast<std::int64_t>(static_cast<std::uint64_t>(b));
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
}

std::uint32_t mulh_unsigned(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  return static_cast<std::uint32_t>(p >> 32);
}

}  // namespace

GuestProgram::GuestProgram(GuestImage image, GuestConfig config)
    : image_(std::move(image)),
      config_(config),
      harts_(config.harts),
      reports_(config.harts),
      brk_(image_.brk) {
  text_ = decode_stream(image_.mem, image_.text_base, image_.text_end);
  for (std::uint32_t h = 0; h < config_.harts; ++h) {
    Hart& hart = harts_[h];
    hart.pc = image_.entry;
    const std::uint32_t stack_lo = image_.stacks_base + h * config_.stack_bytes;
    const std::uint32_t stack_hi = stack_lo + config_.stack_bytes;
    // Deterministic splitmix64 fill: reads of uninitialized stack slots see
    // seeded garbage, not convenient zeros, and two runs with the same seed
    // see the same garbage.
    SplitMix64 fill(config_.seed ^ (0x5157u + h));
    for (std::uint32_t addr = stack_lo; addr + 8 <= stack_hi; addr += 8) {
      const std::uint64_t v = fill.next();
      image_.mem.write_raw(addr, &v, 8);
    }
    hart.x[2] = stack_hi - 16;  // sp, 16-byte aligned, top of the hart's stack
    hart.x[10] = h;             // a0 = hart id
    hart.x[11] = config_.harts; // a1 = hart count
  }
}

void GuestProgram::fail(const char* code, std::string message) {
  if (!fatal_) {
    fatal_ = true;
    error_ = GuestError::make(code, std::move(message));
  }
}

void GuestProgram::break_reservations(sim::CoreId core, sim::LineId line) {
  for (std::uint32_t i = 0; i < harts_.size(); ++i) {
    if (i != core && harts_[i].reservation == line) {
      harts_[i].reservation.reset();
    }
  }
}

void GuestProgram::finish_hart(sim::CoreId core, std::uint32_t exit_code) {
  Hart& h = harts_[core];
  if (h.done) return;
  h.done = true;
  reports_[core].exited = true;
  reports_[core].exit_code = exit_code;
  ++exited_harts_;
}

bool GuestProgram::do_syscall(sim::CoreId core, Hart& h) {
  const std::uint32_t nr = h.x[17];  // a7
  switch (nr) {
    case kSysExit:
      finish_hart(core, h.x[10]);
      return false;
    case kSysExitGroup:
      // Ends the whole program: this hart now, the others at their next
      // fetch (they are mid-op inside the machine).
      group_exit_ = true;
      group_exit_code_ = h.x[10];
      finish_hart(core, h.x[10]);
      return false;
    case kSysWrite: {
      const std::uint32_t fd = h.x[10];
      const std::uint32_t buf = h.x[11];
      const std::uint32_t len = h.x[12];
      if (fd != 1 && fd != 2) {
        h.x[10] = kEbadf;
        return true;
      }
      if (len > 0 && !image_.mem.contains(buf, len)) {
        h.x[10] = kEfault;
        return true;
      }
      const std::size_t keep =
          stdout_.size() < config_.max_stdout_bytes
              ? std::min<std::size_t>(len,
                                      config_.max_stdout_bytes - stdout_.size())
              : 0;
      if (keep > 0) {
        const std::size_t at = stdout_.size();
        stdout_.resize(at + keep);
        image_.mem.read_raw(buf, &stdout_[at], static_cast<std::uint32_t>(keep));
      }
      h.x[10] = len;  // short writes never surface to the guest
      return true;
    }
    case kSysClockGettime64: {
      // Deterministic virtual clock: 1 retired instruction == 1 ns. Wall
      // time would break byte-identical replay; the guest only needs a
      // monotonic measure of its own progress. rv32 Linux is time64-only
      // (no nr 113), so this is clock_gettime64 writing the 16-byte
      // __kernel_timespec {i64 tv_sec; i64 tv_nsec} toolchain-built
      // guests expect.
      const std::uint32_t ts = h.x[11];
      const std::uint64_t sec = total_instret_ / 1'000'000'000ull;
      const std::uint64_t nsec = total_instret_ % 1'000'000'000ull;
      image_.mem.store32(ts, static_cast<std::uint32_t>(sec));
      image_.mem.store32(ts + 4, static_cast<std::uint32_t>(sec >> 32));
      image_.mem.store32(ts + 8, static_cast<std::uint32_t>(nsec));
      image_.mem.store32(ts + 12, 0);
      if (!image_.mem.ok()) {
        image_.mem.clear_fault();
        h.x[10] = kEfault;
        return true;
      }
      h.x[10] = 0;
      return true;
    }
    case kSysBrk: {
      const std::uint32_t want = h.x[10];
      if (want >= image_.brk && want <= image_.heap_end) brk_ = want;
      h.x[10] = brk_;
      return true;
    }
    default:
      h.x[10] = kEnosys;
      return true;
  }
}

std::optional<sim::IssueRequest> GuestProgram::next_op(sim::CoreId core,
                                                       Xoshiro256& rng) {
  (void)rng;  // the guest's control flow is its own randomness
  if (fatal_ || core >= harts_.size()) return std::nullopt;
  Hart& h = harts_[core];
  if (h.done) return std::nullopt;
  if (group_exit_) {
    finish_hart(core, group_exit_code_);
    return std::nullopt;
  }

  sim::Cycles work = 0;
  const auto yield_request = [&](Hart::Pending kind) {
    h.pending = kind;
    sim::IssueRequest r;
    r.prim = Primitive::kLoad;
    r.line = scratch_line(core);
    r.work_before = work;
    return r;
  };

  for (;;) {
    if (total_instret_ >= config_.max_instructions) {
      fail(errc::kInstructionBudget,
           "guest exceeded " + std::to_string(config_.max_instructions) +
               " instructions");
      return std::nullopt;
    }
    // 64-bit sum: `h.pc + 4` in uint32 wraps to 0 for pc >= 0xfffffffc,
    // which would pass the check and index text_ ~1G entries out of
    // bounds — and a jalr target is fully guest-controlled.
    if (h.pc < image_.text_base ||
        static_cast<std::uint64_t>(h.pc) + 4 > image_.text_end ||
        h.pc % 4 != 0) {
      fail(errc::kMemFault, "pc outside executable text: " +
                                std::to_string(h.pc));
      return std::nullopt;
    }
    const GuestOp& op = text_[(h.pc - image_.text_base) >> 2];
    ++total_instret_;
    ++reports_[core].instructions;

    const auto wr = [&h](std::uint8_t rd, std::uint32_t v) {
      if (rd != 0) h.x[rd] = v;
    };
    const std::uint32_t rs1 = h.x[op.rs1];
    const std::uint32_t rs2 = h.x[op.rs2];

    // Atomics and fences leave the interpreter: the instruction's value
    // semantics are deferred to on_result (retirement order).
    if (is_atomic_or_fence(op.op)) {
      sim::IssueRequest r;
      r.work_before = work;
      if (op.op == Op::kFence) {
        h.pending = Hart::Pending::kFence;
        h.pending_op = op;
        r.prim = Primitive::kFence;
        return r;
      }
      const std::uint32_t addr = rs1;
      if (addr % 4 != 0) {
        fail(errc::kMisaligned,
             "misaligned atomic at pc=" + std::to_string(h.pc) +
                 " addr=" + std::to_string(addr));
        return std::nullopt;
      }
      if (!image_.mem.contains(addr, 4)) {
        fail(errc::kMemFault, "atomic outside guest memory: addr=" +
                                  std::to_string(addr));
        return std::nullopt;
      }
      h.pending_op = op;
      h.pending_addr = addr;
      h.pending_rs2 = rs2;
      r.line = line_of(addr);
      switch (op.op) {
        case Op::kLrW:
          h.pending = Hart::Pending::kLr;
          r.prim = Primitive::kLoad;
          break;
        case Op::kScW: {
          if (h.reservation != std::optional<sim::LineId>(line_of(addr))) {
            // Guest-authoritative failure without a reservation: no line
            // traffic is modeled (the store never leaves the core), the
            // instruction costs one plain slot.
            h.reservation.reset();
            wr(op.rd, 1);
            ++reports_[core].sc_failures;
            h.pc += 4;
            ++work;
            break;
          }
          h.pending = Hart::Pending::kSc;
          r.prim = Primitive::kCas;
          r.cas_expected = image_.mem.load32(addr);
          r.cas_desired = rs2;
          return r;
        }
        case Op::kAmoCasW:
          h.pending = Hart::Pending::kCas;
          h.pending_expected = h.x[op.rd];
          h.pending_rs2 = rs2;
          r.prim = Primitive::kCas;
          r.cas_expected = h.pending_expected;
          r.cas_desired = rs2;
          return r;
        case Op::kAmoSwapW:
          h.pending = Hart::Pending::kAmo;
          r.prim = Primitive::kSwap;
          r.store_value = rs2;
          return r;
        default:  // the remaining AMOs: unconditional RMW == FAA timing
          h.pending = Hart::Pending::kAmo;
          r.prim = Primitive::kFaa;
          r.store_value = rs2;
          return r;
      }
      if (h.pending == Hart::Pending::kLr) return r;
      // Local sc.w failure fell through: keep interpreting.
      if (work >= config_.slice_instructions) {
        ++reports_[core].yields;
        return yield_request(Hart::Pending::kYield);
      }
      continue;
    }

    ++work;
    switch (op.op) {
      case Op::kLui: wr(op.rd, static_cast<std::uint32_t>(op.imm)); break;
      case Op::kAuipc:
        wr(op.rd, h.pc + static_cast<std::uint32_t>(op.imm));
        break;
      case Op::kJal:
        wr(op.rd, h.pc + 4);
        h.pc += static_cast<std::uint32_t>(op.imm);
        goto jumped;
      case Op::kJalr: {
        const std::uint32_t target =
            (rs1 + static_cast<std::uint32_t>(op.imm)) & ~1u;
        wr(op.rd, h.pc + 4);
        h.pc = target;
        goto jumped;
      }
      case Op::kBeq:
        if (rs1 == rs2) { h.pc += static_cast<std::uint32_t>(op.imm); goto jumped; }
        break;
      case Op::kBne:
        if (rs1 != rs2) { h.pc += static_cast<std::uint32_t>(op.imm); goto jumped; }
        break;
      case Op::kBlt:
        if (static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2)) {
          h.pc += static_cast<std::uint32_t>(op.imm);
          goto jumped;
        }
        break;
      case Op::kBge:
        if (static_cast<std::int32_t>(rs1) >= static_cast<std::int32_t>(rs2)) {
          h.pc += static_cast<std::uint32_t>(op.imm);
          goto jumped;
        }
        break;
      case Op::kBltu:
        if (rs1 < rs2) { h.pc += static_cast<std::uint32_t>(op.imm); goto jumped; }
        break;
      case Op::kBgeu:
        if (rs1 >= rs2) { h.pc += static_cast<std::uint32_t>(op.imm); goto jumped; }
        break;
      case Op::kLb:
        wr(op.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(
                      static_cast<std::int8_t>(image_.mem.load8(
                          rs1 + static_cast<std::uint32_t>(op.imm))))));
        break;
      case Op::kLh:
        wr(op.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(
                      static_cast<std::int16_t>(image_.mem.load16(
                          rs1 + static_cast<std::uint32_t>(op.imm))))));
        break;
      case Op::kLw:
        wr(op.rd, image_.mem.load32(rs1 + static_cast<std::uint32_t>(op.imm)));
        break;
      case Op::kLbu:
        wr(op.rd, image_.mem.load8(rs1 + static_cast<std::uint32_t>(op.imm)));
        break;
      case Op::kLhu:
        wr(op.rd, image_.mem.load16(rs1 + static_cast<std::uint32_t>(op.imm)));
        break;
      case Op::kSb: {
        const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(op.imm);
        image_.mem.store8(addr, rs2);
        break_reservations(core, line_of(addr));
        break;
      }
      case Op::kSh: {
        const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(op.imm);
        image_.mem.store16(addr, rs2);
        break_reservations(core, line_of(addr));
        break;
      }
      case Op::kSw: {
        const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(op.imm);
        image_.mem.store32(addr, rs2);
        break_reservations(core, line_of(addr));
        break;
      }
      case Op::kAddi: wr(op.rd, rs1 + static_cast<std::uint32_t>(op.imm)); break;
      case Op::kSlti:
        wr(op.rd, static_cast<std::int32_t>(rs1) < op.imm ? 1 : 0);
        break;
      case Op::kSltiu:
        wr(op.rd, rs1 < static_cast<std::uint32_t>(op.imm) ? 1 : 0);
        break;
      case Op::kXori: wr(op.rd, rs1 ^ static_cast<std::uint32_t>(op.imm)); break;
      case Op::kOri: wr(op.rd, rs1 | static_cast<std::uint32_t>(op.imm)); break;
      case Op::kAndi: wr(op.rd, rs1 & static_cast<std::uint32_t>(op.imm)); break;
      case Op::kSlli: wr(op.rd, rs1 << (op.imm & 31)); break;
      case Op::kSrli: wr(op.rd, rs1 >> (op.imm & 31)); break;
      case Op::kSrai:
        wr(op.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >>
                                             (op.imm & 31)));
        break;
      case Op::kAdd: wr(op.rd, rs1 + rs2); break;
      case Op::kSub: wr(op.rd, rs1 - rs2); break;
      case Op::kSll: wr(op.rd, rs1 << (rs2 & 31)); break;
      case Op::kSlt:
        wr(op.rd,
           static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2)
               ? 1 : 0);
        break;
      case Op::kSltu: wr(op.rd, rs1 < rs2 ? 1 : 0); break;
      case Op::kXor: wr(op.rd, rs1 ^ rs2); break;
      case Op::kSrl: wr(op.rd, rs1 >> (rs2 & 31)); break;
      case Op::kSra:
        wr(op.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >>
                                             (rs2 & 31)));
        break;
      case Op::kOr: wr(op.rd, rs1 | rs2); break;
      case Op::kAnd: wr(op.rd, rs1 & rs2); break;
      case Op::kMul: wr(op.rd, rs1 * rs2); break;
      case Op::kMulh: wr(op.rd, mulh_signed(rs1, rs2)); break;
      case Op::kMulhsu: wr(op.rd, mulh_su(rs1, rs2)); break;
      case Op::kMulhu: wr(op.rd, mulh_unsigned(rs1, rs2)); break;
      case Op::kDiv: {
        const auto a = static_cast<std::int32_t>(rs1);
        const auto b = static_cast<std::int32_t>(rs2);
        std::int32_t q = -1;  // RISC-V: x/0 == -1
        if (b != 0) {
          q = (a == INT32_MIN && b == -1) ? a : a / b;  // overflow: q = a
        }
        wr(op.rd, static_cast<std::uint32_t>(q));
        break;
      }
      case Op::kDivu: wr(op.rd, rs2 == 0 ? 0xffffffffu : rs1 / rs2); break;
      case Op::kRem: {
        const auto a = static_cast<std::int32_t>(rs1);
        const auto b = static_cast<std::int32_t>(rs2);
        std::int32_t r = a;  // RISC-V: x%0 == x
        if (b != 0) r = (a == INT32_MIN && b == -1) ? 0 : a % b;
        wr(op.rd, static_cast<std::uint32_t>(r));
        break;
      }
      case Op::kRemu: wr(op.rd, rs2 == 0 ? rs1 : rs1 % rs2); break;
      case Op::kCsrRead: {
        // Deterministic counters: cycle == time == instret == retired
        // guest instructions. High halves read the upper word.
        const std::uint64_t v = total_instret_;
        const bool high = (op.imm & 0x80) != 0;
        wr(op.rd, static_cast<std::uint32_t>(high ? v >> 32 : v));
        break;
      }
      case Op::kEcall:
        if (!do_syscall(core, h)) {
          // Hart finished: price the tail work so completion time covers
          // every retired instruction.
          if (work > 0) return yield_request(Hart::Pending::kYield);
          return std::nullopt;
        }
        if (fatal_) return std::nullopt;
        break;
      case Op::kEbreak:
        fail(errc::kBreakpoint, "ebreak at pc=" + std::to_string(h.pc));
        return std::nullopt;
      case Op::kIllegal:
      default:
        fail(errc::kIllegalInstruction,
             "illegal instruction at pc=" + std::to_string(h.pc) + " word=" +
                 std::to_string(static_cast<std::uint32_t>(op.imm)));
        return std::nullopt;
    }
    h.pc += 4;
  jumped:
    if (!image_.mem.ok()) {
      const bool text = image_.mem.text_fault();
      fail(text ? errc::kTextWrite : errc::kMemFault,
           std::string(text ? "store into executable text" : "memory fault") +
               " at guest addr=" + std::to_string(image_.mem.fault_addr()) +
               " pc=" + std::to_string(h.pc));
      return std::nullopt;
    }
    if (work >= config_.slice_instructions) {
      ++reports_[core].yields;
      return yield_request(Hart::Pending::kYield);
    }
  }
}

void GuestProgram::on_result(sim::CoreId core, const OpResult& result) {
  (void)result;  // sim line values are timing fiction; guest memory is truth
  if (core >= harts_.size()) return;
  Hart& h = harts_[core];
  const Hart::Pending pending = h.pending;
  h.pending = Hart::Pending::kNone;
  if (pending == Hart::Pending::kNone || pending == Hart::Pending::kYield) {
    return;
  }

  const GuestOp& op = h.pending_op;
  const std::uint32_t addr = h.pending_addr;
  const std::uint32_t rs2 = h.pending_rs2;
  const auto wr = [&h](std::uint8_t rd, std::uint32_t v) {
    if (rd != 0) h.x[rd] = v;
  };

  switch (pending) {
    case Hart::Pending::kLr: {
      wr(op.rd, image_.mem.load32(addr));
      h.reservation = line_of(addr);
      break;
    }
    case Hart::Pending::kSc: {
      // Re-check at retirement: an op by another hart that retired between
      // issue and now may have broken the reservation.
      if (h.reservation == std::optional<sim::LineId>(line_of(addr))) {
        image_.mem.store32(addr, rs2);
        wr(op.rd, 0);
        break_reservations(core, line_of(addr));
      } else {
        wr(op.rd, 1);
        ++reports_[core].sc_failures;
      }
      h.reservation.reset();
      break;
    }
    case Hart::Pending::kCas: {
      const std::uint32_t old = image_.mem.load32(addr);
      if (old == h.pending_expected) {
        image_.mem.store32(addr, rs2);
        break_reservations(core, line_of(addr));
      }
      wr(op.rd, old);
      break;
    }
    case Hart::Pending::kAmo: {
      const std::uint32_t old = image_.mem.load32(addr);
      std::uint32_t next = old;
      switch (op.op) {
        case Op::kAmoSwapW: next = rs2; break;
        case Op::kAmoAddW: next = old + rs2; break;
        case Op::kAmoXorW: next = old ^ rs2; break;
        case Op::kAmoAndW: next = old & rs2; break;
        case Op::kAmoOrW: next = old | rs2; break;
        case Op::kAmoMinW:
          next = static_cast<std::int32_t>(old) < static_cast<std::int32_t>(rs2)
                     ? old : rs2;
          break;
        case Op::kAmoMaxW:
          next = static_cast<std::int32_t>(old) > static_cast<std::int32_t>(rs2)
                     ? old : rs2;
          break;
        case Op::kAmoMinuW: next = old < rs2 ? old : rs2; break;
        case Op::kAmoMaxuW: next = old > rs2 ? old : rs2; break;
        default: break;
      }
      image_.mem.store32(addr, next);
      wr(op.rd, old);
      break_reservations(core, line_of(addr));
      break;
    }
    case Hart::Pending::kFence:
    default:
      break;
  }
  if (!image_.mem.ok()) {
    const bool text = image_.mem.text_fault();
    fail(text ? errc::kTextWrite : errc::kMemFault,
         std::string(text ? "atomic store into executable text"
                          : "atomic memory fault") +
             " at guest addr=" + std::to_string(image_.mem.fault_addr()));
    return;
  }
  ++reports_[core].atomics;
  h.pc += 4;
}

}  // namespace am::guest
