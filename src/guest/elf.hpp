// Minimal ELF32 loader for statically linked RV32 executables.
//
// Accepts exactly the shape the guest frontend can execute — little-endian
// ELFCLASS32, e_machine EM_RISCV, ET_EXEC, PT_LOAD segments that fit inside
// the image cap without overlapping — and refuses everything else with a
// structured GuestError. The loaded image is one flat GuestMemory spanning
// the segments plus a bump-allocated heap and a per-hart stack region laid
// out above the highest segment.
#pragma once

#include <cstddef>
#include <cstdint>

#include "guest/errors.hpp"
#include "guest/memory.hpp"

namespace am::guest {

struct GuestLimits {
  std::uint32_t max_elf_bytes = 4u << 20;    ///< raw ELF file size cap
  std::uint32_t max_image_bytes = 16u << 20; ///< loaded footprint cap
  std::uint32_t heap_bytes = 256u << 10;     ///< brk arena above the segments
  std::uint32_t max_segments = 64;           ///< program-header count cap
};

struct GuestImage {
  GuestMemory mem;
  std::uint32_t entry = 0;
  /// Union of executable segments; the decode-once stream covers it and
  /// stores into it are refused (memory.hpp).
  std::uint32_t text_base = 0;
  std::uint32_t text_end = 0;
  std::uint32_t brk = 0;         ///< heap cursor start (sys_brk)
  std::uint32_t heap_end = 0;    ///< heap cap
  std::uint32_t stacks_base = 0; ///< per-hart stacks live in [stacks_base, mem.end())
};

/// Parses and loads @p data. @p stack_bytes_total reserves the per-hart
/// stack region above the heap. Returns an ok() error on success with
/// @p out populated.
GuestError load_elf32(const std::uint8_t* data, std::size_t len,
                      const GuestLimits& limits,
                      std::uint32_t stack_bytes_total, GuestImage* out);

}  // namespace am::guest
