#include "guest/decode.hpp"

namespace am::guest {

namespace {

std::int32_t imm_i(std::uint32_t insn) {
  return static_cast<std::int32_t>(insn) >> 20;
}

std::int32_t imm_s(std::uint32_t insn) {
  return ((static_cast<std::int32_t>(insn) >> 20) & ~0x1f) |
         static_cast<std::int32_t>((insn >> 7) & 0x1f);
}

std::int32_t imm_b(std::uint32_t insn) {
  std::uint32_t v = ((insn >> 19) & 0x1000) | ((insn << 4) & 0x800) |
                    ((insn >> 20) & 0x7e0) | ((insn >> 7) & 0x1e);
  // Sign-extend from bit 12.
  return static_cast<std::int32_t>(v << 19) >> 19;
}

std::int32_t imm_u(std::uint32_t insn) {
  return static_cast<std::int32_t>(insn & 0xfffff000u);
}

std::int32_t imm_j(std::uint32_t insn) {
  std::uint32_t v = ((insn >> 11) & 0x100000) | (insn & 0xff000) |
                    ((insn >> 9) & 0x800) | ((insn >> 20) & 0x7fe);
  return static_cast<std::int32_t>(v << 11) >> 11;
}

bool counter_csr(std::int32_t csr) {
  switch (csr) {
    case 0xC00:  // cycle
    case 0xC01:  // time
    case 0xC02:  // instret
    case 0xC80:  // cycleh
    case 0xC81:  // timeh
    case 0xC82:  // instreth
      return true;
    default:
      return false;
  }
}

}  // namespace

bool is_atomic_or_fence(Op op) noexcept {
  switch (op) {
    case Op::kFence:
    case Op::kLrW:
    case Op::kScW:
    case Op::kAmoSwapW:
    case Op::kAmoAddW:
    case Op::kAmoXorW:
    case Op::kAmoAndW:
    case Op::kAmoOrW:
    case Op::kAmoMinW:
    case Op::kAmoMaxW:
    case Op::kAmoMinuW:
    case Op::kAmoMaxuW:
    case Op::kAmoCasW:
      return true;
    default:
      return false;
  }
}

GuestOp decode_rv32(std::uint32_t insn) {
  GuestOp d;
  // Preserve the raw word for illegal-instruction diagnostics.
  d.imm = static_cast<std::int32_t>(insn);
  if ((insn & 0x3) != 0x3) return d;  // no compressed extension

  const std::uint32_t opcode = insn & 0x7f;
  const auto rd = static_cast<std::uint8_t>((insn >> 7) & 0x1f);
  const auto rs1 = static_cast<std::uint8_t>((insn >> 15) & 0x1f);
  const auto rs2 = static_cast<std::uint8_t>((insn >> 20) & 0x1f);
  const std::uint32_t f3 = (insn >> 12) & 0x7;
  const std::uint32_t f7 = insn >> 25;

  const auto set = [&](Op op, std::int32_t imm) {
    d.op = op;
    d.rd = rd;
    d.rs1 = rs1;
    d.rs2 = rs2;
    d.imm = imm;
  };

  switch (opcode) {
    case 0x37: set(Op::kLui, imm_u(insn)); break;
    case 0x17: set(Op::kAuipc, imm_u(insn)); break;
    case 0x6f: set(Op::kJal, imm_j(insn)); break;
    case 0x67:
      if (f3 == 0) set(Op::kJalr, imm_i(insn));
      break;
    case 0x63: {
      static constexpr Op kBranch[8] = {Op::kBeq,  Op::kBne,  Op::kIllegal,
                                        Op::kIllegal, Op::kBlt, Op::kBge,
                                        Op::kBltu, Op::kBgeu};
      if (kBranch[f3] != Op::kIllegal) set(kBranch[f3], imm_b(insn));
      break;
    }
    case 0x03: {
      static constexpr Op kLoad[8] = {Op::kLb,  Op::kLh,  Op::kLw,
                                      Op::kIllegal, Op::kLbu, Op::kLhu,
                                      Op::kIllegal, Op::kIllegal};
      if (kLoad[f3] != Op::kIllegal) set(kLoad[f3], imm_i(insn));
      break;
    }
    case 0x23: {
      static constexpr Op kStore[8] = {Op::kSb, Op::kSh, Op::kSw,
                                       Op::kIllegal, Op::kIllegal,
                                       Op::kIllegal, Op::kIllegal,
                                       Op::kIllegal};
      if (kStore[f3] != Op::kIllegal) set(kStore[f3], imm_s(insn));
      break;
    }
    case 0x13:
      switch (f3) {
        case 0: set(Op::kAddi, imm_i(insn)); break;
        case 2: set(Op::kSlti, imm_i(insn)); break;
        case 3: set(Op::kSltiu, imm_i(insn)); break;
        case 4: set(Op::kXori, imm_i(insn)); break;
        case 6: set(Op::kOri, imm_i(insn)); break;
        case 7: set(Op::kAndi, imm_i(insn)); break;
        case 1:
          if (f7 == 0) set(Op::kSlli, rs2);
          break;
        case 5:
          if (f7 == 0) set(Op::kSrli, rs2);
          else if (f7 == 0x20) set(Op::kSrai, rs2);
          break;
        default: break;
      }
      break;
    case 0x33:
      if (f7 == 0) {
        static constexpr Op kOp[8] = {Op::kAdd, Op::kSll, Op::kSlt,
                                      Op::kSltu, Op::kXor, Op::kSrl,
                                      Op::kOr, Op::kAnd};
        set(kOp[f3], 0);
      } else if (f7 == 0x20) {
        if (f3 == 0) set(Op::kSub, 0);
        else if (f3 == 5) set(Op::kSra, 0);
      } else if (f7 == 1) {
        static constexpr Op kM[8] = {Op::kMul, Op::kMulh, Op::kMulhsu,
                                     Op::kMulhu, Op::kDiv, Op::kDivu,
                                     Op::kRem, Op::kRemu};
        set(kM[f3], 0);
      }
      break;
    case 0x0f:
      // FENCE and FENCE.I both lower to the machine's priced FENCE.
      if (f3 == 0 || f3 == 1) set(Op::kFence, 0);
      break;
    case 0x73:
      if (f3 == 0 && rd == 0 && rs1 == 0) {
        if ((insn >> 20) == 0) set(Op::kEcall, 0);
        else if ((insn >> 20) == 1) set(Op::kEbreak, 0);
      } else if (f3 == 2 && rs1 == 0 && counter_csr(imm_i(insn) & 0xfff)) {
        // csrrs rd, <counter>, x0 — the rdcycle/rdtime/rdinstret idiom.
        set(Op::kCsrRead, imm_i(insn) & 0xfff);
      }
      break;
    case 0x2f:
      if (f3 == 2) {
        switch (f7 >> 2) {  // funct5
          case 0x02:
            if (rs2 == 0) set(Op::kLrW, 0);
            break;
          case 0x03: set(Op::kScW, 0); break;
          case 0x01: set(Op::kAmoSwapW, 0); break;
          case 0x00: set(Op::kAmoAddW, 0); break;
          case 0x04: set(Op::kAmoXorW, 0); break;
          case 0x0c: set(Op::kAmoAndW, 0); break;
          case 0x08: set(Op::kAmoOrW, 0); break;
          case 0x10: set(Op::kAmoMinW, 0); break;
          case 0x14: set(Op::kAmoMaxW, 0); break;
          case 0x18: set(Op::kAmoMinuW, 0); break;
          case 0x1c: set(Op::kAmoMaxuW, 0); break;
          case 0x05: set(Op::kAmoCasW, 0); break;  // Zacas
          default: break;
        }
      }
      break;
    default:
      break;
  }
  return d;
}

std::vector<GuestOp> decode_stream(GuestMemory& mem, std::uint32_t text_base,
                                   std::uint32_t text_end) {
  std::vector<GuestOp> stream;
  stream.reserve((text_end - text_base) / 4);
  for (std::uint32_t pc = text_base; pc + 4 <= text_end; pc += 4) {
    stream.push_back(decode_rv32(mem.load32(pc)));
  }
  return stream;
}

}  // namespace am::guest
