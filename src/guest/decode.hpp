// RV32IMA decoder: one raw instruction word -> one GuestOp POD.
//
// Decode-once discipline (the libriscv idiom PR 7 already applied to the
// simulator's op streams): the executable range is decoded into a flat
// std::vector<GuestOp> indexed by (pc - text_base) / 4 at load time, so the
// interpreter hot loop is a switch over pre-cracked operands — no per-step
// bit slicing. The subset is exactly RV32IMA plus the Zacas amocas.w and the
// counter CSR reads; the compressed extension is deliberately absent
// (4-byte pc stepping keeps the flat stream dense), so guests must be built
// with -march=rv32ima.
#pragma once

#include <cstdint>
#include <vector>

#include "guest/memory.hpp"

namespace am::guest {

enum class Op : std::uint8_t {
  kIllegal = 0,
  // RV32I.
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // RV32M.
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // RV32A (+ Zacas amocas.w).
  kLrW, kScW,
  kAmoSwapW, kAmoAddW, kAmoXorW, kAmoAndW, kAmoOrW,
  kAmoMinW, kAmoMaxW, kAmoMinuW, kAmoMaxuW, kAmoCasW,
  // Counter CSR reads (rdcycle/rdtime/rdinstret + high halves).
  kCsrRead,
};

/// True for the ops the simulator models (everything the guest lowers onto
/// the machine: LR/SC, AMOs, CAS, fences).
bool is_atomic_or_fence(Op op) noexcept;

struct GuestOp {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  ///< immediate; CSR number for kCsrRead
};

/// Decodes one 32-bit instruction word. Unknown encodings (including any
/// 16-bit compressed instruction) decode to Op::kIllegal with the raw word
/// preserved in imm for diagnostics.
GuestOp decode_rv32(std::uint32_t insn);

/// Decodes [text_base, text_end) of @p mem into a flat stream, one GuestOp
/// per 4-byte slot.
std::vector<GuestOp> decode_stream(GuestMemory& mem, std::uint32_t text_base,
                                   std::uint32_t text_end);

}  // namespace am::guest
