#include "guest/runner.hpp"

#include <utility>

#include "bench_core/sim_backend.hpp"
#include "guest/elf.hpp"
#include "sim/machine.hpp"

namespace am::guest {

bool parse_guest_backend(const std::string& spec, sim::MachineConfig* config,
                         std::string* preset_name, std::string* error) {
  // Split "sim:NAME[:MODEL]" on ':'.
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.empty() || parts[0] != "sim") {
    if (error != nullptr) {
      *error = "guest workloads need a simulator backend (got '" + spec +
               "'); use sim:xeon, sim:knl or sim:test";
    }
    return false;
  }
  std::string preset = parts.size() > 1 && !parts[1].empty() ? parts[1] : "xeon";
  if (preset != "xeon" && preset != "knl" && preset != "test") {
    if (error != nullptr) *error = "unknown machine preset '" + preset + "'";
    return false;
  }
  sim::MachineConfig mc = sim::preset_by_name(preset);
  if (parts.size() > 2) {
    auto model = sim::parse_memory_model(parts[2]);
    if (!model) {
      if (error != nullptr) {
        *error = "unknown memory model '" + parts[2] + "' (want sc or tso)";
      }
      return false;
    }
    mc.memory_model = *model;
  }
  if (config != nullptr) *config = mc;
  if (preset_name != nullptr) *preset_name = preset;
  return true;
}

GuestRunResult run_guest(const std::uint8_t* elf, std::size_t len,
                         const GuestRunConfig& config) {
  GuestRunResult out;
  out.harts = config.harts;
  out.seed = config.seed;

  sim::MachineConfig mc;
  std::string backend_error;
  if (!parse_guest_backend(config.backend, &mc, &out.machine,
                           &backend_error)) {
    out.error = GuestError::make(errc::kBadBackend, backend_error);
    return out;
  }
  out.memory_model = mc.memory_model;

  if (config.harts == 0 || config.harts > mc.cores) {
    out.error = GuestError::make(
        errc::kBadHarts, "harts must be in [1, " + std::to_string(mc.cores) +
                             "] for machine '" + out.machine + "' (got " +
                             std::to_string(config.harts) + ")");
    return out;
  }

  GuestConfig gc = config.guest;
  gc.harts = config.harts;
  gc.seed = config.seed;

  GuestImage image;
  std::uint64_t stack_total =
      static_cast<std::uint64_t>(gc.stack_bytes) * config.harts;
  GuestError load_error =
      load_elf32(elf, len, config.limits, stack_total, &image);
  if (!load_error.ok()) {
    out.error = load_error;
    return out;
  }

  GuestProgram program(std::move(image), gc);

  sim::Machine machine(mc, config.seed);
  // The watchdog is a backstop against simulator-level stalls; the real
  // ceiling is the measure window below (and the interpreter's own
  // instruction budget). progress_events catches event-storm livelock.
  machine.set_watchdog(
      sim::WatchdogConfig{config.max_cycles * 2, 10'000'000});
  TimekeeperSink timekeeper(config.trace);
  machine.set_sink(&timekeeper);

  try {
    out.stats = machine.run(program, config.harts, /*warmup=*/0,
                            /*measure=*/config.max_cycles);
  } catch (const sim::PointTimeout& timeout) {
    out.error = GuestError::make(
        errc::kCycleBudget,
        std::string("simulation watchdog tripped (") +
            sim::to_string(timeout.kind) + " at cycle " +
            std::to_string(timeout.at_cycle) + ")");
    return out;
  }

  out.completion_cycles = timekeeper.last_time();
  out.hart_reports = program.harts();
  out.stdout_bytes = program.stdout_bytes();
  out.total_instructions = program.total_instructions();
  for (const HartReport& h : out.hart_reports) {
    out.total_atomics += h.atomics;
    out.total_yields += h.yields;
    out.total_sc_failures += h.sc_failures;
  }

  if (!program.error().ok()) {
    out.error = program.error();
    return out;
  }
  if (!program.all_exited()) {
    out.error = GuestError::make(
        errc::kCycleBudget,
        "guest did not run to completion within " +
            std::to_string(config.max_cycles) + " simulated cycles");
    return out;
  }
  return out;
}

bench::MeasuredRun to_measured_run(const GuestRunResult& result) {
  bench::MeasuredRun run = bench::to_measured_run(result.stats, result.machine);
  // The sim window is the budget ceiling; the guest finished at its last
  // retirement, so that is the run's duration.
  run.duration_cycles = static_cast<double>(result.completion_cycles);
  return run;
}

}  // namespace am::guest
