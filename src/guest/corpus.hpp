// The checked-in guest corpus: four classic contention kernels assembled
// in-process (no cross-toolchain) into static RV32IMA ELF executables.
//
// Every program takes hart id in a0 and hart count in a1 (the loader ABI),
// runs ITERS loop bodies per hart, and self-validates: hart 0 spins at a
// barrier until the shared state proves every hart's work arrived (counter ==
// harts * ITERS, or the Treiber list holds harts * ITERS nodes), then issues
// exit_group(0). A lost update, broken LR/SC pairing or mis-ordered retirement
// turns that into a hang (-> cycle_budget) or a nonzero exit — so simply
// running the corpus to completion is a functional test of the interpreter's
// atomic semantics under real interleaving.
//
// The corpus is committed as hex (tests/guest/corpus/*.hex) so CI and the
// service tests need no assembler; the regen-check test rebuilds each program
// and diffs the bytes, and AM_REGEN_CORPUS=1 re-blesses the files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace am::guest::corpus {

/// Loop iterations per hart in every corpus program.
inline constexpr std::uint32_t kIters = 64;

/// Minimal static ELF32 writer (EM_RISCV, ET_EXEC): header + program headers
/// + segment bytes, no sections. Also used by the malformed-input tests to
/// produce a valid image before corrupting it.
struct Elf32Builder {
  struct Segment {
    std::uint32_t vaddr = 0;
    std::uint32_t flags = 0;  ///< PF_X=1, PF_W=2, PF_R=4
    std::vector<std::uint8_t> bytes;
    std::uint32_t memsz = 0;  ///< >= bytes.size(); excess is zero-filled
  };
  std::uint32_t entry = 0;
  std::vector<Segment> segments;

  std::vector<std::uint8_t> build() const;
};

/// Names of the corpus programs: faa_counter, spinlock, ticket_lock,
/// treiber_push.
const std::vector<std::string>& names();

/// Assembles the named program. Empty vector for an unknown name.
std::vector<std::uint8_t> build(const std::string& name);

/// Hex encoding used for the checked-in corpus files: lowercase, 32 bytes
/// per line, trailing newline.
std::string to_hex(const std::uint8_t* data, std::size_t len);

/// Strict inverse of to_hex, except whitespace is ignored anywhere. False on
/// non-hex characters or an odd digit count.
bool from_hex(std::string_view text, std::vector<std::uint8_t>* out);

}  // namespace am::guest::corpus
