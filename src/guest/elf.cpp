#include "guest/elf.hpp"

#include <algorithm>
#include <vector>

namespace am::guest {

namespace {

constexpr std::uint16_t kEmRiscv = 243;
constexpr std::uint16_t kEtExec = 2;
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint32_t kPfX = 1;

std::uint16_t rd16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t rd32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

struct Segment {
  std::uint32_t vaddr = 0;
  std::uint32_t memsz = 0;
  std::uint32_t offset = 0;
  std::uint32_t filesz = 0;
  bool exec = false;
};

std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

GuestError load_elf32(const std::uint8_t* data, std::size_t len,
                      const GuestLimits& limits,
                      std::uint32_t stack_bytes_total, GuestImage* out) {
  if (len > limits.max_elf_bytes) {
    return GuestError::make(errc::kElfTooLarge,
                            "elf file exceeds " +
                                std::to_string(limits.max_elf_bytes) +
                                " bytes");
  }
  if (len < 52) {
    return GuestError::make(errc::kElfTruncated,
                            "file smaller than an ELF32 header");
  }
  if (data[0] != 0x7f || data[1] != 'E' || data[2] != 'L' || data[3] != 'F') {
    return GuestError::make(errc::kElfBadMagic, "missing \\x7fELF magic");
  }
  if (data[4] != 1 || data[5] != 1) {
    return GuestError::make(errc::kElfWrongClass,
                            "need little-endian ELFCLASS32");
  }
  if (rd16(data + 18) != kEmRiscv) {
    return GuestError::make(
        errc::kElfWrongMachine,
        "e_machine=" + std::to_string(rd16(data + 18)) + ", need RISC-V");
  }
  if (rd16(data + 16) != kEtExec) {
    return GuestError::make(errc::kElfNotExec,
                            "need a statically linked ET_EXEC image");
  }
  const std::uint32_t entry = rd32(data + 24);
  const std::uint32_t phoff = rd32(data + 28);
  const std::uint16_t phentsize = rd16(data + 42);
  const std::uint16_t phnum = rd16(data + 44);
  if (phentsize != 32) {
    return GuestError::make(errc::kElfBadSegment,
                            "e_phentsize=" + std::to_string(phentsize) +
                                ", need 32");
  }
  if (phnum == 0) {
    return GuestError::make(errc::kElfBadSegment, "no program headers");
  }
  if (phnum > limits.max_segments) {
    return GuestError::make(errc::kElfBadSegment,
                            "too many program headers");
  }
  // phoff + phnum*32 must sit inside the file, overflow-safe.
  if (phoff > len || static_cast<std::uint64_t>(phoff) + phnum * 32ull > len) {
    return GuestError::make(errc::kElfTruncated,
                            "program headers past end of file");
  }

  std::vector<Segment> segs;
  for (std::uint16_t i = 0; i < phnum; ++i) {
    const std::uint8_t* ph = data + phoff + i * 32u;
    if (rd32(ph) != kPtLoad) continue;
    Segment s;
    s.offset = rd32(ph + 4);
    s.vaddr = rd32(ph + 8);
    s.filesz = rd32(ph + 16);
    s.memsz = rd32(ph + 20);
    s.exec = (rd32(ph + 24) & kPfX) != 0;
    if (s.memsz == 0) continue;
    if (s.filesz > s.memsz) {
      return GuestError::make(errc::kElfBadSegment,
                              "segment filesz exceeds memsz");
    }
    if (static_cast<std::uint64_t>(s.offset) + s.filesz > len) {
      return GuestError::make(errc::kElfTruncated,
                              "segment data past end of file");
    }
    if (static_cast<std::uint64_t>(s.vaddr) + s.memsz > 0xffffffffull) {
      return GuestError::make(errc::kElfBadSegment,
                              "segment wraps the 32-bit address space");
    }
    segs.push_back(s);
  }
  if (segs.empty()) {
    return GuestError::make(errc::kElfBadSegment, "no PT_LOAD segments");
  }

  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.vaddr < b.vaddr;
            });
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].vaddr < segs[i - 1].vaddr + segs[i - 1].memsz) {
      return GuestError::make(errc::kElfOverlap,
                              "PT_LOAD segments overlap");
    }
  }

  const std::uint32_t base = segs.front().vaddr & ~0xfffu;
  const std::uint32_t seg_top = segs.back().vaddr + segs.back().memsz;
  const std::uint32_t brk = align_up(seg_top, 16);
  const std::uint64_t heap_end = static_cast<std::uint64_t>(brk) +
                                 limits.heap_bytes;
  const std::uint64_t stacks_base = align_up(
      static_cast<std::uint32_t>(std::min<std::uint64_t>(heap_end,
                                                         0xffffff00ull)),
      64);
  const std::uint64_t image_end = stacks_base + stack_bytes_total;
  if (image_end > 0xffffffffull ||
      image_end - base > limits.max_image_bytes) {
    return GuestError::make(errc::kElfTooLarge,
                            "loaded image exceeds " +
                                std::to_string(limits.max_image_bytes) +
                                " bytes");
  }

  GuestImage image;
  image.mem = GuestMemory(base, static_cast<std::uint32_t>(image_end - base));
  std::uint32_t text_lo = 0xffffffffu;
  std::uint32_t text_hi = 0;
  for (const Segment& s : segs) {
    if (s.filesz > 0 &&
        !image.mem.write_raw(s.vaddr, data + s.offset, s.filesz)) {
      return GuestError::make(errc::kElfBadSegment,
                              "segment outside the image span");
    }
    if (s.exec) {
      text_lo = std::min(text_lo, s.vaddr);
      text_hi = std::max(text_hi, s.vaddr + s.memsz);
    }
  }
  if (text_hi <= text_lo) {
    return GuestError::make(errc::kElfBadSegment,
                            "no executable PT_LOAD segment");
  }
  if (entry < text_lo || entry >= text_hi || entry % 4 != 0) {
    return GuestError::make(errc::kElfBadEntry,
                            "entry point outside executable text (or "
                            "misaligned)");
  }

  image.entry = entry;
  image.text_base = text_lo;
  image.text_end = text_hi;
  image.brk = brk;
  image.heap_end = static_cast<std::uint32_t>(heap_end);
  image.stacks_base = static_cast<std::uint32_t>(stacks_base);
  image.mem.protect_text(text_lo, text_hi);
  *out = std::move(image);
  return {};
}

}  // namespace am::guest
