#include "guest/corpus.hpp"

#include <cstddef>
#include <map>

#include "guest/asm.hpp"

namespace am::guest::corpus {

namespace {

using namespace am::guest::rv;

constexpr std::uint32_t kTextBase = 0x10000;
constexpr std::uint32_t kDataBase = 0x20000;
constexpr std::uint32_t kPfX = 1, kPfW = 2, kPfR = 4;

void put16(std::vector<std::uint8_t>* v, std::uint16_t x) {
  v->push_back(static_cast<std::uint8_t>(x));
  v->push_back(static_cast<std::uint8_t>(x >> 8));
}

void put32(std::vector<std::uint8_t>* v, std::uint32_t x) {
  put16(v, static_cast<std::uint16_t>(x));
  put16(v, static_cast<std::uint16_t>(x >> 16));
}

/// Two-pass label assembler over the raw encoders in asm.hpp: branches and
/// jumps name integer labels, resolved after the last bind().
class Asm {
 public:
  int label() { return next_label_++; }
  void bind(int label) { bound_[label] = pc(); }
  std::uint32_t pc() const {
    return kTextBase + 4 * static_cast<std::uint32_t>(words_.size());
  }

  void op(std::uint32_t word) { words_.push_back(word); }

  void beq(std::uint32_t rs1, std::uint32_t rs2, int l) { br(0, rs1, rs2, l); }
  void bne(std::uint32_t rs1, std::uint32_t rs2, int l) { br(1, rs1, rs2, l); }
  void blt(std::uint32_t rs1, std::uint32_t rs2, int l) { br(4, rs1, rs2, l); }
  void j(int l) {
    fixups_.push_back({words_.size(), l, 0, 0, 0, true});
    words_.push_back(0);
  }

  /// Loads a 32-bit constant (lui+addi when it doesn't fit simm12).
  void li(std::uint32_t rd, std::int32_t imm) {
    if (imm >= -2048 && imm < 2048) {
      op(addi(rd, x0, imm));
      return;
    }
    const auto u = static_cast<std::uint32_t>(imm);
    const std::uint32_t hi = (u + 0x800u) & 0xfffff000u;
    op(lui(rd, hi));
    const auto lo = static_cast<std::int32_t>(u - hi);
    if (lo != 0) op(addi(rd, rd, lo));
  }

  void exit_hart(std::int32_t code) {
    li(a0, code);
    li(a7, 93);
    op(ecall());
  }
  void exit_group(std::int32_t code) {
    li(a0, code);
    li(a7, 94);
    op(ecall());
  }

  std::vector<std::uint8_t> bytes() const {
    std::vector<std::uint32_t> words = words_;
    for (const Fixup& f : fixups_) {
      const std::uint32_t insn_pc =
          kTextBase + 4 * static_cast<std::uint32_t>(f.at);
      const auto off = static_cast<std::int32_t>(bound_.at(f.label) - insn_pc);
      words[f.at] = f.is_jal ? jal(x0, off) : enc_b(off, f.rs1, f.rs2, f.f3);
    }
    std::vector<std::uint8_t> out;
    out.reserve(words.size() * 4);
    for (std::uint32_t w : words) put32(&out, w);
    return out;
  }

 private:
  struct Fixup {
    std::size_t at;
    int label;
    std::uint32_t f3, rs1, rs2;
    bool is_jal;
  };

  void br(std::uint32_t f3, std::uint32_t rs1, std::uint32_t rs2, int l) {
    fixups_.push_back({words_.size(), l, f3, rs1, rs2, false});
    words_.push_back(0);
  }

  std::vector<std::uint32_t> words_;
  std::vector<Fixup> fixups_;
  std::map<int, std::uint32_t> bound_;
  int next_label_ = 0;
};

std::vector<std::uint8_t> link(const Asm& text, std::uint32_t data_memsz) {
  Elf32Builder elf;
  elf.entry = kTextBase;
  elf.segments.push_back({kTextBase, kPfR | kPfX, text.bytes(), 0});
  elf.segments.back().memsz =
      static_cast<std::uint32_t>(elf.segments.back().bytes.size());
  elf.segments.push_back({kDataBase, kPfR | kPfW, {}, data_memsz});
  return elf.build();
}

/// Hart-0 barrier: spin on a plain load of [addr_reg] until it equals
/// harts * kIters, then exit_group(0); other harts exit(0) immediately.
void emit_barrier_exit(Asm& a, std::uint32_t addr_reg) {
  const int done = a.label(), wait = a.label();
  a.bne(a0, x0, done);
  a.op(slli(t2, a1, 6));  // harts * 64
  a.bind(wait);
  a.op(lw(t3, 0, addr_reg));
  a.bne(t3, t2, wait);
  a.exit_group(0);
  a.bind(done);
  a.exit_hart(0);
}

// faa_counter: kIters amoadd.w(counter, 1) per hart — the pure FAA
// throughput kernel (paper Fig. 2 shape).
std::vector<std::uint8_t> build_faa_counter() {
  Asm a;
  a.li(s0, kDataBase);
  a.li(s1, kIters);
  a.li(t0, 0);
  const int loop = a.label();
  a.bind(loop);
  a.li(t1, 1);
  a.op(amoadd_w(x0, t1, s0));
  a.op(addi(t0, t0, 1));
  a.blt(t0, s1, loop);
  emit_barrier_exit(a, s0);
  return link(a, /*data_memsz=*/64);
}

// spinlock: test-and-set via amoswap.w with a plain-load backoff spin;
// counter (separate line) incremented plainly inside the critical section.
std::vector<std::uint8_t> build_spinlock() {
  Asm a;
  a.li(s0, kDataBase);       // lock
  a.op(addi(s2, s0, 64));    // counter, next line over
  a.li(s1, kIters);
  a.li(t0, 0);
  const int loop = a.label(), acq = a.label(), spin = a.label(),
            got = a.label();
  a.bind(loop);
  a.bind(acq);
  a.li(t1, 1);
  a.op(amoswap_w(t2, t1, s0));
  a.beq(t2, x0, got);
  a.bind(spin);
  a.op(lw(t2, 0, s0));
  a.bne(t2, x0, spin);
  a.j(acq);
  a.bind(got);
  a.op(lw(t3, 0, s2));
  a.op(addi(t3, t3, 1));
  a.op(sw(t3, 0, s2));
  a.op(fence());
  a.op(amoswap_w(x0, x0, s0));  // release: swap in 0
  a.op(addi(t0, t0, 1));
  a.blt(t0, s1, loop);
  emit_barrier_exit(a, s2);
  return link(a, 128);
}

// ticket_lock: FAA ticket draw, plain-load spin on the owner word, FAA
// release — the fair-lock contrast case for the contention profile.
std::vector<std::uint8_t> build_ticket_lock() {
  Asm a;
  a.li(s0, kDataBase);       // next-ticket
  a.op(addi(s2, s0, 64));    // owner
  a.op(addi(s3, s0, 128));   // counter
  a.li(s1, kIters);
  a.li(t0, 0);
  const int loop = a.label(), spin = a.label();
  a.bind(loop);
  a.li(t1, 1);
  a.op(amoadd_w(t2, t1, s0));  // my ticket
  a.bind(spin);
  a.op(lw(t3, 0, s2));
  a.bne(t3, t2, spin);
  a.op(lw(t4, 0, s3));
  a.op(addi(t4, t4, 1));
  a.op(sw(t4, 0, s3));
  a.op(fence());
  a.li(t1, 1);
  a.op(amoadd_w(x0, t1, s2));  // pass the lock
  a.op(addi(t0, t0, 1));
  a.blt(t0, s1, loop);
  emit_barrier_exit(a, s3);
  return link(a, 192);
}

// treiber_push: LR/SC push loop onto a shared stack head; hart 0 validates
// by walking the prepend-only list until it holds harts * kIters nodes.
std::vector<std::uint8_t> build_treiber_push() {
  Asm a;
  a.li(s0, kDataBase);  // head
  a.li(s1, kIters);
  // Private node block: data + 64 + hart * kIters * 8 (line-aligned, so
  // node stores never break another hart's head reservation).
  a.op(slli(t1, a0, 9));
  a.op(addi(s2, s0, 64));
  a.op(add(s2, s2, t1));
  a.li(t0, 0);
  const int loop = a.label(), push = a.label();
  a.bind(loop);
  a.op(slli(t1, t0, 3));
  a.op(add(t2, s2, t1));  // node address
  a.op(sw(t0, 4, t2));    // node->value = i
  a.bind(push);
  a.op(lr_w(t3, s0));
  a.op(sw(t3, 0, t2));    // node->next = observed head
  a.op(sc_w(t4, t2, s0));
  a.bne(t4, x0, push);
  a.op(addi(t0, t0, 1));
  a.blt(t0, s1, loop);
  // Hart 0: walk the list until every node is reachable.
  const int done = a.label(), wait = a.label(), walk = a.label(),
            check = a.label();
  a.bne(a0, x0, done);
  a.op(slli(t5, a1, 6));  // target node count
  a.bind(wait);
  a.li(t6, 0);
  a.op(lw(t2, 0, s0));
  a.bind(walk);
  a.beq(t2, x0, check);
  a.op(addi(t6, t6, 1));
  a.op(lw(t2, 0, t2));
  a.j(walk);
  a.bind(check);
  a.bne(t6, t5, wait);
  a.exit_group(0);
  a.bind(done);
  a.exit_hart(0);
  // 64 nodes/hart * 8 bytes, up to 64 harts, after the 64-byte head line.
  return link(a, 64 + 64 * kIters * 8);
}

}  // namespace

std::vector<std::uint8_t> Elf32Builder::build() const {
  const auto phnum = static_cast<std::uint32_t>(segments.size());
  const std::uint32_t phoff = 52;
  std::uint32_t data_off = phoff + 32 * phnum;

  std::vector<std::uint8_t> out;
  // e_ident.
  out = {0x7f, 'E', 'L', 'F', 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  put16(&out, 2);    // ET_EXEC
  put16(&out, 243);  // EM_RISCV
  put32(&out, 1);    // e_version
  put32(&out, entry);
  put32(&out, phoff);
  put32(&out, 0);  // e_shoff
  put32(&out, 0);  // e_flags
  put16(&out, 52);  // e_ehsize
  put16(&out, 32);  // e_phentsize
  put16(&out, static_cast<std::uint16_t>(phnum));
  put16(&out, 0);  // e_shentsize
  put16(&out, 0);  // e_shnum
  put16(&out, 0);  // e_shstrndx

  for (const Segment& seg : segments) {
    const auto filesz = static_cast<std::uint32_t>(seg.bytes.size());
    put32(&out, 1);  // PT_LOAD
    put32(&out, data_off);
    put32(&out, seg.vaddr);
    put32(&out, seg.vaddr);  // p_paddr
    put32(&out, filesz);
    put32(&out, seg.memsz > filesz ? seg.memsz : filesz);
    put32(&out, seg.flags);
    put32(&out, 0x1000);  // p_align
    data_off += filesz;
  }
  for (const Segment& seg : segments) {
    out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
  }
  return out;
}

const std::vector<std::string>& names() {
  static const std::vector<std::string> kNames = {
      "faa_counter", "spinlock", "ticket_lock", "treiber_push"};
  return kNames;
}

std::vector<std::uint8_t> build(const std::string& name) {
  if (name == "faa_counter") return build_faa_counter();
  if (name == "spinlock") return build_spinlock();
  if (name == "ticket_lock") return build_ticket_lock();
  if (name == "treiber_push") return build_treiber_push();
  return {};
}

std::string to_hex(const std::uint8_t* data, std::size_t len) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2 + len / 32 + 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
    if ((i + 1) % 32 == 0) out.push_back('\n');
  }
  if (len % 32 != 0) out.push_back('\n');
  return out;
}

bool from_hex(std::string_view text, std::vector<std::uint8_t>* out) {
  out->clear();
  int hi = -1;
  for (char c : text) {
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else return false;
    if (hi < 0) {
      hi = v;
    } else {
      out->push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  return hi < 0;
}

}  // namespace am::guest::corpus
