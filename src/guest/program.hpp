// GuestProgram: the sim::ThreadProgram adapter that turns a loaded RV32IMA
// image into a simulator workload. Each hart is one sim::Machine core.
//
// Split of truth:
//   - Guest memory is VALUE truth. Plain loads/stores and all integer code
//     execute functionally at host speed inside next_op(); the value
//     semantics of every atomic are applied in on_result(), i.e. in the
//     machine's retirement order — the single-threaded discrete-event loop
//     makes that order the serialization order, so guest values are exactly
//     what a sequentially-consistent RV32 multi-hart would compute.
//   - The simulator is TIMING/ENERGY truth. Every AMO, LR/SC, CAS and
//     fence is lowered to an IssueRequest carrying the plain-instruction
//     work executed since the previous modeled op, so atomics pay modeled
//     MESI transfer latency, queueing and energy while ordinary code is
//     free-running.
//
// Lowering map (docs/guest.md):
//   amoswap.w           -> kSwap      lr.w   -> kLoad
//   amoadd/xor/and/or/  -> kFaa       sc.w   -> kCas
//     min/max[u].w                    amocas.w -> kCas
//   fence / fence.i     -> kFence
// The sim's own line values evolve under its counter semantics and may
// diverge from guest values (e.g. a sim FAA always adds 1); guest-level
// results are authoritative, including LR/SC success, which is decided by a
// per-hart reservation table invalidated in retirement order.
//
// Livelock note: a hart spinning on a *plain* load (ticket-lock wait loop)
// would never see another hart's store if it looped forever inside one
// next_op() call — sim time is frozen there and other harts only run at
// their own events. After slice_instructions plain instructions the
// interpreter yields a kLoad on a private scratch line, advancing sim time
// and letting the other harts' interpretation (and thus their plain
// stores) proceed. The yield is both the timing model for spin traffic and
// the scheduling fairness mechanism.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "guest/decode.hpp"
#include "guest/elf.hpp"
#include "guest/errors.hpp"
#include "sim/program.hpp"

namespace am::guest {

struct GuestConfig {
  std::uint32_t harts = 1;
  std::uint64_t seed = 1;
  /// Plain instructions executed before a hart yields a scratch-line load.
  std::uint32_t slice_instructions = 1024;
  /// Total retired guest instructions across all harts before the run is
  /// aborted with errc::kInstructionBudget.
  std::uint64_t max_instructions = 50'000'000;
  std::uint32_t stack_bytes = 64u << 10;  ///< per-hart stack size
  std::size_t max_stdout_bytes = 1u << 16;
};

/// Per-hart end-of-run report.
struct HartReport {
  bool exited = false;
  std::uint32_t exit_code = 0;
  std::uint64_t instructions = 0;  ///< retired guest instructions
  std::uint64_t atomics = 0;       ///< modeled ops (AMO/LR/SC/CAS/fence)
  std::uint64_t yields = 0;        ///< scratch-line slice yields
  std::uint64_t sc_failures = 0;   ///< guest-level sc.w failures
};

class GuestProgram final : public sim::ThreadProgram {
 public:
  GuestProgram(GuestImage image, GuestConfig config);

  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& result) override;

  // --- end-of-run introspection ----------------------------------------
  bool all_exited() const noexcept { return exited_harts_ == config_.harts; }
  const GuestError& error() const noexcept { return error_; }
  const std::vector<HartReport>& harts() const noexcept { return reports_; }
  const std::string& stdout_bytes() const noexcept { return stdout_; }
  std::uint64_t total_instructions() const noexcept { return total_instret_; }

 private:
  struct Hart {
    std::array<std::uint32_t, 32> x{};
    std::uint32_t pc = 0;
    bool done = false;
    /// Modeled op awaiting its on_result (the instruction's value
    /// semantics are applied at retirement).
    enum class Pending : std::uint8_t {
      kNone, kYield, kAmo, kLr, kSc, kCas, kFence
    };
    Pending pending = Pending::kNone;
    GuestOp pending_op{};
    std::uint32_t pending_addr = 0;
    std::uint32_t pending_rs2 = 0;
    std::uint32_t pending_expected = 0;  ///< amocas.w only
    /// LR reservation: the line of the last lr.w, or none.
    std::optional<sim::LineId> reservation;
  };

  static sim::LineId line_of(std::uint32_t addr) noexcept {
    return addr >> 6;
  }
  /// Private per-hart scratch line for slice yields, far outside the
  /// 32-bit guest line space so it never aliases guest data.
  static sim::LineId scratch_line(sim::CoreId core) noexcept {
    return (1ull << 56) + core;
  }

  void fail(const char* code, std::string message);
  /// Kills every other hart's reservation on @p line (a store-class access
  /// by @p core became visible).
  void break_reservations(sim::CoreId core, sim::LineId line);
  /// Executes the ecall for hart @p h. Returns false when the hart (or the
  /// whole program) is done.
  bool do_syscall(sim::CoreId core, Hart& h);
  void finish_hart(sim::CoreId core, std::uint32_t exit_code);

  GuestImage image_;
  GuestConfig config_;
  std::vector<GuestOp> text_;
  std::vector<Hart> harts_;
  std::vector<HartReport> reports_;
  std::string stdout_;
  GuestError error_;
  bool fatal_ = false;
  bool group_exit_ = false;
  std::uint32_t group_exit_code_ = 0;
  std::uint32_t exited_harts_ = 0;
  std::uint64_t total_instret_ = 0;
  std::uint32_t brk_;
};

}  // namespace am::guest
