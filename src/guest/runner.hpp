// The guest run driver: ELF bytes in, modeled contention profile out.
//
// Wires a GuestProgram onto a sim::Machine built from a preset spec
// ("sim:xeon", "sim:knl:tso", "sim:test"), arms the watchdog, and measures
// completion time with a forwarding TraceSink — the machine's clock is
// private, but every retirement emits a timestamped trace event, so the
// maximum event time IS the guest's completion cycle count (deterministic:
// the discrete-event loop is single-threaded).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_core/result.hpp"
#include "guest/errors.hpp"
#include "guest/program.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/sim_stats.hpp"

namespace am::guest {

/// Records the latest simulator event time while forwarding to an optional
/// inner sink. Attached to every guest run (the cost is one branch per
/// event), so completion cycles are always measured.
class TimekeeperSink final : public obs::TraceSink {
 public:
  explicit TimekeeperSink(obs::TraceSink* inner = nullptr) : inner_(inner) {}

  void on_run_begin(const obs::TraceRunInfo& info) override {
    if (inner_ != nullptr) inner_->on_run_begin(info);
  }
  void on_event(const obs::TraceEvent& event) override {
    if (event.time > last_time_) last_time_ = event.time;
    if (inner_ != nullptr) inner_->on_event(event);
  }
  void on_run_end() override {
    if (inner_ != nullptr) inner_->on_run_end();
  }

  std::uint64_t last_time() const noexcept { return last_time_; }

 private:
  obs::TraceSink* inner_;
  std::uint64_t last_time_ = 0;
};

struct GuestRunConfig {
  /// Backend spec: "sim:xeon", "sim:knl", "sim:test", each optionally
  /// suffixed ":tso" (or ":sc", the default) to pick the memory model.
  std::string backend = "sim:xeon";
  std::uint32_t harts = 1;
  std::uint64_t seed = 1;
  /// Simulated-cycle ceiling; a guest still running at the ceiling is
  /// reported as errc::kCycleBudget.
  sim::Cycles max_cycles = 200'000'000;
  GuestConfig guest;             ///< interpreter limits (instruction budget …)
  GuestLimits limits;            ///< ELF/image caps
  obs::TraceSink* trace = nullptr;  ///< optional protocol-event sink
};

struct GuestRunResult {
  GuestError error;  ///< ok() when the guest ran to completion
  std::string machine;
  sim::MemoryModel memory_model = sim::MemoryModel::kSc;
  std::uint32_t harts = 0;
  std::uint64_t seed = 0;

  sim::RunStats stats;              ///< modeled atomics only (per sim core)
  sim::Cycles completion_cycles = 0;  ///< last retirement of the run
  std::vector<HartReport> hart_reports;
  std::string stdout_bytes;
  std::uint64_t total_instructions = 0;
  std::uint64_t total_atomics = 0;
  std::uint64_t total_yields = 0;
  std::uint64_t total_sc_failures = 0;

  /// Guest instructions per simulated cycle (all harts).
  double instructions_per_cycle() const noexcept {
    return completion_cycles == 0
               ? 0.0
               : static_cast<double>(total_instructions) /
                     static_cast<double>(completion_cycles);
  }
  double atomics_per_kcycle() const noexcept {
    return completion_cycles == 0
               ? 0.0
               : static_cast<double>(total_atomics) * 1000.0 /
                     static_cast<double>(completion_cycles);
  }
};

/// Parses a guest backend spec into a machine config. False (with @p error
/// set) for non-sim specs or unknown presets/models.
bool parse_guest_backend(const std::string& spec, sim::MachineConfig* config,
                         std::string* preset_name, std::string* error);

/// Loads @p elf and runs it to completion (or to a budget/error). Never
/// throws; every failure mode lands in GuestRunResult::error.
GuestRunResult run_guest(const std::uint8_t* elf, std::size_t len,
                         const GuestRunConfig& config);

/// The guest run as a backend-independent MeasuredRun (duration is the
/// completion time, not the watchdog window), for the am-run-report/1
/// writer and bench tables.
bench::MeasuredRun to_measured_run(const GuestRunResult& result);

}  // namespace am::guest
