// Minimal RV32IMA instruction encoders for the in-repo corpus builder.
//
// The corpus (tests/guest/corpus/*.hex) is committed as assembled bytes so CI
// needs no riscv cross-toolchain; these encoders are how those bytes are
// produced, and the regen-check test re-assembles them on every run, so the
// encodings are verified against the decoder round-trip continuously.
#pragma once

#include <cstdint>

namespace am::guest::rv {

// Register numbers (RISC-V ABI names).
inline constexpr std::uint32_t x0 = 0, ra = 1, sp = 2;
inline constexpr std::uint32_t t0 = 5, t1 = 6, t2 = 7;
inline constexpr std::uint32_t s0 = 8, s1 = 9;
inline constexpr std::uint32_t a0 = 10, a1 = 11, a2 = 12, a7 = 17;
inline constexpr std::uint32_t s2 = 18, s3 = 19;
inline constexpr std::uint32_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;

constexpr std::uint32_t enc_r(std::uint32_t f7, std::uint32_t rs2,
                              std::uint32_t rs1, std::uint32_t f3,
                              std::uint32_t rd, std::uint32_t opc) {
  return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
}

constexpr std::uint32_t enc_i(std::int32_t imm, std::uint32_t rs1,
                              std::uint32_t f3, std::uint32_t rd,
                              std::uint32_t opc) {
  return (static_cast<std::uint32_t>(imm) & 0xfffu) << 20 | (rs1 << 15) |
         (f3 << 12) | (rd << 7) | opc;
}

constexpr std::uint32_t enc_s(std::int32_t imm, std::uint32_t rs2,
                              std::uint32_t rs1, std::uint32_t f3,
                              std::uint32_t opc) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u & 0xfe0u) << 20) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
         ((u & 0x1fu) << 7) | opc;
}

constexpr std::uint32_t enc_b(std::int32_t imm, std::uint32_t rs1,
                              std::uint32_t rs2, std::uint32_t f3) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u & 0x1000u) << 19) | ((u & 0x7e0u) << 20) | (rs2 << 20) |
         (rs1 << 15) | (f3 << 12) | ((u & 0x1eu) << 7) | ((u & 0x800u) >> 4) |
         0x63u;
}

constexpr std::uint32_t enc_u(std::uint32_t imm_hi20, std::uint32_t rd,
                              std::uint32_t opc) {
  return (imm_hi20 & 0xfffff000u) | (rd << 7) | opc;
}

constexpr std::uint32_t enc_j(std::int32_t imm, std::uint32_t rd) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u & 0x100000u) << 11) | ((u & 0x7feu) << 20) |
         ((u & 0x800u) << 9) | (u & 0xff000u) | (rd << 7) | 0x6fu;
}

// --- RV32I ----------------------------------------------------------------
constexpr std::uint32_t lui(std::uint32_t rd, std::uint32_t imm_hi) {
  return enc_u(imm_hi, rd, 0x37);
}
constexpr std::uint32_t auipc(std::uint32_t rd, std::uint32_t imm_hi) {
  return enc_u(imm_hi, rd, 0x17);
}
constexpr std::uint32_t jal(std::uint32_t rd, std::int32_t off) {
  return enc_j(off, rd);
}
constexpr std::uint32_t jalr(std::uint32_t rd, std::uint32_t rs1,
                             std::int32_t imm) {
  return enc_i(imm, rs1, 0, rd, 0x67);
}
constexpr std::uint32_t beq(std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t off) {
  return enc_b(off, rs1, rs2, 0);
}
constexpr std::uint32_t bne(std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t off) {
  return enc_b(off, rs1, rs2, 1);
}
constexpr std::uint32_t blt(std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t off) {
  return enc_b(off, rs1, rs2, 4);
}
constexpr std::uint32_t bge(std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t off) {
  return enc_b(off, rs1, rs2, 5);
}
constexpr std::uint32_t lw(std::uint32_t rd, std::int32_t imm,
                           std::uint32_t rs1) {
  return enc_i(imm, rs1, 2, rd, 0x03);
}
constexpr std::uint32_t lbu(std::uint32_t rd, std::int32_t imm,
                            std::uint32_t rs1) {
  return enc_i(imm, rs1, 4, rd, 0x03);
}
constexpr std::uint32_t sw(std::uint32_t rs2, std::int32_t imm,
                           std::uint32_t rs1) {
  return enc_s(imm, rs2, rs1, 2, 0x23);
}
constexpr std::uint32_t sb(std::uint32_t rs2, std::int32_t imm,
                           std::uint32_t rs1) {
  return enc_s(imm, rs2, rs1, 0, 0x23);
}
constexpr std::uint32_t addi(std::uint32_t rd, std::uint32_t rs1,
                             std::int32_t imm) {
  return enc_i(imm, rs1, 0, rd, 0x13);
}
constexpr std::uint32_t andi(std::uint32_t rd, std::uint32_t rs1,
                             std::int32_t imm) {
  return enc_i(imm, rs1, 7, rd, 0x13);
}
constexpr std::uint32_t slli(std::uint32_t rd, std::uint32_t rs1,
                             std::uint32_t shamt) {
  return enc_r(0, shamt, rs1, 1, rd, 0x13);
}
constexpr std::uint32_t srli(std::uint32_t rd, std::uint32_t rs1,
                             std::uint32_t shamt) {
  return enc_r(0, shamt, rs1, 5, rd, 0x13);
}
constexpr std::uint32_t add(std::uint32_t rd, std::uint32_t rs1,
                            std::uint32_t rs2) {
  return enc_r(0, rs2, rs1, 0, rd, 0x33);
}
constexpr std::uint32_t sub(std::uint32_t rd, std::uint32_t rs1,
                            std::uint32_t rs2) {
  return enc_r(0x20, rs2, rs1, 0, rd, 0x33);
}
constexpr std::uint32_t mul(std::uint32_t rd, std::uint32_t rs1,
                            std::uint32_t rs2) {
  return enc_r(1, rs2, rs1, 0, rd, 0x33);
}
constexpr std::uint32_t fence() { return enc_i(0, 0, 0, 0, 0x0f); }
constexpr std::uint32_t ecall() { return 0x00000073u; }
constexpr std::uint32_t ebreak() { return 0x00100073u; }

// --- RV32A (aq/rl bits left clear; the machine prices every atomic the
// same regardless) -----------------------------------------------------------
constexpr std::uint32_t amo(std::uint32_t funct5, std::uint32_t rd,
                            std::uint32_t rs2, std::uint32_t rs1) {
  return enc_r(funct5 << 2, rs2, rs1, 2, rd, 0x2f);
}
constexpr std::uint32_t lr_w(std::uint32_t rd, std::uint32_t rs1) {
  return amo(0x02, rd, 0, rs1);
}
constexpr std::uint32_t sc_w(std::uint32_t rd, std::uint32_t rs2,
                             std::uint32_t rs1) {
  return amo(0x03, rd, rs2, rs1);
}
constexpr std::uint32_t amoswap_w(std::uint32_t rd, std::uint32_t rs2,
                                  std::uint32_t rs1) {
  return amo(0x01, rd, rs2, rs1);
}
constexpr std::uint32_t amoadd_w(std::uint32_t rd, std::uint32_t rs2,
                                 std::uint32_t rs1) {
  return amo(0x00, rd, rs2, rs1);
}
constexpr std::uint32_t amoor_w(std::uint32_t rd, std::uint32_t rs2,
                                std::uint32_t rs1) {
  return amo(0x08, rd, rs2, rs1);
}
constexpr std::uint32_t amocas_w(std::uint32_t rd, std::uint32_t rs2,
                                 std::uint32_t rs1) {
  return amo(0x05, rd, rs2, rs1);
}

}  // namespace am::guest::rv
