// Structured guest failures. Everything that can go wrong with a guest —
// a malformed ELF, a wild pointer, an instruction outside RV32IMA, a
// runaway loop — is reported as a GuestError with a stable machine-readable
// code, never as a crash or an exception escaping the frontend. The service
// layer forwards the code inside a `guest_error` envelope so clients can
// dispatch on it.
#pragma once

#include <string>

namespace am::guest {

// Stable error-code strings (documented in docs/guest.md).
namespace errc {
// ELF loading.
inline constexpr const char* kElfTruncated = "elf_truncated";
inline constexpr const char* kElfBadMagic = "elf_bad_magic";
inline constexpr const char* kElfWrongClass = "elf_wrong_class";
inline constexpr const char* kElfWrongMachine = "elf_wrong_machine";
inline constexpr const char* kElfNotExec = "elf_not_exec";
inline constexpr const char* kElfBadSegment = "elf_bad_segment";
inline constexpr const char* kElfOverlap = "elf_overlap";
inline constexpr const char* kElfTooLarge = "elf_too_large";
inline constexpr const char* kElfBadEntry = "elf_bad_entry";
// Execution.
inline constexpr const char* kIllegalInstruction = "illegal_instruction";
inline constexpr const char* kMemFault = "mem_fault";
inline constexpr const char* kMisaligned = "misaligned";
inline constexpr const char* kTextWrite = "text_write";
inline constexpr const char* kInstructionBudget = "instruction_budget";
inline constexpr const char* kCycleBudget = "cycle_budget";
inline constexpr const char* kBreakpoint = "breakpoint";
// Run configuration.
inline constexpr const char* kBadHarts = "bad_harts";
inline constexpr const char* kBadBackend = "bad_backend";
}  // namespace errc

struct GuestError {
  std::string code;     ///< one of errc::*; empty means "no error"
  std::string message;  ///< human-readable detail

  bool ok() const noexcept { return code.empty(); }

  static GuestError make(const char* code, std::string message) {
    GuestError e;
    e.code = code;
    e.message = std::move(message);
    return e;
  }
};

}  // namespace am::guest
