// Flat guest physical memory: one contiguous byte span covering every
// loaded segment plus heap and per-hart stacks. All accesses are
// bounds-checked; a violation sets a sticky fault the interpreter converts
// into a structured GuestError. The executable range is write-protected —
// the decode-once instruction stream (decode.hpp) would silently go stale
// under self-modifying code, so stores into it are refused instead.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace am::guest {

class GuestMemory {
 public:
  GuestMemory() = default;
  GuestMemory(std::uint32_t base, std::uint32_t size)
      : base_(base), bytes_(size, 0) {}

  std::uint32_t base() const noexcept { return base_; }
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(bytes_.size());
  }
  std::uint32_t end() const noexcept { return base_ + size(); }

  bool contains(std::uint32_t addr, std::uint32_t len) const noexcept {
    return addr >= base_ && len <= size() && addr - base_ <= size() - len;
  }

  /// Marks [lo, hi) as execute-only for stores (the decoded text range).
  void protect_text(std::uint32_t lo, std::uint32_t hi) noexcept {
    text_lo_ = lo;
    text_hi_ = hi;
  }

  // --- typed little-endian accessors -----------------------------------
  // On a bounds (or text-write) violation the access is dropped, reads
  // return 0, and ok() goes false with the faulting address latched.

  std::uint32_t load8(std::uint32_t addr) noexcept { return load(addr, 1); }
  std::uint32_t load16(std::uint32_t addr) noexcept { return load(addr, 2); }
  std::uint32_t load32(std::uint32_t addr) noexcept { return load(addr, 4); }

  void store8(std::uint32_t addr, std::uint32_t v) noexcept {
    store(addr, 1, v);
  }
  void store16(std::uint32_t addr, std::uint32_t v) noexcept {
    store(addr, 2, v);
  }
  void store32(std::uint32_t addr, std::uint32_t v) noexcept {
    store(addr, 4, v);
  }

  /// Raw write used by the loader (ignores text protection; the loader
  /// populates text in the first place).
  bool write_raw(std::uint32_t addr, const void* data,
                 std::uint32_t len) noexcept {
    if (!contains(addr, len)) return false;
    std::memcpy(&bytes_[addr - base_], data, len);
    return true;
  }

  bool read_raw(std::uint32_t addr, void* data, std::uint32_t len) noexcept {
    if (!contains(addr, len)) return false;
    std::memcpy(data, &bytes_[addr - base_], len);
    return true;
  }

  bool ok() const noexcept { return !faulted_; }
  std::uint32_t fault_addr() const noexcept { return fault_addr_; }
  bool text_fault() const noexcept { return text_fault_; }
  void clear_fault() noexcept {
    faulted_ = false;
    text_fault_ = false;
  }

 private:
  std::uint32_t load(std::uint32_t addr, std::uint32_t len) noexcept {
    if (!contains(addr, len)) {
      fault(addr, false);
      return 0;
    }
    std::uint32_t v = 0;
    std::memcpy(&v, &bytes_[addr - base_], len);
    return v;
  }

  void store(std::uint32_t addr, std::uint32_t len, std::uint32_t v) noexcept {
    if (!contains(addr, len)) {
      fault(addr, false);
      return;
    }
    if (addr < text_hi_ && addr + len > text_lo_) {
      fault(addr, true);
      return;
    }
    std::memcpy(&bytes_[addr - base_], &v, len);
  }

  void fault(std::uint32_t addr, bool text) noexcept {
    if (!faulted_) {
      faulted_ = true;
      fault_addr_ = addr;
      text_fault_ = text;
    }
  }

  std::uint32_t base_ = 0;
  std::vector<std::uint8_t> bytes_;
  std::uint32_t text_lo_ = 0;
  std::uint32_t text_hi_ = 0;
  bool faulted_ = false;
  bool text_fault_ = false;
  std::uint32_t fault_addr_ = 0;
};

}  // namespace am::guest
