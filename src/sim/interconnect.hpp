// Interconnect topologies: transfer latencies between cores.
//
// The paper's model is parameterized entirely by the cost of moving a cache
// line between two cores, which depends on where the cores sit. Two
// topologies cover the two machines studied:
//   * TwoSocketInterconnect — Xeon E5 style: a ring within each socket
//     (flat intra-socket cost) and a QPI link between sockets.
//   * MeshInterconnect — Xeon Phi KNL style: cores on a 2D mesh, XY
//     routing, latency growing with Manhattan distance.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace am::sim {

class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Cache-to-cache transfer latency (cycles) from the cache of @p from to
  /// the cache of @p to, inclusive of the request/snoop round trip.
  virtual Cycles transfer_cycles(CoreId from, CoreId to) const = 0;

  /// Latency/energy class of that transfer.
  virtual Supply supply_class(CoreId from, CoreId to) const = 0;

  /// Abstract distance used by the NearestFirst arbitration policy
  /// (smaller == closer). Hop count on the mesh, socket match on E5.
  virtual std::uint32_t distance(CoreId from, CoreId to) const = 0;

  /// Number of link traversals for the energy model.
  virtual std::uint32_t hops(CoreId from, CoreId to) const = 0;

  virtual CoreId core_count() const = 0;
  virtual std::string describe() const = 0;

  /// Cache key for shared_route_table(): a string that uniquely determines
  /// every value the four routing virtuals can return (all constructor
  /// parameters, including any placement permutation). Topologies that
  /// return the default empty string opt out of route-table sharing and
  /// always get a freshly built table.
  virtual std::string identity() const { return std::string(); }
};

/// Dual-socket machine: cores [0, per_socket) on socket 0, the rest on
/// socket 1 (matching Topology::synthetic compact order for packages=2).
class TwoSocketInterconnect final : public Interconnect {
 public:
  TwoSocketInterconnect(CoreId cores_per_socket, Cycles same_socket,
                        Cycles cross_socket);

  Cycles transfer_cycles(CoreId from, CoreId to) const override;
  Supply supply_class(CoreId from, CoreId to) const override;
  std::uint32_t distance(CoreId from, CoreId to) const override;
  std::uint32_t hops(CoreId from, CoreId to) const override;
  CoreId core_count() const override { return 2 * per_socket_; }
  std::string describe() const override;
  std::string identity() const override;

  int socket_of(CoreId c) const noexcept {
    return c < per_socket_ ? 0 : 1;
  }

 private:
  CoreId per_socket_;
  Cycles same_socket_;
  Cycles cross_socket_;
};

/// 2D mesh: core c sits at (c % width, c / width); latency = base +
/// per_hop * manhattan(from, to). Transfers within `near_hops` hops are
/// classed kNear, beyond that kFar.
class MeshInterconnect final : public Interconnect {
 public:
  MeshInterconnect(std::uint32_t width, std::uint32_t height, Cycles base,
                   Cycles per_hop, std::uint32_t near_hops);

  Cycles transfer_cycles(CoreId from, CoreId to) const override;
  Supply supply_class(CoreId from, CoreId to) const override;
  std::uint32_t distance(CoreId from, CoreId to) const override;
  std::uint32_t hops(CoreId from, CoreId to) const override;
  CoreId core_count() const override { return width_ * height_; }
  std::string describe() const override;
  std::string identity() const override;

  std::uint32_t manhattan(CoreId from, CoreId to) const noexcept;

 private:
  std::uint32_t width_;
  std::uint32_t height_;
  Cycles base_;
  Cycles per_hop_;
  std::uint32_t near_hops_;
};

/// Remaps core ids through a placement permutation: logical core i of the
/// workload occupies physical core perm[i]. This is how the backend models
/// pinning policies (compact fills a socket first; scatter alternates
/// sockets and maximises cross-socket hand-offs).
class PermutedInterconnect final : public Interconnect {
 public:
  PermutedInterconnect(std::unique_ptr<Interconnect> inner,
                       std::vector<CoreId> perm);

  Cycles transfer_cycles(CoreId from, CoreId to) const override;
  Supply supply_class(CoreId from, CoreId to) const override;
  std::uint32_t distance(CoreId from, CoreId to) const override;
  std::uint32_t hops(CoreId from, CoreId to) const override;
  CoreId core_count() const override;
  std::string describe() const override;
  std::string identity() const override;

 private:
  CoreId map(CoreId c) const { return c < perm_.size() ? perm_[c] : c; }
  std::unique_ptr<Interconnect> inner_;
  std::vector<CoreId> perm_;
};

/// Uniform latency between all distinct cores — the degenerate topology unit
/// tests use so expectations are exact.
class UniformInterconnect final : public Interconnect {
 public:
  UniformInterconnect(CoreId cores, Cycles latency);

  Cycles transfer_cycles(CoreId from, CoreId to) const override;
  Supply supply_class(CoreId from, CoreId to) const override;
  std::uint32_t distance(CoreId from, CoreId to) const override;
  std::uint32_t hops(CoreId from, CoreId to) const override;
  CoreId core_count() const override { return cores_; }
  std::string describe() const override;
  std::string identity() const override;

 private:
  CoreId cores_;
  Cycles latency_;
};

}  // namespace am::sim
