#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace am::sim {

PointTimeout::PointTimeout(Kind k, Cycles at, std::uint64_t events)
    : std::runtime_error(std::string("watchdog: ") + to_string(k) +
                         " at cycle " + std::to_string(at) + " after " +
                         std::to_string(events) + " events"),
      kind(k),
      at_cycle(at),
      events_processed(events) {}

const char* to_string(PointTimeout::Kind k) noexcept {
  switch (k) {
    case PointTimeout::Kind::kCycleBudget: return "cycle budget exceeded";
    case PointTimeout::Kind::kNoProgress: return "no forward progress";
  }
  return "?";
}

Machine::Machine(MachineConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      interconnect_(config_.make_interconnect()),
      cores_(config_.core_count()) {
  if (!interconnect_) throw std::invalid_argument("Machine: bad interconnect");
  if (config_.cache_capacity_lines == 0) config_.cache_capacity_lines = 1;
  core_states_.resize(cores_);
  residency_.resize(cores_);
  rngs_.reserve(cores_);
  SplitMix64 sm(seed);
  for (CoreId c = 0; c < cores_; ++c) rngs_.emplace_back(sm.next());
  arb_rng_ = Xoshiro256(sm.next());

  // Flatten the interconnect virtuals into dense tables (shared across
  // Machines of the same preset), and the proximity weights into a
  // per-distance lookup: exp() of the same inputs the seed core evaluated
  // per sharer, so the arbitration draws are bit-identical.
  routes_ = shared_route_table(*interconnect_);
  if (config_.arbitration == Arbitration::kProximityBiased) {
    weight_by_dist_ = routes_->proximity_weights(config_.arbitration_bias);
  }
  for (const Primitive p : kAllPrimitives) {
    serve_cost_[static_cast<std::size_t>(p)] =
        config_.l1_hit + config_.exec_cost_of(p);
  }
  // FENCE retires on the core without touching the cache: no l1_hit term.
  serve_cost_[static_cast<std::size_t>(Primitive::kFence)] = config_.fence_cost;
  tso_ = config_.memory_model == MemoryModel::kTso;
}

std::uint32_t Machine::slot_of(LineId id) {
  bool created = false;
  const std::uint32_t slot = line_index_.find_or_insert(
      id, static_cast<std::uint32_t>(line_ids_.size()), created);
  if (created) {
    line_ids_.push_back(id);
    line_owner_.push_back(kNoCore);
    line_owner_state_.push_back(Mesi::kInvalid);
    line_value_.push_back(0);
    line_busy_.push_back(0);
    line_sharers_.emplace_back();
    line_queue_.emplace_back();
    line_prefix_.emplace_back();
    line_prefix_valid_.push_back(0);
  }
  return slot;
}

void Machine::prime_line(LineId id, Mesi state, CoreId owner,
                         std::uint64_t value) {
  const std::uint32_t s = slot_of(id);
  for (CoreId c = 0; c < cores_; ++c) forget_resident(c, s);
  line_owner_[s] = kNoCore;
  line_owner_state_[s] = Mesi::kInvalid;
  line_sharers_[s].clear();
  line_busy_[s] = 0;
  line_queue_[s].clear();
  line_prefix_valid_[s] = 0;
  line_value_[s] = value;
  switch (state) {
    case Mesi::kInvalid:
      break;  // memory-only
    case Mesi::kShared:
      line_sharers_[s].push_back(owner);
      break;
    case Mesi::kExclusive:
      line_owner_[s] = owner;
      line_owner_state_[s] = Mesi::kExclusive;
      break;
    case Mesi::kModified:
      line_owner_[s] = owner;
      line_owner_state_[s] = Mesi::kModified;
      break;
  }
  if (state != Mesi::kInvalid) touch_resident(owner, s);
}

std::uint64_t Machine::line_value(LineId id) const {
  const std::uint32_t s = find_slot(id);
  return s == kNilSlot ? 0 : line_value_[s];
}

Mesi Machine::state_of(std::uint32_t slot, CoreId core) const {
  if (line_owner_[slot] == core) return line_owner_state_[slot];
  const std::vector<CoreId>& sh = line_sharers_[slot];
  if (std::find(sh.begin(), sh.end(), core) != sh.end()) {
    return Mesi::kShared;
  }
  return Mesi::kInvalid;
}

Mesi Machine::line_state(LineId id, CoreId core) const {
  const std::uint32_t s = find_slot(id);
  return s == kNilSlot ? Mesi::kInvalid : state_of(s, core);
}

std::vector<LineId> Machine::touched_lines() const {
  std::vector<LineId> ids = line_ids_;
  std::sort(ids.begin(), ids.end());
  return ids;
}

Machine::LineSnapshot Machine::snapshot_line(LineId id) const {
  LineSnapshot snap;
  const std::uint32_t s = find_slot(id);
  if (s == kNilSlot) return snap;
  snap.owner = line_owner_[s];
  snap.owner_state = line_owner_state_[s];
  snap.sharers = line_sharers_[s];
  snap.value = line_value_[s];
  snap.busy = line_busy_[s] != 0;
  snap.queued = line_queue_[s].size();
  return snap;
}

void Machine::verify_invariants() const {
  // Ascending line order: with several lines corrupted at once the report
  // always names the lowest id (the seed core walked an unordered_map, so
  // the named line varied with hash layout).
  for (const LineId id : touched_lines()) {
    check_line_invariants(find_slot(id), id);
  }
}

void Machine::set_trace(std::ostream* os) {
  if (os == nullptr) {
    owned_sink_.reset();
    sink_ = nullptr;
    return;
  }
  owned_sink_ = std::make_unique<obs::TextTraceSink>(*os);
  sink_ = owned_sink_.get();
}

EpochSample* Machine::epoch_at_slow(Cycles t) {
  if (!in_measure_window(t)) return nullptr;
  const std::size_t idx =
      static_cast<std::size_t>((t - warmup_end_) / epoch_cycles_);
  if (idx >= epochs_.size()) epochs_.resize(idx + 1);
  return &epochs_[idx];
}

void Machine::adjust_outstanding_slow() {
  if (EpochSample* ep = epoch_at(now_)) {
    ep->outstanding_max = std::max(ep->outstanding_max, outstanding_);
  }
}

void Machine::note_grant_slow(LineId id, CoreId core, Supply supply,
                              Cycles xfer, std::uint32_t queue_depth,
                              bool counts_acquisition) {
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kGrant;
    e.time = now_;
    e.core = core;
    e.line = id;
    e.req_id = core_states_[core].req_id;
    e.supply = static_cast<std::uint8_t>(supply);
    e.xfer_cycles = xfer;
    e.queue_depth = queue_depth;
    sink_->on_event(e);
  }
  if (profile_lines_ && in_measure_window(now_)) {
    LineProfile& p = line_prof_[id];
    ++p.accesses;
    ++p.supply[static_cast<std::size_t>(supply)];
    if (counts_acquisition) {
      ++p.acquisitions;
      p.queue_depth_sum += queue_depth;
      p.queue_depth_max = std::max(p.queue_depth_max, queue_depth);
    }
  }
}

void Machine::decode(const IssueRequest& req, DecodedOp& op) const {
  op.prim = req.prim;
  op.flags = 0;
  op.line = req.line;
  op.slot = kNilSlot;
  op.work_before = req.work_before;
  op.serve_cost = serve_cost_[static_cast<std::size_t>(req.prim)];
  if (req.store_value) {
    op.flags |= kHasStore;
    op.store_value = *req.store_value;
  }
  if (req.cas_expected) {
    op.flags |= kHasExpected;
    op.cas_expected = *req.cas_expected;
  }
  if (req.cas_desired) {
    op.flags |= kHasDesired;
    op.cas_desired = *req.cas_desired;
  }
}

RunStats Machine::run(ThreadProgram& program, CoreId active_cores,
                      Cycles warmup, Cycles measure) {
  if (active_cores > cores_) {
    throw std::invalid_argument("Machine::run: more active cores than exist");
  }
  // Per-run reset: cores restart with fresh contexts; lines (and any primed
  // state) persist. Any stale busy flags would wedge the directory, so a
  // previous run must have drained — the event loop below guarantees that.
  now_ = 0;
  for (auto& cs : core_states_) cs = CoreState{};

  RunStats stats;
  stats.freq_ghz = config_.freq_ghz;
  stats.threads.assign(active_cores, ThreadStats{});
  stats.measured_cycles = measure;
  EnergyAccounting energy(config_.energy);

  line_prof_.clear();
  epochs_.clear();
  outstanding_ = 0;
  run_ops_ = 0;
  run_grants_ = 0;
  run_transitions_ = 0;
  run_invalidations_ = 0;
  stats.epoch_cycles = epoch_cycles_;
  if (sink_ != nullptr) {
    sink_->on_run_begin(obs::TraceRunInfo{config_.name, active_cores, warmup,
                                          measure});
  }

  program_ = &program;
  active_cores_ = active_cores;
  warmup_end_ = warmup;
  end_time_ = warmup + measure;
  stats_ = &stats;
  energy_ = &energy;

  // Decode static plans once per run. A planned core's fetch skips the
  // next_op/on_result virtuals entirely — legal only because plan-eligible
  // programs draw no RNG and ignore results (see StaticPlan in program.hpp),
  // so the skipped calls were behaviourally empty.
  for (CoreId c = 0; c < active_cores; ++c) {
    if (const auto plan = program.static_plan(c)) {
      decode(plan->op, core_states_[c].op);
      core_states_[c].has_plan = true;
    }
  }

  for (CoreId c = 0; c < active_cores; ++c) schedule(0, EventKind::kFetchNext, c);

  // Watchdog state: the budget is on simulated time, the livelock check on
  // events dispatched without a grant or an op retirement in between.
  progress_marks_ = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t last_marks = 0;
  std::uint64_t last_progress_event = 0;

  try {
    while (!events_.empty()) {
      const SchedEntry ev = events_.pop();
      now_ = ev.time;
      if (watchdog_.max_cycles != 0 && now_ > watchdog_.max_cycles) {
        throw PointTimeout(PointTimeout::Kind::kCycleBudget, now_,
                           events_processed);
      }
      const CoreId core = core_of(ev.payload);
      switch (kind_of(ev.payload)) {
        case EventKind::kFetchNext: handle_fetch_next(core); break;
        case EventKind::kIssue: handle_issue(core); break;
        case EventKind::kOpDone: handle_op_done(core); break;
        case EventKind::kDrainDone: handle_drain_done(core); break;
      }
      ++events_processed;
      if (progress_marks_ != last_marks) {
        last_marks = progress_marks_;
        last_progress_event = events_processed;
      } else if (watchdog_.progress_events != 0 &&
                 events_processed - last_progress_event >=
                     watchdog_.progress_events) {
        throw PointTimeout(PointTimeout::Kind::kNoProgress, now_,
                           events_processed);
      }
    }
  } catch (...) {
    // The machine is mid-transaction (busy lines, queued requests) and must
    // be discarded; leave it consistent enough to destroy and keep any
    // attached trace well-formed.
    events_.clear();
    if (sink_ != nullptr) sink_->on_run_end();
    flush_metrics(now_);
    program_ = nullptr;
    stats_ = nullptr;
    energy_ = nullptr;
    throw;
  }

  energy.add_static(measure);
  stats.energy = energy.breakdown();

  if (profile_lines_) {
    stats.line_profiles.reserve(line_prof_.size());
    for (auto& [id, prof] : line_prof_) {
      prof.line = id;
      stats.line_profiles.push_back(prof);
    }
    std::sort(stats.line_profiles.begin(), stats.line_profiles.end(),
              [](const LineProfile& a, const LineProfile& b) {
                if (a.acquisitions != b.acquisitions) {
                  return a.acquisitions > b.acquisitions;
                }
                if (a.accesses != b.accesses) return a.accesses > b.accesses;
                return a.line < b.line;
              });
  }
  if (epoch_cycles_ > 0) {
    // Pad to the full window so the time-series has no missing tail; skip
    // the padding for open-ended runs (measure_single_op uses a huge
    // measure window that would never fill).
    const Cycles full = (measure + epoch_cycles_ - 1) / epoch_cycles_;
    if (full <= (1u << 20) && epochs_.size() < full) {
      epochs_.resize(static_cast<std::size_t>(full));
    }
    for (std::size_t i = 0; i < epochs_.size(); ++i) {
      epochs_[i].start = static_cast<Cycles>(i) * epoch_cycles_;
    }
    stats.epochs = epochs_;
  }
  if (sink_ != nullptr) sink_->on_run_end();
  flush_metrics(now_);

  program_ = nullptr;
  stats_ = nullptr;
  energy_ = nullptr;
  return stats;
}

void Machine::handle_fetch_next(CoreId core) {
  CoreState& cs = core_states_[core];
  if (cs.done || now_ >= end_time_) {
    // TSO: buffered stores must still reach the directory before the core
    // retires — the final memory state (which conformance checks) would
    // otherwise silently lose the write-backs.
    if (tso_ && !cs.sbuf.empty() && !cs.draining) {
      start_drain(core, DrainResume::kFinish);
      return;
    }
    cs.done = true;
    return;
  }
  if (cs.has_plan) {
    // The plan was decoded into cs.op once at run start and nothing on the
    // execute path mutates it; only the slot needs resolving, once.
    if (cs.op.slot == kNilSlot && cs.op.prim != Primitive::kFence) {
      cs.op.slot = slot_of(cs.op.line);
    }
  } else {
    const auto next = program_->next_op(core, rngs_[core]);
    if (!next) {
      if (tso_ && !cs.sbuf.empty() && !cs.draining) {
        start_drain(core, DrainResume::kFinish);
        return;
      }
      cs.done = true;
      return;
    }
    decode(*next, cs.op);
    // A fence targets no line: leave the slot unresolved so it fabricates no
    // directory record (touched_lines stays the set of real lines).
    if (cs.op.prim != Primitive::kFence) cs.op.slot = slot_of(cs.op.line);
  }
  cs.has_pending = true;
  cs.attempts_this_op = 0;
  // Zero think time adds zero to both tallies, so the window test (and the
  // stats/energy touches behind it) can be skipped outright.
  if (cs.op.work_before != 0 && in_measure_window(now_) &&
      core < stats_->threads.size()) {
    stats_->threads[core].work_cycles += cs.op.work_before;
    energy_->add_active_cycles(cs.op.work_before);
  }
  schedule(now_ + cs.op.work_before, EventKind::kIssue, core);
}

void Machine::handle_issue(CoreId core) {
  CoreState& cs = core_states_[core];
  cs.issue_time = now_;
  cs.req_id = ++next_req_id_;
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kIssue;
    e.time = now_;
    e.core = core;
    e.line = cs.op.line;
    e.req_id = cs.req_id;
    e.prim = static_cast<std::uint8_t>(cs.op.prim);
    sink_->on_event(e);
  }
  adjust_outstanding(+1);
  submit_request(core);
}

void Machine::submit_request(CoreId core) {
  CoreState& cs = core_states_[core];
  cs.attempt_start = now_;
  const Primitive prim = cs.op.prim;

  // FENCE retires on the core; no line, no directory. Under TSO it first
  // drains the store buffer (that is its whole point); under SC the buffer
  // is always empty and the fence is a priced ordering no-op.
  if (prim == Primitive::kFence) {
    if (tso_ && !cs.sbuf.empty()) {
      start_drain(core, DrainResume::kResubmit);
      return;
    }
    cs.local_op = LocalOp::kFence;
    cs.holds_token = false;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
    return;
  }

  if (tso_) {
    // STORE retires into the local store buffer: globally invisible until a
    // drain commits it. A full buffer forces a drain first (the op parks and
    // resubmits once the buffer is empty).
    if (prim == Primitive::kStore) {
      if (cs.sbuf.size() >= config_.store_buffer_entries) {
        start_drain(core, DrainResume::kResubmit);
        return;
      }
      cs.local_op = LocalOp::kBufferedStore;
      cs.holds_token = false;
      cs.last_supply = Supply::kLocalHit;
      cs.last_xfer = 0;
      cs.grant_time = now_;
      schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
      return;
    }
    if (prim == Primitive::kLoad) {
      // Store-to-load forwarding: the newest own buffered store to the same
      // line supplies the value. A load to any OTHER line falls through to
      // the directory past the buffered stores — the store-load reordering
      // TSO permits and SC forbids.
      for (auto it = cs.sbuf.rbegin(); it != cs.sbuf.rend(); ++it) {
        if (it->line == cs.op.line) {
          cs.local_op = LocalOp::kForwardedLoad;
          cs.forward_value = it->value;
          cs.holds_token = false;
          cs.last_supply = Supply::kLocalHit;
          cs.last_xfer = 0;
          cs.grant_time = now_;
          schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
          return;
        }
      }
    } else if (!cs.sbuf.empty()) {
      // RMWs are fencing on x86 (lock prefix): drain, then resubmit.
      start_drain(core, DrainResume::kResubmit);
      return;
    }
  }

  const std::uint32_t s = cs.op.slot;
  const Mesi st = state_of(s, core);

  // Pure read on any valid copy: an L1 hit that needs no directory slot and
  // can proceed concurrently with other readers.
  if (prim == Primitive::kLoad && st != Mesi::kInvalid) {
    touch_resident(core, s);
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.holds_token = false;
    cs.grant_time = now_;
    note_grant(cs.op.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/false);
    schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
    return;
  }

  // Writer that already owns the line exclusively: take the line slot
  // without a transfer (an uncontended lock-prefixed op on a hot line).
  if (needs_exclusive(prim) && line_owner_[s] == core && line_busy_[s] == 0 &&
      (st == Mesi::kExclusive || st == Mesi::kModified)) {
    touch_resident(core, s);
    line_busy_[s] = 1;
    cs.holds_token = true;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    note_grant(cs.op.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/true);
    schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
    return;
  }

  // Fault injection (conformance self-tests only): a writer holding the line
  // Shared skips the S->M upgrade round-trip, executes on its local copy and
  // silently loses the write-back.
  if (config_.fault == FaultInjection::kLostUpgradeWrite &&
      needs_exclusive(prim) && st == Mesi::kShared && line_busy_[s] == 0) {
    touch_resident(core, s);
    line_busy_[s] = 1;
    cs.holds_token = true;
    cs.drop_write = true;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    note_grant(cs.op.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/true);
    schedule(now_ + cs.op.serve_cost, EventKind::kOpDone, core);
    return;
  }

  // The proximity-arbitration weight is a pure function of (home, core,
  // bias), all fixed for the life of the request, so it is frozen here once
  // instead of being recomputed on every arbitration round.
  double weight = 0.0;
  if (config_.arbitration == Arbitration::kProximityBiased) {
    const CoreId home = static_cast<CoreId>(cs.op.line % cores_);
    weight = weight_by_dist_[routes_->distance(home, core)];
  }
  line_queue_[s].push_back(
      PendingRequest{core, needs_exclusive(prim), now_, weight});
  try_grant(s);
}

std::size_t Machine::arbitrate(std::uint32_t slot, LineId id) {
  const ReqQueue& q = line_queue_[slot];
  assert(!q.empty());
  if (hook_ != nullptr) {
    // Controlled scheduling (PCT): the hook overrides the policy. Out-of-
    // range return defers to the configured arbitration below.
    scratch_waiters_.clear();
    for (std::size_t i = 0; i < q.size(); ++i) {
      scratch_waiters_.push_back(q[i].core);
    }
    const std::size_t pick = hook_->pick(id, scratch_waiters_);
    if (pick < q.size()) return pick;
  }
  if (config_.arbitration == Arbitration::kFifo) {
    // Requests are queued in arrival order.
    return 0;
  }

  if (config_.arbitration == Arbitration::kNearestFirst) {
    const CoreId owner = line_owner_[slot];
    if (owner == kNoCore) return 0;
    // Anti-starvation: a sufficiently aged request is served first
    // regardless of distance (queue index 0 holds the oldest request).
    if (config_.arbitration_age_limit > 0 &&
        now_ - q.front().arrival > config_.arbitration_age_limit) {
      return 0;
    }
    // Deterministic nearest-first: the requester closest to the data wins.
    std::size_t best = 0;
    std::uint32_t best_d = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < q.size(); ++i) {
      const std::uint32_t d = routes_->distance(owner, q[i].core);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return best;
  }

  // Proximity-biased race: requests race to the line's *home agent* (the
  // directory slice that serializes them); a requester closer to the home
  // wins with probability proportional to exp(-distance/bias). Because the
  // home is fixed per line, the advantage is persistent — the mechanism
  // behind the paper's long-run unfairness.
  //
  // The seed core rebuilt the running total 0+w0+w1+...+w_{n-1} from scratch
  // every round. Here the per-line prefix-sum cache resumes that *exact*
  // sequential add chain from the last prefix unaffected by queue edits
  // (erasing index k shifts entries >= k, so the watermark drops to k):
  // every partial sum is bit-identical to the seed's, hence every arb_rng_
  // draw outcome is too. The winner-pick loop below must stay subtractive
  // over the per-entry weights — reformulating it against prefix
  // *differences* would round differently.
  (void)id;
  const std::size_t n = q.size();
  std::vector<double>& pre = line_prefix_[slot];
  if (pre.size() < n) pre.resize(n);
  std::size_t valid = line_prefix_valid_[slot];
  double total = valid > 0 ? pre[valid - 1] : 0.0;
  for (std::size_t i = valid; i < n; ++i) {
    total += q[i].weight;
    pre[i] = total;
  }
  line_prefix_valid_[slot] = static_cast<std::uint32_t>(n);
  double pick = arb_rng_.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    pick -= q[i].weight;
    if (pick <= 0.0) return i;
  }
  return n - 1;
}

void Machine::touch_resident(CoreId core, std::uint32_t slot) {
  Residency& res = residency_[core];
  // MRU shortcut: a core re-touching the line it touched last (the common
  // case for private-line and single-hot-line workloads) skips the index
  // probe — if the head node tracks this slot, find() would return head.
  if (res.head != kNilSlot && res.nodes[res.head].slot == slot) return;
  const std::uint32_t n = res.index.find(slot, kNilSlot);
  if (n != kNilSlot) {
    if (res.head == n) return;  // already most recently used
    // Unlink and relink at the head.
    ResNode& node = res.nodes[n];
    if (node.prev != kNilSlot) res.nodes[node.prev].next = node.next;
    if (node.next != kNilSlot) res.nodes[node.next].prev = node.prev;
    if (res.tail == n) res.tail = node.prev;
    node.prev = kNilSlot;
    node.next = res.head;
    if (res.head != kNilSlot) res.nodes[res.head].prev = n;
    res.head = n;
    if (res.tail == kNilSlot) res.tail = n;
    return;
  }
  std::uint32_t fresh;
  if (!res.free.empty()) {
    fresh = res.free.back();
    res.free.pop_back();
  } else {
    fresh = static_cast<std::uint32_t>(res.nodes.size());
    res.nodes.emplace_back();
  }
  ResNode& node = res.nodes[fresh];
  node.slot = slot;
  node.prev = kNilSlot;
  node.next = res.head;
  if (res.head != kNilSlot) res.nodes[res.head].prev = fresh;
  res.head = fresh;
  if (res.tail == kNilSlot) res.tail = fresh;
  res.index.insert(slot, fresh);
  ++res.count;
  if (res.count > config_.cache_capacity_lines) evict_one(core);
}

void Machine::forget_resident(CoreId core, std::uint32_t slot) {
  Residency& res = residency_[core];
  const std::uint32_t n = res.index.find(slot, kNilSlot);
  if (n == kNilSlot) return;
  ResNode& node = res.nodes[n];
  if (node.prev != kNilSlot) res.nodes[node.prev].next = node.next;
  if (node.next != kNilSlot) res.nodes[node.next].prev = node.prev;
  if (res.head == n) res.head = node.next;
  if (res.tail == n) res.tail = node.prev;
  res.index.erase(slot);
  res.free.push_back(n);
  --res.count;
}

void Machine::evict_one(CoreId core) {
  Residency& res = residency_[core];
  // Evict the least-recently-used line whose transaction slot is free
  // (an in-flight line cannot leave the cache mid-transaction).
  for (std::uint32_t n = res.tail; n != kNilSlot; n = res.nodes[n].prev) {
    const std::uint32_t s = res.nodes[n].slot;
    if (line_busy_[s] != 0) continue;
    const LineId victim = line_ids_[s];
    // Drop this core's copy; a Modified line writes back (the directory
    // value is already authoritative, so only the energy/stat is charged).
    const bool was_dirty =
        line_owner_[s] == core && line_owner_state_[s] == Mesi::kModified;
    if (line_owner_[s] == core) {
      line_owner_[s] = kNoCore;
      line_owner_state_[s] = Mesi::kInvalid;
    } else {
      std::vector<CoreId>& sh = line_sharers_[s];
      const auto sit = std::find(sh.begin(), sh.end(), core);
      if (sit != sh.end()) sh.erase(sit);
    }
    if (stats_ != nullptr && in_measure_window(now_)) {
      ++stats_->evictions;
      if (was_dirty && energy_ != nullptr) energy_->add_memory_fetch();
    }
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kEvict;
      e.time = now_;
      e.core = core;
      e.line = victim;
      sink_->on_event(e);
    }
    forget_resident(core, s);
    return;
  }
}

void Machine::check_line_invariants(std::uint32_t slot, LineId id) const {
  const CoreId owner = line_owner_[slot];
  const Mesi owner_state = line_owner_state_[slot];
  const std::vector<CoreId>& sharers = line_sharers_[slot];
  const ReqQueue& queue = line_queue_[slot];
  // Single-writer: an E/M owner excludes any Shared copy.
  if (owner != kNoCore) {
    if (owner_state != Mesi::kExclusive && owner_state != Mesi::kModified) {
      throw std::logic_error("MESI violation: owner without E/M state, line " +
                             std::to_string(id));
    }
    if (!sharers.empty()) {
      throw std::logic_error(
          "MESI violation: sharers coexist with an exclusive owner, line " +
          std::to_string(id));
    }
    if (owner >= cores_) {
      throw std::logic_error("MESI violation: owner out of range, line " +
                             std::to_string(id));
    }
  } else if (owner_state != Mesi::kInvalid) {
    throw std::logic_error("MESI violation: ownerless E/M state, line " +
                           std::to_string(id));
  }
  // Sharer list is a set of valid cores.
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    if (sharers[i] >= cores_) {
      throw std::logic_error("MESI violation: sharer out of range, line " +
                             std::to_string(id));
    }
    for (std::size_t j = i + 1; j < sharers.size(); ++j) {
      if (sharers[i] == sharers[j]) {
        throw std::logic_error("MESI violation: duplicate sharer, line " +
                               std::to_string(id));
      }
    }
  }
  // Each core has at most one pending request for this line.
  for (std::size_t i = 0; i < queue.size(); ++i) {
    for (std::size_t j = i + 1; j < queue.size(); ++j) {
      if (queue[i].core == queue[j].core) {
        throw std::logic_error(
            "protocol violation: duplicate request from one core, line " +
            std::to_string(id));
      }
    }
  }
}

void Machine::invalidate_copy(std::uint32_t slot, LineId id, CoreId core) {
  bool had_copy = false;
  forget_resident(core, slot);
  if (line_owner_[slot] == core) {
    line_owner_[slot] = kNoCore;
    line_owner_state_[slot] = Mesi::kInvalid;
    had_copy = true;
  }
  std::vector<CoreId>& sh = line_sharers_[slot];
  const auto it = std::find(sh.begin(), sh.end(), core);
  if (it != sh.end()) {
    sh.erase(it);
    had_copy = true;
  }
  if (had_copy) {
    ++run_invalidations_;
    ++run_transitions_;  // some valid state -> I
    if (stats_ != nullptr && in_measure_window(now_)) ++stats_->invalidations;
    if (profile_lines_ && in_measure_window(now_)) {
      ++line_prof_[id].invalidations;
    }
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kInvalidate;
      e.time = now_;
      e.core = core;
      e.line = id;
      sink_->on_event(e);
    }
  }
}

std::pair<Cycles, Supply> Machine::apply_grant(std::uint32_t slot, LineId id,
                                               const PendingRequest& req) {
  const CoreId requester = req.core;
  Cycles xfer = 0;
  Supply supply = Supply::kLocalHit;

  const bool charge = in_measure_window(now_);
  const CoreId owner = line_owner_[slot];
  if (owner != kNoCore && owner != requester) {
    // Dirty/exclusive copy elsewhere: cache-to-cache transfer.
    xfer = routes_->transfer_cycles(owner, requester);
    supply = routes_->supply_class(owner, requester);
    if (charge) {
      energy_->add_transfer(routes_->hops(owner, requester),
                            supply == Supply::kFar);
    }
    if (req.exclusive) {
      invalidate_copy(slot, id, owner);
      // Snapshot into reusable scratch: the seed core copied the sharer
      // vector per grant; same iteration order, no allocation.
      scratch_sharers_.assign(line_sharers_[slot].begin(),
                              line_sharers_[slot].end());
      for (const CoreId s : scratch_sharers_) {
        invalidate_copy(slot, id, s);
      }
      line_owner_[slot] = requester;
      line_owner_state_[slot] = Mesi::kModified;  // RFO: arrives ready-to-write
    } else {
      // Read request downgrades the owner to Shared; both keep copies.
      line_sharers_[slot].push_back(owner);
      line_owner_[slot] = kNoCore;
      line_owner_state_[slot] = Mesi::kInvalid;
      line_sharers_[slot].push_back(requester);
    }
  } else if (owner == requester) {
    // Requester queued behind other transactions but still owns the copy.
    xfer = 0;
    supply = Supply::kLocalHit;
  } else if (!line_sharers_[slot].empty()) {
    xfer = config_.shared_supply;
    supply = Supply::kNear;
    if (charge) energy_->add_transfer(1, false);
    if (req.exclusive) {
      // Fault injection (conformance self-tests only): leave the other
      // Shared copies alive next to the new M owner.
      if (config_.fault != FaultInjection::kSkipSharedInvalidate) {
        scratch_sharers_.assign(line_sharers_[slot].begin(),
                                line_sharers_[slot].end());
        for (const CoreId s : scratch_sharers_) {
          if (s != requester) invalidate_copy(slot, id, s);
        }
      }
      // Upgrade: drop our own shared copy record and take ownership.
      std::vector<CoreId>& sh = line_sharers_[slot];
      const auto self = std::find(sh.begin(), sh.end(), requester);
      if (self != sh.end()) sh.erase(self);
      line_owner_[slot] = requester;
      line_owner_state_[slot] = Mesi::kModified;
    } else {
      line_sharers_[slot].push_back(requester);
    }
  } else {
    // No cached copy anywhere: fill from memory.
    xfer = config_.memory_fill;
    supply = Supply::kMemory;
    if (charge) energy_->add_memory_fetch();
    if (stats_ != nullptr && in_measure_window(now_)) ++stats_->memory_fetches;
    if (req.exclusive) {
      line_owner_[slot] = requester;
      line_owner_state_[slot] = Mesi::kModified;
    } else {
      // Sole reader: MESI grants Exclusive-clean.
      line_owner_[slot] = requester;
      line_owner_state_[slot] = Mesi::kExclusive;
    }
  }
  return {xfer, supply};
}

void Machine::try_grant(std::uint32_t slot) {
  if (line_busy_[slot] != 0 || line_queue_[slot].empty()) return;
  const LineId id = line_ids_[slot];

  const std::size_t idx = arbitrate(slot, id);
  ReqQueue& q = line_queue_[slot];
  const PendingRequest req = q[idx];
  q.erase_at(idx);
  // Entries at and beyond idx shifted; their cached prefix sums are stale.
  line_prefix_valid_[slot] =
      std::min(line_prefix_valid_[slot], static_cast<std::uint32_t>(idx));

  if (in_measure_window(now_)) energy_->add_directory_lookup();
  const auto [xfer, supply] = apply_grant(slot, id, req);
  if (stats_ != nullptr && in_measure_window(now_) &&
      req.core < stats_->threads.size()) {
    ++stats_->transfers[static_cast<std::size_t>(supply)];
  }

  if (config_.paranoid_checks) check_line_invariants(slot, id);
  ++run_grants_;
  // A grant that supplied the line from anywhere but the requester's own
  // cache changed the requester's MESI state (I/S -> M/E/S); a local hit
  // kept it. Invalidations triggered inside apply_grant counted already.
  if (supply != Supply::kLocalHit) ++run_transitions_;
  ++progress_marks_;  // a directory grant moved a line: forward progress
  note_grant(id, req.core, supply, xfer,
             static_cast<std::uint32_t>(line_queue_[slot].size()),
             /*counts_acquisition=*/true);
  touch_resident(req.core, slot);
  CoreState& cs = core_states_[req.core];
  cs.last_supply = supply;
  cs.last_xfer = xfer;
  cs.holds_token = true;
  cs.grant_time = now_;
  line_busy_[slot] = 1;
  if (tso_ && cs.draining) {
    // Drain write-back: the store's exec cost was paid when it buffered;
    // the commit pays the transfer plus the local write (l1_hit).
    schedule(now_ + xfer + config_.l1_hit, EventKind::kDrainDone, req.core);
  } else {
    schedule(now_ + xfer + cs.op.serve_cost, EventKind::kOpDone, req.core);
  }
}

OpResult Machine::apply_op(Primitive prim, std::uint32_t slot,
                           OpContext& ctx) {
  // Mirrors am::execute() over std::atomic so both backends share value
  // semantics; equivalence is asserted by tests/sim/semantics_test.cpp.
  OpResult r;
  const std::uint64_t old = line_value_[slot];
  switch (prim) {
    case Primitive::kLoad:
      r.observed = old;
      ctx.expected = old;
      break;
    case Primitive::kStore:
      line_value_[slot] = ctx.store_value;
      r.observed = ctx.store_value;
      break;
    case Primitive::kSwap:
      r.observed = old;
      line_value_[slot] = ctx.store_value;
      ctx.expected = ctx.store_value;
      break;
    case Primitive::kTas:
      r.observed = old;
      line_value_[slot] = 1;
      r.success = (old == 0);
      ctx.expected = 1;
      break;
    case Primitive::kFaa:
      r.observed = old;
      line_value_[slot] = old + 1;
      ctx.expected = old + 1;
      break;
    case Primitive::kCas:
    case Primitive::kCasLoop:
      if (old == ctx.expected) {
        line_value_[slot] = ctx.cas_desired.value_or(old + 1);
        ctx.expected = line_value_[slot];
        r.observed = old;
        r.success = true;
      } else {
        ctx.expected = old;  // refresh, exactly like compare_exchange
        r.observed = old;
        r.success = false;
      }
      break;
  }
  return r;
}

void Machine::record_completion(CoreId core, const OpResult& r, Cycles latency) {
  if (core >= stats_->threads.size()) return;
  ThreadStats& ts = stats_->threads[core];
  const auto prim_idx = static_cast<std::size_t>(core_states_[core].op.prim);
  ++ts.ops;
  // FENCE (index 7) has no per-primitive bucket: the serialized arrays are
  // pinned at 7 wide (see Primitive::kFence).
  if (prim_idx < ts.ops_by_prim.size()) ++ts.ops_by_prim[prim_idx];
  if (r.success) {
    ++ts.successes;
    if (prim_idx < ts.successes_by_prim.size()) {
      ++ts.successes_by_prim[prim_idx];
    }
  } else {
    ++ts.failures;
  }
  ts.latency_sum += static_cast<double>(latency);
  ts.latency_hist.add(std::max<double>(1.0, static_cast<double>(latency)));
  if (ts.ops == 1) {
    ts.latency_min = ts.latency_max = latency;
  } else {
    ts.latency_min = std::min(ts.latency_min, latency);
    ts.latency_max = std::max(ts.latency_max, latency);
  }
}

void Machine::handle_op_done(CoreId core) {
  CoreState& cs = core_states_[core];
  if (cs.local_op != LocalOp::kNone) {
    handle_local_op_done(core);
    return;
  }
  const std::uint32_t slot = cs.op.slot;
  const Primitive prim = cs.op.prim;

  ++cs.attempts_this_op;
  if (cs.op.flags == 0) {
    // No operands attached (loads, plain RMWs): one test instead of three.
    cs.ctx.cas_desired.reset();
  } else {
    if (cs.op.flags & kHasStore) cs.ctx.store_value = cs.op.store_value;
    if ((cs.op.flags & kHasExpected) && cs.attempts_this_op == 1) {
      cs.ctx.expected = cs.op.cas_expected;
    }
    if (cs.op.flags & kHasDesired) {
      cs.ctx.cas_desired = cs.op.cas_desired;
    } else {
      cs.ctx.cas_desired.reset();
    }
  }
  const std::uint64_t value_before = line_value_[slot];
  OpResult result = apply_op(prim, slot, cs.ctx);
  if (cs.drop_write) {
    line_value_[slot] = value_before;  // injected lost update
    cs.drop_write = false;
  }

  const Cycles exec = cs.op.serve_cost;
  const Cycles latency = now_ - cs.issue_time;
  // Queue + transfer stall of *this acquisition* (a CAS loop's failed
  // attempts each stall separately; charging per attempt keeps losing
  // cores' spin energy accounted even when their op never completes).
  const Cycles attempt_span = now_ - cs.attempt_start;
  const Cycles waited = attempt_span > exec ? attempt_span - exec : 0;
  // Cycles this acquisition held the line slot (0 for a pure local read,
  // which never takes the slot).
  const Cycles held = cs.holds_token ? now_ - cs.grant_time : 0;

  const bool in_window = in_measure_window(now_);
  if (in_window && core < stats_->threads.size()) {
    ThreadStats& ts = stats_->threads[core];
    ts.exec_cycles += exec;
    ts.wait_cycles += waited;
    // Attempts (line acquisitions) are charged when they happen so that a
    // CAS loop's failed acquisitions count even if the op never completes
    // inside the window.
    ++ts.attempts;
    energy_->add_active_cycles(exec);
    energy_->add_spin_cycles(waited);
  }
  if (profile_lines_ && in_window && held > 0) {
    line_prof_[cs.op.line].hold_cycles += held;
  }
  if (EpochSample* ep = epoch_at(now_)) {
    ++ep->attempts;
    ep->wait_cycles += waited;
    ep->exec_cycles += exec;
  }

  // Release the line slot before anything else so queued requesters are
  // served ahead of our own retry — the hardware behaviour that makes
  // CAS loops lose their line between attempts.
  if (cs.holds_token) {
    cs.holds_token = false;
    line_busy_[slot] = 0;
  }

  if (prim == Primitive::kCasLoop && !result.success) {
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kRetry;
      e.time = now_;
      e.core = core;
      e.line = cs.op.line;
      // The retry starts a fresh acquisition flow (new id so the viewer
      // draws one arrow per attempt -> grant pair).
      e.req_id = next_req_id_ + 1;
      e.prim = static_cast<std::uint8_t>(prim);
      e.supply = static_cast<std::uint8_t>(cs.last_supply);
      e.value = line_value_[slot];
      e.hold_cycles = held;
      sink_->on_event(e);
    }
    cs.req_id = ++next_req_id_;
    try_grant(slot);
    submit_request(core);  // retry; issue_time (and thus latency) persists
    return;
  }

  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kOpDone;
    e.time = now_;
    e.core = core;
    e.line = cs.op.line;
    e.req_id = cs.req_id;
    e.prim = static_cast<std::uint8_t>(prim);
    e.supply = static_cast<std::uint8_t>(cs.last_supply);
    e.success = result.success;
    e.value = line_value_[slot];
    e.latency = latency;
    e.hold_cycles = held;
    sink_->on_event(e);
  }
  if (EpochSample* ep = epoch_at(now_)) ++ep->ops;
  adjust_outstanding(-1);
  ++run_ops_;
  ++progress_marks_;  // an operation retired: forward progress

  if (in_window && core < stats_->threads.size()) {
    record_completion(core, result, latency);
  }
  cs.has_pending = false;
  // Plan-eligible programs ignore results (contract in program.hpp), so the
  // virtual call is skipped on the static fast path.
  if (!cs.has_plan) program_->on_result(core, result);
  if (hook_ != nullptr) hook_->on_step(core);
  try_grant(slot);
  schedule(now_, EventKind::kFetchNext, core);
}

void Machine::handle_local_op_done(CoreId core) {
  CoreState& cs = core_states_[core];
  const Primitive prim = cs.op.prim;
  const LocalOp kind = cs.local_op;
  cs.local_op = LocalOp::kNone;
  ++cs.attempts_this_op;

  OpResult result;
  switch (kind) {
    case LocalOp::kFence:
      result.observed = 0;
      if (stats_ != nullptr && in_measure_window(now_)) {
        ++stats_->fences;
        energy_->add_fence();
      }
      break;
    case LocalOp::kBufferedStore: {
      if (cs.op.flags & kHasStore) cs.ctx.store_value = cs.op.store_value;
      cs.ctx.cas_desired.reset();
      cs.sbuf.push_back(
          BufferedStore{cs.op.line, cs.op.slot, cs.ctx.store_value});
      result.observed = cs.ctx.store_value;
      break;
    }
    case LocalOp::kForwardedLoad:
      result.observed = cs.forward_value;
      cs.ctx.expected = cs.forward_value;
      break;
    case LocalOp::kNone:
      break;
  }

  const Cycles exec = cs.op.serve_cost;
  const Cycles latency = now_ - cs.issue_time;
  const Cycles attempt_span = now_ - cs.attempt_start;
  const Cycles waited = attempt_span > exec ? attempt_span - exec : 0;
  const bool in_window = in_measure_window(now_);
  if (in_window && core < stats_->threads.size()) {
    ThreadStats& ts = stats_->threads[core];
    ts.exec_cycles += exec;
    ts.wait_cycles += waited;
    ++ts.attempts;
    energy_->add_active_cycles(exec);
    energy_->add_spin_cycles(waited);
  }
  if (EpochSample* ep = epoch_at(now_)) {
    ++ep->attempts;
    ep->wait_cycles += waited;
    ep->exec_cycles += exec;
    ++ep->ops;
  }
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kOpDone;
    e.time = now_;
    e.core = core;
    e.line = cs.op.line;
    e.req_id = cs.req_id;
    e.prim = static_cast<std::uint8_t>(prim);
    e.supply = static_cast<std::uint8_t>(Supply::kLocalHit);
    e.success = result.success;
    e.value = result.observed;
    e.latency = latency;
    sink_->on_event(e);
  }
  adjust_outstanding(-1);
  ++run_ops_;
  ++progress_marks_;  // a local retirement is forward progress too
  if (in_window && core < stats_->threads.size()) {
    record_completion(core, result, latency);
  }
  cs.has_pending = false;
  if (!cs.has_plan) program_->on_result(core, result);
  if (hook_ != nullptr) hook_->on_step(core);
  schedule(now_, EventKind::kFetchNext, core);
}

void Machine::start_drain(CoreId core, DrainResume resume) {
  CoreState& cs = core_states_[core];
  cs.draining = true;
  cs.drain_resume = resume;
  drain_next(core);
}

void Machine::drain_next(CoreId core) {
  CoreState& cs = core_states_[core];
  if (cs.sbuf.empty()) {
    cs.draining = false;
    const DrainResume resume = cs.drain_resume;
    cs.drain_resume = DrainResume::kNone;
    if (resume == DrainResume::kResubmit) {
      submit_request(core);  // the parked foreground op proceeds
    } else if (resume == DrainResume::kFinish) {
      cs.done = true;
    }
    return;
  }
  // The head store needs exclusive ownership of its line to commit — the
  // drain is an ordinary directory transaction competing with everyone else.
  const BufferedStore& bs = cs.sbuf.front();
  const std::uint32_t s = bs.slot;
  const Mesi st = state_of(s, core);
  if (line_owner_[s] == core && line_busy_[s] == 0 &&
      (st == Mesi::kExclusive || st == Mesi::kModified)) {
    touch_resident(core, s);
    line_busy_[s] = 1;
    cs.holds_token = true;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    schedule(now_ + config_.l1_hit, EventKind::kDrainDone, core);
    return;
  }
  double weight = 0.0;
  if (config_.arbitration == Arbitration::kProximityBiased) {
    const CoreId home = static_cast<CoreId>(bs.line % cores_);
    weight = weight_by_dist_[routes_->distance(home, core)];
  }
  line_queue_[s].push_back(PendingRequest{core, /*exclusive=*/true, now_,
                                          weight});
  try_grant(s);
}

void Machine::handle_drain_done(CoreId core) {
  CoreState& cs = core_states_[core];
  const BufferedStore bs = cs.sbuf.front();
  cs.sbuf.erase(cs.sbuf.begin());  // FIFO: oldest store commits first
  line_value_[bs.slot] = bs.value;
  if (stats_ != nullptr && in_measure_window(now_)) {
    ++stats_->store_buffer_drains;
  }
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kDrain;
    e.time = now_;
    e.core = core;
    e.line = bs.line;
    e.value = bs.value;
    e.queue_depth = static_cast<std::uint32_t>(cs.sbuf.size());
    sink_->on_event(e);
  }
  ++progress_marks_;  // a committed write-back is forward progress
  if (cs.holds_token) {
    cs.holds_token = false;
    line_busy_[bs.slot] = 0;
  }
  try_grant(bs.slot);
  drain_next(core);
}

void Machine::flush_metrics(std::uint64_t cycles) {
  namespace m = obs::metrics;
  if (!m::enabled()) return;
  // One registry lookup per process (the instruments are immortal), one
  // sharded fetch-add per counter per run.
  static m::Counter& runs = m::default_registry().counter(
      "am_sim_runs_total", "Machine::run calls completed (incl. watchdog)");
  static m::Counter& sim_cycles = m::default_registry().counter(
      "am_sim_cycles_total", "Simulated cycles elapsed across all runs");
  static m::Counter& ops = m::default_registry().counter(
      "am_sim_ops_total", "Atomic operations retired by the simulator");
  static m::Counter& grants = m::default_registry().counter(
      "am_sim_directory_grants_total", "Directory line-slot grants served");
  static m::Counter& transitions = m::default_registry().counter(
      "am_sim_mesi_transitions_total", "MESI line-state transitions applied");
  static m::Counter& invals = m::default_registry().counter(
      "am_sim_invalidations_total", "Cache-line copies invalidated");
  runs.inc();
  sim_cycles.inc(cycles);
  ops.inc(run_ops_);
  grants.inc(run_grants_);
  transitions.inc(run_transitions_);
  invals.inc(run_invalidations_);
}

Cycles Machine::measure_single_op(CoreId core, Primitive prim, LineId id) {
  IssueRequest req;
  req.prim = prim;
  req.line = id;
  ScriptProgram script(core, {req});
  const RunStats st = run(script, core + 1, 0, std::numeric_limits<Cycles>::max() / 2);
  if (core < st.threads.size() && st.threads[core].ops == 1) {
    return static_cast<Cycles>(st.threads[core].latency_sum);
  }
  return 0;
}

}  // namespace am::sim
