// Machine configuration for the simulator, and the two presets that stand in
// for the paper's testbeds.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atomics/primitives.hpp"
#include "sim/energy_model.hpp"
#include "sim/interconnect.hpp"
#include "sim/types.hpp"

namespace am::sim {

enum class InterconnectKind : std::uint8_t { kTwoSocket, kMesh, kUniform };

/// Deliberate protocol defects, used only by the conformance harness to
/// prove the differential oracle catches real coherence bugs. kNone is the
/// only mode benchmarks and experiments ever run.
enum class FaultInjection : std::uint8_t {
  kNone,
  /// An exclusive request by a core holding the line Shared is served from
  /// the stale local copy without the upgrade round-trip, and the write-back
  /// is dropped — the classic lost-update window of a skipped S->M upgrade.
  kLostUpgradeWrite,
  /// An upgrade from Shared takes ownership without invalidating the other
  /// sharers, leaving Shared copies alive next to an M owner.
  kSkipSharedInvalidate,
};

const char* to_string(FaultInjection f) noexcept;

/// Memory-consistency model the machine simulates. kSc is the seed-era
/// behaviour (every op applies at its completion event, so the global
/// completion order is sequentially consistent). kTso adds per-core FIFO
/// store buffers with same-core load forwarding — stores retire locally and
/// drain to the directory later (at a fence, an RMW, buffer overflow, or
/// thread exit), which is the x86-TSO behaviour the paper's testbeds
/// actually have. docs/memory_models.md has the semantics and the
/// byte-identity story.
enum class MemoryModel : std::uint8_t { kSc = 0, kTso = 1 };

const char* to_string(MemoryModel m) noexcept;
std::optional<MemoryModel> parse_memory_model(const std::string& name) noexcept;

struct MachineConfig {
  std::string name = "machine";
  double freq_ghz = 2.3;

  // --- topology -----------------------------------------------------------
  InterconnectKind interconnect = InterconnectKind::kUniform;
  CoreId cores = 4;            ///< total cores (kUniform / per-preset)
  std::uint32_t mesh_width = 0;   ///< kMesh only
  std::uint32_t mesh_height = 0;  ///< kMesh only

  // --- latencies (cycles) --------------------------------------------------
  Cycles l1_hit = 4;            ///< op on a line already held in adequate state
  Cycles same_socket_xfer = 70; ///< cache-to-cache, one socket (kTwoSocket)
  Cycles cross_socket_xfer = 180;  ///< cache-to-cache across QPI (kTwoSocket)
  Cycles mesh_base_xfer = 120;  ///< kMesh: transfer latency at distance 0+
  Cycles mesh_per_hop = 4;      ///< kMesh: added per Manhattan hop
  std::uint32_t mesh_near_hops = 4;  ///< kMesh: <= this many hops -> kNear
  Cycles uniform_xfer = 100;    ///< kUniform
  Cycles memory_fill = 230;     ///< line present in no cache
  Cycles shared_supply = 40;    ///< LOAD served from LLC/sharer without ownership change

  /// Execution cost of each primitive once the line is held in a sufficient
  /// state (indexed by Primitive). Lock-prefixed RMWs cost ~20 cycles even
  /// uncontended; plain load/store retire in a few.
  std::array<Cycles, 7> exec_cost = {1, 1, 20, 20, 20, 24, 24};

  Arbitration arbitration = Arbitration::kFifo;
  /// Anti-starvation for kNearestFirst: a request older than this many
  /// cycles is served ahead of nearer newcomers (real fabrics bound bypass).
  /// 0 means strict nearest-first (total starvation possible).
  Cycles arbitration_age_limit = 1500;
  /// Temperature of kProximityBiased: grant weight = exp(-distance/bias).
  /// Smaller -> stronger locality bias.
  double arbitration_bias = 1.0;

  /// Per-core private cache capacity in lines (LRU). Large enough by default
  /// that only the capacity tests exercise eviction.
  std::uint32_t cache_capacity_lines = 1u << 20;

  EnergyParams energy{};

  /// Placement permutation: workload (logical) core i runs on physical core
  /// placement[i]. Empty = identity (compact/natural order). Built by
  /// placement_for() from a PinOrder.
  std::vector<CoreId> placement;

  /// Verify MESI invariants (single writer, no duplicate sharers, owner
  /// consistency) after every directory transaction. O(sharers) per grant;
  /// enabled by the protocol stress tests, off for benchmarks.
  bool paranoid_checks = false;

  /// Injected protocol defect (conformance-harness self-tests only).
  FaultInjection fault = FaultInjection::kNone;

  /// Memory-consistency model. kSc (default) is byte-identical to the seed
  /// core; the TSO fields below only take effect — and only enter the
  /// fingerprint — when this is kTso.
  MemoryModel memory_model = MemoryModel::kSc;

  /// Cost of a FENCE once the issuing core's store buffer is empty (the
  /// drain itself is priced by the usual transfer/serve machinery). Roughly
  /// an mfence: ~33 cycles on Haswell-era parts (Schweizer et al.).
  Cycles fence_cost = 33;

  /// Store-buffer capacity in entries (x86 parts have 42-56; a small default
  /// keeps overflow-forced drains reachable in tests). kTso only.
  std::uint32_t store_buffer_entries = 8;

  Cycles exec_cost_of(Primitive p) const noexcept {
    if (p == Primitive::kFence) return fence_cost;
    return exec_cost[static_cast<std::size_t>(p)];
  }

  /// Builds the interconnect this config describes.
  std::unique_ptr<Interconnect> make_interconnect() const;

  /// Total core count implied by the topology fields.
  CoreId core_count() const noexcept;

  /// Serializes every field that affects simulation results into a stable
  /// string. The sweep result cache hashes this into its keys, so two
  /// configs with the same fingerprint must simulate identically.
  std::string fingerprint() const;
};

/// Preset approximating a 2-socket, 18-core-per-socket Intel Xeon E5 v3/v4
/// (the paper's first testbed): 2.3 GHz, ~70-cycle intra-socket and
/// ~180-cycle cross-socket cache-to-cache transfers.
MachineConfig xeon_e5_2x18();

/// Preset approximating an Intel Xeon Phi 7210/7290 (KNL, the paper's second
/// testbed): 64 tiles on an 8x8 mesh at 1.3-1.5 GHz, higher base transfer
/// latency, latency growing with mesh distance, higher RMW cost.
MachineConfig knl_64();

/// Small uniform machine for unit tests: every latency is a round number so
/// tests can assert exact cycle counts.
MachineConfig test_machine(CoreId cores, Cycles xfer = 100, Cycles l1 = 4,
                           Cycles mem = 200);

/// Looks up a preset by name ("xeon" | "knl"); returns test_machine(4) for
/// unknown names.
MachineConfig preset_by_name(const std::string& name);

/// Builds a placement permutation over @p cores physical cores:
///   compact  -> identity (fill the first socket/mesh rows first)
///   scatter  -> interleave the two machine halves (alternating sockets on
///               the Xeon; alternating mesh halves on KNL)
std::vector<CoreId> placement_for(CoreId cores, bool scatter);

}  // namespace am::sim
