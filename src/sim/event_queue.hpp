// Calendar-queue event scheduler for the fast-path simulator core.
//
// The machine's event loop needs a priority queue with an *exact* total
// order: ascending event time, FIFO (insertion sequence) among equal times.
// The seed core used std::priority_queue over a (time, seq) comparator;
// this replaces it with a classic Brown calendar queue — an array of time
// buckets of width `width_` cycles that wraps every `nbuckets * width_`
// cycles (one "year") — giving amortized O(1) push/pop for the
// near-monotone schedules a discrete-event simulator produces, with no
// per-event heap allocation (buckets are flat vectors that keep their
// capacity; a popped slot is reclaimed by a head cursor, not an erase).
//
// Two things keep the constant factor low:
//  * push/pop fast paths are inlined here (append-to-tail / pop-from-the
//    cursor's own bucket cover almost every call in a near-monotone run);
//  * a nonempty-bucket bitmap (one bit per bucket, scanned with ctz) lets
//    the slow-path sweep step straight between occupied buckets instead of
//    walking empty ones, which matters when inter-event gaps exceed the
//    bucket width.
//
// Determinism contract (locked down by tests/sim/event_queue_test.cpp
// against a std::priority_queue reference): pop() returns entries in
// exactly ascending (time, seq) order regardless of bucket width, resize
// history, year rollover, or out-of-order pushes. The simulator's
// byte-identity guarantee rests on this queue agreeing with the seed
// core's scheduler on every pop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace am::sim {

/// One scheduled event. `seq` is the caller's insertion counter and is the
/// FIFO tie-break among equal times; `payload` is opaque to the queue.
struct SchedEntry {
  Cycles time = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload = 0;
};

class CalendarQueue {
 public:
  CalendarQueue();

  /// Inserts an entry. Pushing a time earlier than the last pop is allowed
  /// (the cursor rewinds); the total order is still honoured.
  void push(Cycles time, std::uint64_t seq, std::uint32_t payload) {
    const std::size_t b = bucket_of(time);
    Bucket& bk = buckets_[b];
    if (bk.items.empty()) {
      bk.items.push_back({time, seq, payload});
      live_[b >> 6] |= std::uint64_t{1} << (b & 63);
    } else if (!before_time(time, seq, bk.items.back())) {
      bk.items.push_back({time, seq, payload});
    } else {
      push_mid(bk, {time, seq, payload});
    }
    ++size_;
    // An entry earlier than the cursor's current window would be missed by
    // the forward scan; rewind the cursor to its window (out-of-order pushes
    // are legal, just not the fast path).
    if (time + width_ < cur_top_) seek_to(time);
    if (size_ > 2 * buckets_.size()) resize(buckets_.size() * 2);
  }

  /// Removes and returns the minimum entry by (time, seq). Precondition:
  /// !empty(). Fast path: the cursor's own bucket holds a due entry.
  SchedEntry pop() {
    Bucket& bk = buckets_[cur_bucket_];
    if (bk.head < bk.items.size() && bk.items[bk.head].time < cur_top_) {
      const SchedEntry e = bk.items[bk.head];
      pop_front(bk, cur_bucket_);
      --size_;
      if (size_ < buckets_.size() / 2) maybe_shrink();
      return e;
    }
    return pop_slow();
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Drops all entries but keeps bucket capacity (the watchdog abort path).
  void clear();

  // --- introspection for the property tests --------------------------------
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  Cycles bucket_width() const noexcept { return width_; }

 private:
  struct Bucket {
    /// Entries at [head, items.size()), sorted ascending by (time, seq).
    std::vector<SchedEntry> items;
    std::size_t head = 0;

    bool empty() const noexcept { return head >= items.size(); }
    const SchedEntry& front() const noexcept { return items[head]; }
  };

  static bool before_time(Cycles time, std::uint64_t seq,
                          const SchedEntry& b) noexcept {
    return time != b.time ? time < b.time : seq < b.seq;
  }

  std::size_t bucket_of(Cycles time) const noexcept {
    return static_cast<std::size_t>(time >> shift_) & mask_;
  }
  void push_mid(Bucket& b, const SchedEntry& e);
  void pop_front(Bucket& b, std::size_t idx) {
    ++b.head;
    if (b.head >= b.items.size()) {
      b.items.clear();
      b.head = 0;
      live_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    } else if (b.head >= 64 && b.head * 2 >= b.items.size()) {
      compact(b);
    }
  }
  void compact(Bucket& b);
  SchedEntry pop_slow();
  void maybe_shrink();
  /// First live bucket at cyclic position >= @p b (wrapping). Precondition:
  /// size_ > 0, so one exists.
  std::size_t next_live(std::size_t b) const noexcept;
  /// Points the cursor at the year/bucket containing @p time.
  void seek_to(Cycles time) noexcept;
  /// Rebuilds with @p nbuckets buckets and a width inferred from the
  /// current population's time span.
  void resize(std::size_t nbuckets);

  std::vector<Bucket> buckets_;
  /// Bit b set iff buckets_[b] is nonempty; sized ceil(nbuckets/64).
  std::vector<std::uint64_t> live_;
  std::size_t mask_ = 0;       ///< buckets_.size() - 1 (power of two)
  Cycles width_ = 1;           ///< bucket time span; always 1 << shift_
  unsigned shift_ = 0;         ///< log2(width_): bucket_of shifts, no divide
  std::size_t cur_bucket_ = 0; ///< where the next pop scan starts
  Cycles cur_top_ = 0;         ///< exclusive due-time bound of cur_bucket_
  std::size_t size_ = 0;
};

}  // namespace am::sim
