#include "sim/route_table.hpp"

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace am::sim {

std::shared_ptr<const RouteTable> shared_route_table(const Interconnect& ic) {
  const std::string key = ic.identity();
  if (key.empty()) {
    return std::make_shared<const RouteTable>(ic);
  }
  // Immortal cache: presets are few and tables are small relative to a
  // Machine's line store, so entries are never evicted.
  static std::mutex mu;
  static std::unordered_map<std::string, std::shared_ptr<const RouteTable>>*
      cache = new std::unordered_map<std::string,
                                     std::shared_ptr<const RouteTable>>();
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  // Build outside the lock so concurrent misses on different presets don't
  // serialize; a racing duplicate build is harmless (last one wins).
  auto table = std::make_shared<const RouteTable>(ic);
  std::lock_guard<std::mutex> lock(mu);
  return cache->emplace(key, std::move(table)).first->second;
}

}  // namespace am::sim
