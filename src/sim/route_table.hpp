// Precomputed interconnect routing tables for the fast-path core.
//
// The seed core made four virtual calls into the Interconnect on every line
// grant (transfer latency, supply class, distance, hop count) — and through
// a PermutedInterconnect wrapper each of those was *two* virtual hops plus a
// permutation lookup. All four functions are pure in (from, to), so the
// Machine constructor flattens them into n*n dense tables once; the event
// loop then does a single multiply-add index per grant.
//
// Byte-identity note: the tables store the exact values the virtuals would
// have returned, and the proximity-bias weights exp(-d / bias) are
// precomputed per distinct distance from the same double expression the
// seed core evaluated per sharer — identical inputs to std::exp give
// identical bits, so weighted arbitration draws are unchanged.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/interconnect.hpp"
#include "sim/types.hpp"

namespace am::sim {

class RouteTable {
 public:
  RouteTable() = default;

  explicit RouteTable(const Interconnect& ic) {
    n_ = ic.core_count();
    const std::size_t nn = static_cast<std::size_t>(n_) * n_;
    xfer_.resize(nn);
    supply_.resize(nn);
    dist_.resize(nn);
    hops_.resize(nn);
    std::uint32_t max_dist = 0;
    for (CoreId f = 0; f < n_; ++f) {
      for (CoreId t = 0; t < n_; ++t) {
        const std::size_t i = idx(f, t);
        xfer_[i] = ic.transfer_cycles(f, t);
        supply_[i] = ic.supply_class(f, t);
        dist_[i] = ic.distance(f, t);
        hops_[i] = ic.hops(f, t);
        if (dist_[i] > max_dist) max_dist = dist_[i];
      }
    }
    max_distance_ = max_dist;
  }

  Cycles transfer_cycles(CoreId from, CoreId to) const noexcept {
    return xfer_[idx(from, to)];
  }
  Supply supply_class(CoreId from, CoreId to) const noexcept {
    return supply_[idx(from, to)];
  }
  std::uint32_t distance(CoreId from, CoreId to) const noexcept {
    return dist_[idx(from, to)];
  }
  std::uint32_t hops(CoreId from, CoreId to) const noexcept {
    return hops_[idx(from, to)];
  }
  std::uint32_t max_distance() const noexcept { return max_distance_; }
  CoreId core_count() const noexcept { return n_; }

  /// Tabulates exp(-d / bias) for every distance d up to max_distance().
  /// Same expression, same inputs, same bits as the per-sharer evaluation
  /// it replaces.
  std::vector<double> proximity_weights(double bias) const {
    std::vector<double> w(max_distance_ + 1);
    for (std::uint32_t d = 0; d <= max_distance_; ++d) {
      w[d] = std::exp(-static_cast<double>(d) / bias);
    }
    return w;
  }

 private:
  std::size_t idx(CoreId from, CoreId to) const noexcept {
    return static_cast<std::size_t>(from) * n_ + to;
  }

  CoreId n_ = 0;
  std::uint32_t max_distance_ = 0;
  std::vector<Cycles> xfer_;
  std::vector<Supply> supply_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> hops_;
};

/// Route table for @p ic, shared process-wide across Machines whose
/// interconnects report the same Interconnect::identity(). Building the
/// table costs O(n^2) virtual calls — tens of microseconds on a 64-core
/// mesh — which dominated Machine construction on short sweep points;
/// the sweep engine constructs one Machine per point, all from the same
/// preset. An empty identity() disables sharing (a fresh table is built).
/// Thread-safe; the returned table is immutable.
std::shared_ptr<const RouteTable> shared_route_table(const Interconnect& ic);

}  // namespace am::sim
