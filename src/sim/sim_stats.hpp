// Result records produced by a simulation run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/stats.hpp"
#include "sim/energy_model.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Per-core measurement-window counters.
struct ThreadStats {
  std::uint64_t ops = 0;        ///< completed operations (CASLOOP counts once)
  std::uint64_t successes = 0;  ///< ops whose primitive reported success
  std::uint64_t failures = 0;   ///< failed single-shot CAS / TAS-already-set
  /// Per-primitive completion/success counts (indexed by Primitive) — lets
  /// composite workloads (lock protocols) separate acquisitions from spins.
  std::array<std::uint64_t, 7> ops_by_prim{};
  std::array<std::uint64_t, 7> successes_by_prim{};
  std::uint64_t attempts = 0;   ///< line acquisitions (CASLOOP retries add up)
  Cycles exec_cycles = 0;       ///< cycles executing primitives
  Cycles wait_cycles = 0;       ///< cycles stalled on queueing + transfer
  Cycles work_cycles = 0;       ///< cycles of configured local work
  double latency_sum = 0.0;     ///< sum of per-op latencies (cycles)
  Cycles latency_min = 0;
  Cycles latency_max = 0;
  /// Log-spaced latency histogram (1 cycle .. 100M cycles) for tail
  /// percentiles; always collected (completions are rare next to events).
  LogHistogram latency_hist{1.0, 1e8, 8};

  double mean_latency() const noexcept {
    return ops == 0 ? 0.0 : latency_sum / static_cast<double>(ops);
  }
};

/// Per-line contention profile over the measurement window (collected when
/// Machine::set_line_profiling(true) is set before the run). This is the
/// per-resource breakdown that localizes an atomic bottleneck: which lines
/// are hot, how deep their grant queues ran, and which supply classes
/// served them.
struct LineProfile {
  LineId line = 0;
  std::uint64_t accesses = 0;      ///< ops served on the line (incl. L1 hits)
  std::uint64_t acquisitions = 0;  ///< line-slot grants (exclusive accesses)
  std::uint64_t invalidations = 0; ///< copies killed by other cores' RFOs
  std::uint64_t queue_depth_sum = 0;  ///< waiters left queued, summed at grant
  std::uint32_t queue_depth_max = 0;  ///< deepest queue seen at a grant
  Cycles hold_cycles = 0;          ///< cycles the line slot was held, summed
  /// Accesses by supply class (index == Supply).
  std::array<std::uint64_t, kSupplyClasses> supply{};

  double mean_queue_depth() const noexcept {
    return acquisitions == 0 ? 0.0
                             : static_cast<double>(queue_depth_sum) /
                                   static_cast<double>(acquisitions);
  }
  double mean_hold_cycles() const noexcept {
    return acquisitions == 0 ? 0.0
                             : static_cast<double>(hold_cycles) /
                                   static_cast<double>(acquisitions);
  }
};

/// One window of the epoch time-series (collected when
/// Machine::set_epoch_cycles(w) is set with w > 0). Makes regime
/// transitions — the paper's low-to-high contention crossover — visible
/// inside a single run instead of only as an end-of-run aggregate.
struct EpochSample {
  Cycles start = 0;  ///< offset of the epoch start inside the measure window
  std::uint64_t ops = 0;       ///< operations completed in the epoch
  std::uint64_t attempts = 0;  ///< line acquisitions in the epoch
  Cycles wait_cycles = 0;      ///< queueing + transfer stall charged
  Cycles exec_cycles = 0;      ///< primitive execution cycles charged
  std::uint32_t outstanding_max = 0;  ///< peak in-flight requests observed

  double throughput_ops_per_kcycle(Cycles window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(ops) * 1000.0 /
                             static_cast<double>(window);
  }
  /// Fraction of the epoch's aggregate core-cycles spent stalled.
  double wait_fraction(Cycles window, std::uint32_t cores) const noexcept {
    const double denom = static_cast<double>(window) * cores;
    return denom <= 0.0 ? 0.0 : static_cast<double>(wait_cycles) / denom;
  }
};

/// Whole-run results over the measurement window.
struct RunStats {
  Cycles measured_cycles = 0;  ///< length of the measurement window
  double freq_ghz = 1.0;
  std::vector<ThreadStats> threads;

  /// Line transfers by supply class (index == Supply).
  std::array<std::uint64_t, kSupplyClasses> transfers{};
  std::uint64_t invalidations = 0;
  std::uint64_t memory_fetches = 0;
  std::uint64_t evictions = 0;
  /// TSO only; both stay 0 under SC (reports/digests print named fields, so
  /// appending counters here does not disturb existing serialized output).
  std::uint64_t store_buffer_drains = 0;  ///< buffered stores written back
  std::uint64_t fences = 0;               ///< FENCE ops retired

  /// Hot-line profiles, hottest (most acquisitions) first. Empty unless
  /// line profiling was enabled for the run.
  std::vector<LineProfile> line_profiles;

  /// Epoch time-series; empty unless epoch sampling was enabled.
  Cycles epoch_cycles = 0;  ///< sampling window (0 = sampling was off)
  std::vector<EpochSample> epochs;

  EnergyBreakdown energy;

  // --- derived -------------------------------------------------------------
  std::uint64_t total_ops() const noexcept;
  std::uint64_t total_successes() const noexcept;
  std::uint64_t total_attempts() const noexcept;

  /// System throughput in operations per 1000 cycles.
  double throughput_ops_per_kcycle() const noexcept;
  /// System throughput in million operations per second (uses freq_ghz).
  double throughput_mops() const noexcept;
  /// Mean per-op latency across all threads, cycles.
  double mean_latency_cycles() const noexcept;
  /// Success fraction (successes / ops); 1.0 for primitives that cannot fail.
  double success_rate() const noexcept;
  /// Jain fairness index over per-thread completed ops.
  double jain_fairness_ops() const;
  /// min/max per-thread ops ratio.
  double min_max_ops_ratio() const;
  /// Energy per completed operation, nanojoules.
  double energy_per_op_nj() const noexcept;

  /// Per-thread op counts as doubles (fairness helpers).
  std::vector<double> per_thread_ops() const;
};

}  // namespace am::sim
