// Result records produced by a simulation run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/stats.hpp"
#include "sim/energy_model.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Per-core measurement-window counters.
struct ThreadStats {
  std::uint64_t ops = 0;        ///< completed operations (CASLOOP counts once)
  std::uint64_t successes = 0;  ///< ops whose primitive reported success
  std::uint64_t failures = 0;   ///< failed single-shot CAS / TAS-already-set
  /// Per-primitive completion/success counts (indexed by Primitive) — lets
  /// composite workloads (lock protocols) separate acquisitions from spins.
  std::array<std::uint64_t, 7> ops_by_prim{};
  std::array<std::uint64_t, 7> successes_by_prim{};
  std::uint64_t attempts = 0;   ///< line acquisitions (CASLOOP retries add up)
  Cycles exec_cycles = 0;       ///< cycles executing primitives
  Cycles wait_cycles = 0;       ///< cycles stalled on queueing + transfer
  Cycles work_cycles = 0;       ///< cycles of configured local work
  double latency_sum = 0.0;     ///< sum of per-op latencies (cycles)
  Cycles latency_min = 0;
  Cycles latency_max = 0;
  /// Log-spaced latency histogram (1 cycle .. 100M cycles) for tail
  /// percentiles; always collected (completions are rare next to events).
  LogHistogram latency_hist{1.0, 1e8, 8};

  double mean_latency() const noexcept {
    return ops == 0 ? 0.0 : latency_sum / static_cast<double>(ops);
  }
};

/// Whole-run results over the measurement window.
struct RunStats {
  Cycles measured_cycles = 0;  ///< length of the measurement window
  double freq_ghz = 1.0;
  std::vector<ThreadStats> threads;

  /// Line transfers by supply class (index == Supply).
  std::array<std::uint64_t, kSupplyClasses> transfers{};
  std::uint64_t invalidations = 0;
  std::uint64_t memory_fetches = 0;
  std::uint64_t evictions = 0;

  EnergyBreakdown energy;

  // --- derived -------------------------------------------------------------
  std::uint64_t total_ops() const noexcept;
  std::uint64_t total_successes() const noexcept;
  std::uint64_t total_attempts() const noexcept;

  /// System throughput in operations per 1000 cycles.
  double throughput_ops_per_kcycle() const noexcept;
  /// System throughput in million operations per second (uses freq_ghz).
  double throughput_mops() const noexcept;
  /// Mean per-op latency across all threads, cycles.
  double mean_latency_cycles() const noexcept;
  /// Success fraction (successes / ops); 1.0 for primitives that cannot fail.
  double success_rate() const noexcept;
  /// Jain fairness index over per-thread completed ops.
  double jain_fairness_ops() const;
  /// min/max per-thread ops ratio.
  double min_max_ops_ratio() const;
  /// Energy per completed operation, nanojoules.
  double energy_per_op_nj() const noexcept;

  /// Per-thread op counts as doubles (fairness helpers).
  std::vector<double> per_thread_ops() const;
};

}  // namespace am::sim
