// The pre-rewrite (seed) discrete-event machine, frozen verbatim as the
// timing-exact reference implementation.
//
// The fast-path core in sim/machine.hpp restructured the simulator's data
// layout (struct-of-arrays line state, calendar-queue scheduler, precomputed
// routing tables, decoded op streams) under a byte-identity contract: every
// RunStats field, trace byte and final line state must match this
// implementation exactly. Keeping the original core compiled and linked
// makes that contract *executable*:
//   - tests/sim/core_equivalence_test.cpp replays a seeded conformance
//     corpus through both cores and asserts identical digests (and checks
//     both against committed golden snapshots, so the pair cannot drift
//     together);
//   - bench/bench_sim_core.cpp measures points/sec on both cores, which
//     turns the ">= 5x uncached simulate path" target into a
//     machine-independent ratio the CI perf gate can enforce.
//
// Do not modify this file except to keep it compiling: any behavioural
// change here silently re-baselines the equivalence proof. It mirrors the
// seed machine.cpp at the commit this file was introduced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/random.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"  // PointTimeout, WatchdogConfig (shared contract)
#include "sim/program.hpp"
#include "sim/sim_stats.hpp"
#include "sim/types.hpp"

namespace am::sim::legacy {

/// Verbatim copy of the seed-core Machine (priority-queue scheduler,
/// unordered_map line store, per-event interconnect virtual calls). Public
/// surface matches sim::Machine so tests and benches can drive either
/// through the same code paths.
class Machine {
 public:
  explicit Machine(MachineConfig config, std::uint64_t seed = 1);

  const MachineConfig& config() const noexcept { return config_; }
  const Interconnect& interconnect() const noexcept { return *interconnect_; }
  CoreId core_count() const noexcept { return cores_; }

  void prime_line(LineId line, Mesi state, CoreId owner, std::uint64_t value = 0);

  std::uint64_t line_value(LineId line) const;
  Mesi line_state(LineId line, CoreId core) const;

  std::vector<LineId> touched_lines() const;

  using LineSnapshot = sim::Machine::LineSnapshot;
  LineSnapshot snapshot_line(LineId line) const;

  void verify_invariants() const;

  RunStats run(ThreadProgram& program, CoreId active_cores, Cycles warmup,
               Cycles measure);

  Cycles measure_single_op(CoreId core, Primitive prim, LineId line);

  void set_sink(obs::TraceSink* sink) noexcept {
    sink_ = sink;
    owned_sink_.reset();
  }

  void set_trace(std::ostream* os);

  void set_line_profiling(bool on) { profile_lines_ = on; }

  void set_epoch_cycles(Cycles window) { epoch_cycles_ = window; }

  void set_watchdog(WatchdogConfig wd) noexcept { watchdog_ = wd; }
  const WatchdogConfig& watchdog() const noexcept { return watchdog_; }

 private:
  // --- event machinery -----------------------------------------------------
  enum class EventKind : std::uint8_t { kFetchNext, kIssue, kOpDone };

  struct Event {
    Cycles time;
    std::uint64_t seq;  ///< tie-break: deterministic FIFO at equal times
    EventKind kind;
    CoreId core;
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  struct PendingRequest {
    CoreId core;
    bool exclusive;
    Cycles arrival;
  };

  struct LineState {
    CoreId owner = kNoCore;       ///< E/M holder
    Mesi owner_state = Mesi::kInvalid;
    std::vector<CoreId> sharers;  ///< S holders (excludes owner)
    std::uint64_t value = 0;
    bool busy = false;            ///< a transaction is in flight
    std::vector<PendingRequest> queue;

    bool cached_anywhere() const noexcept {
      return owner != kNoCore || !sharers.empty();
    }
  };

  struct CoreState {
    OpContext ctx;
    bool done = false;
    bool has_pending = false;
    IssueRequest pending;
    Cycles issue_time = 0;
    Cycles attempt_start = 0;
    Cycles grant_time = 0;
    std::uint64_t req_id = 0;
    std::uint32_t attempts_this_op = 0;
    bool holds_token = false;
    bool drop_write = false;
    Supply last_supply = Supply::kLocalHit;
    Cycles last_xfer = 0;
  };

  void schedule(Cycles time, EventKind kind, CoreId core);
  void handle_fetch_next(const Event& ev);
  void handle_issue(const Event& ev);
  void handle_op_done(const Event& ev);
  void submit_request(CoreId core);

  void try_grant(LineId line);
  std::size_t arbitrate(const LineState& ls, LineId id);
  std::pair<Cycles, Supply> apply_grant(LineState& ls, LineId id,
                                        const PendingRequest& req);

  OpResult apply_op(Primitive prim, LineState& ls, OpContext& ctx);

  void invalidate_copy(LineState& ls, LineId id, CoreId core);

  void check_line_invariants(const LineState& ls, LineId id) const;

  void touch_resident(CoreId core, LineId id);
  void forget_resident(CoreId core, LineId id);
  void evict_one(CoreId core);

  LineState& line(LineId id) { return lines_[id]; }
  Mesi state_of(const LineState& ls, CoreId core) const;

  void record_completion(CoreId core, const OpResult& r, Cycles latency);
  bool in_measure_window(Cycles t) const noexcept {
    return t >= warmup_end_ && t < end_time_;
  }

  // --- observability -------------------------------------------------------
  void emit(const obs::TraceEvent& e) {
    if (sink_ != nullptr) sink_->on_event(e);
  }
  void note_grant(LineId id, CoreId core, Supply supply, Cycles xfer,
                  std::uint32_t queue_depth, bool counts_acquisition) {
    if (sink_ != nullptr || profile_lines_) {
      note_grant_slow(id, core, supply, xfer, queue_depth, counts_acquisition);
    }
  }
  void note_grant_slow(LineId id, CoreId core, Supply supply, Cycles xfer,
                       std::uint32_t queue_depth, bool counts_acquisition);
  EpochSample* epoch_at(Cycles t) {
    return epoch_cycles_ == 0 ? nullptr : epoch_at_slow(t);
  }
  EpochSample* epoch_at_slow(Cycles t);
  void adjust_outstanding(int delta) {
    outstanding_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(outstanding_) + delta);
    if (epoch_cycles_ != 0) adjust_outstanding_slow();
  }
  void adjust_outstanding_slow();

  MachineConfig config_;
  std::unique_ptr<Interconnect> interconnect_;
  CoreId cores_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;

  std::unordered_map<LineId, LineState> lines_;

  struct Residency {
    std::list<LineId> lru;  ///< front = most recently used
    std::unordered_map<LineId, std::list<LineId>::iterator> index;
  };
  std::vector<Residency> residency_;

  std::vector<CoreState> core_states_;
  std::vector<Xoshiro256> rngs_;
  Xoshiro256 arb_rng_{0x9d2c5680};

  obs::TraceSink* sink_ = nullptr;
  std::unique_ptr<obs::TraceSink> owned_sink_;
  std::uint64_t next_req_id_ = 0;

  bool profile_lines_ = false;
  std::unordered_map<LineId, LineProfile> line_prof_;

  Cycles epoch_cycles_ = 0;
  std::vector<EpochSample> epochs_;
  std::uint32_t outstanding_ = 0;

  WatchdogConfig watchdog_{};
  std::uint64_t progress_marks_ = 0;

  // The legacy core deliberately does NOT publish telemetry: it exists for
  // equivalence/benchmark comparison runs and must not double-count the
  // process-wide am_sim_* counters next to the live core.
  std::uint64_t run_ops_ = 0;
  std::uint64_t run_grants_ = 0;
  std::uint64_t run_transitions_ = 0;
  std::uint64_t run_invalidations_ = 0;

  // Per-run context.
  ThreadProgram* program_ = nullptr;
  CoreId active_cores_ = 0;
  Cycles warmup_end_ = 0;
  Cycles end_time_ = 0;
  RunStats* stats_ = nullptr;
  EnergyAccounting* energy_ = nullptr;
};

}  // namespace am::sim::legacy
