// Verbatim port of the seed-core machine.cpp (see legacy_machine.hpp for
// why this exists and why it must not change behaviour). The only edits
// relative to the seed file are the namespace, the removal of the
// PointTimeout definitions (shared with the live core via machine.hpp) and
// the removal of the telemetry flush (the reference core must not
// double-count the process-wide am_sim_* counters).
#include "sim/legacy_machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace am::sim::legacy {

Machine::Machine(MachineConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      interconnect_(config_.make_interconnect()),
      cores_(config_.core_count()) {
  if (!interconnect_) throw std::invalid_argument("Machine: bad interconnect");
  // The frozen seed core is sequentially consistent only; a TSO config here
  // would silently simulate the wrong model (and differential comparisons
  // against the live core would be meaningless).
  if (config_.memory_model != MemoryModel::kSc) {
    throw std::invalid_argument(
        "legacy::Machine: only MemoryModel::kSc is supported");
  }
  if (config_.cache_capacity_lines == 0) config_.cache_capacity_lines = 1;
  core_states_.resize(cores_);
  residency_.resize(cores_);
  rngs_.reserve(cores_);
  SplitMix64 sm(seed);
  for (CoreId c = 0; c < cores_; ++c) rngs_.emplace_back(sm.next());
  arb_rng_ = Xoshiro256(sm.next());
}

void Machine::prime_line(LineId id, Mesi state, CoreId owner,
                         std::uint64_t value) {
  LineState& ls = line(id);
  for (CoreId c = 0; c < cores_; ++c) forget_resident(c, id);
  ls = LineState{};
  ls.value = value;
  switch (state) {
    case Mesi::kInvalid:
      break;  // memory-only
    case Mesi::kShared:
      ls.sharers.push_back(owner);
      break;
    case Mesi::kExclusive:
      ls.owner = owner;
      ls.owner_state = Mesi::kExclusive;
      break;
    case Mesi::kModified:
      ls.owner = owner;
      ls.owner_state = Mesi::kModified;
      break;
  }
  if (state != Mesi::kInvalid) touch_resident(owner, id);
}

std::uint64_t Machine::line_value(LineId id) const {
  const auto it = lines_.find(id);
  return it == lines_.end() ? 0 : it->second.value;
}

Mesi Machine::state_of(const LineState& ls, CoreId core) const {
  if (ls.owner == core) return ls.owner_state;
  if (std::find(ls.sharers.begin(), ls.sharers.end(), core) != ls.sharers.end()) {
    return Mesi::kShared;
  }
  return Mesi::kInvalid;
}

Mesi Machine::line_state(LineId id, CoreId core) const {
  const auto it = lines_.find(id);
  return it == lines_.end() ? Mesi::kInvalid : state_of(it->second, core);
}

std::vector<LineId> Machine::touched_lines() const {
  std::vector<LineId> ids;
  ids.reserve(lines_.size());
  for (const auto& [id, ls] : lines_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Machine::LineSnapshot Machine::snapshot_line(LineId id) const {
  LineSnapshot snap;
  const auto it = lines_.find(id);
  if (it == lines_.end()) return snap;
  const LineState& ls = it->second;
  snap.owner = ls.owner;
  snap.owner_state = ls.owner_state;
  snap.sharers = ls.sharers;
  snap.value = ls.value;
  snap.busy = ls.busy;
  snap.queued = ls.queue.size();
  return snap;
}

void Machine::verify_invariants() const {
  for (const auto& [id, ls] : lines_) check_line_invariants(ls, id);
}

void Machine::schedule(Cycles time, EventKind kind, CoreId core) {
  events_.push(Event{time, next_seq_++, kind, core});
}

void Machine::set_trace(std::ostream* os) {
  if (os == nullptr) {
    owned_sink_.reset();
    sink_ = nullptr;
    return;
  }
  owned_sink_ = std::make_unique<obs::TextTraceSink>(*os);
  sink_ = owned_sink_.get();
}

EpochSample* Machine::epoch_at_slow(Cycles t) {
  if (!in_measure_window(t)) return nullptr;
  const std::size_t idx =
      static_cast<std::size_t>((t - warmup_end_) / epoch_cycles_);
  if (idx >= epochs_.size()) epochs_.resize(idx + 1);
  return &epochs_[idx];
}

void Machine::adjust_outstanding_slow() {
  if (EpochSample* ep = epoch_at(now_)) {
    ep->outstanding_max = std::max(ep->outstanding_max, outstanding_);
  }
}

void Machine::note_grant_slow(LineId id, CoreId core, Supply supply,
                              Cycles xfer, std::uint32_t queue_depth,
                              bool counts_acquisition) {
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kGrant;
    e.time = now_;
    e.core = core;
    e.line = id;
    e.req_id = core_states_[core].req_id;
    e.supply = static_cast<std::uint8_t>(supply);
    e.xfer_cycles = xfer;
    e.queue_depth = queue_depth;
    sink_->on_event(e);
  }
  if (profile_lines_ && in_measure_window(now_)) {
    LineProfile& p = line_prof_[id];
    ++p.accesses;
    ++p.supply[static_cast<std::size_t>(supply)];
    if (counts_acquisition) {
      ++p.acquisitions;
      p.queue_depth_sum += queue_depth;
      p.queue_depth_max = std::max(p.queue_depth_max, queue_depth);
    }
  }
}

RunStats Machine::run(ThreadProgram& program, CoreId active_cores,
                      Cycles warmup, Cycles measure) {
  if (active_cores > cores_) {
    throw std::invalid_argument("Machine::run: more active cores than exist");
  }
  now_ = 0;
  for (auto& cs : core_states_) cs = CoreState{};

  RunStats stats;
  stats.freq_ghz = config_.freq_ghz;
  stats.threads.assign(active_cores, ThreadStats{});
  stats.measured_cycles = measure;
  EnergyAccounting energy(config_.energy);

  line_prof_.clear();
  epochs_.clear();
  outstanding_ = 0;
  run_ops_ = 0;
  run_grants_ = 0;
  run_transitions_ = 0;
  run_invalidations_ = 0;
  stats.epoch_cycles = epoch_cycles_;
  if (sink_ != nullptr) {
    sink_->on_run_begin(obs::TraceRunInfo{config_.name, active_cores, warmup,
                                          measure});
  }

  program_ = &program;
  active_cores_ = active_cores;
  warmup_end_ = warmup;
  end_time_ = warmup + measure;
  stats_ = &stats;
  energy_ = &energy;

  for (CoreId c = 0; c < active_cores; ++c) schedule(0, EventKind::kFetchNext, c);

  progress_marks_ = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t last_marks = 0;
  std::uint64_t last_progress_event = 0;

  try {
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      if (watchdog_.max_cycles != 0 && now_ > watchdog_.max_cycles) {
        throw PointTimeout(PointTimeout::Kind::kCycleBudget, now_,
                           events_processed);
      }
      switch (ev.kind) {
        case EventKind::kFetchNext: handle_fetch_next(ev); break;
        case EventKind::kIssue: handle_issue(ev); break;
        case EventKind::kOpDone: handle_op_done(ev); break;
      }
      ++events_processed;
      if (progress_marks_ != last_marks) {
        last_marks = progress_marks_;
        last_progress_event = events_processed;
      } else if (watchdog_.progress_events != 0 &&
                 events_processed - last_progress_event >=
                     watchdog_.progress_events) {
        throw PointTimeout(PointTimeout::Kind::kNoProgress, now_,
                           events_processed);
      }
    }
  } catch (...) {
    events_ = {};
    if (sink_ != nullptr) sink_->on_run_end();
    program_ = nullptr;
    stats_ = nullptr;
    energy_ = nullptr;
    throw;
  }

  energy.add_static(measure);
  stats.energy = energy.breakdown();

  if (profile_lines_) {
    stats.line_profiles.reserve(line_prof_.size());
    for (auto& [id, prof] : line_prof_) {
      prof.line = id;
      stats.line_profiles.push_back(prof);
    }
    std::sort(stats.line_profiles.begin(), stats.line_profiles.end(),
              [](const LineProfile& a, const LineProfile& b) {
                if (a.acquisitions != b.acquisitions) {
                  return a.acquisitions > b.acquisitions;
                }
                if (a.accesses != b.accesses) return a.accesses > b.accesses;
                return a.line < b.line;
              });
  }
  if (epoch_cycles_ > 0) {
    const Cycles full = (measure + epoch_cycles_ - 1) / epoch_cycles_;
    if (full <= (1u << 20) && epochs_.size() < full) {
      epochs_.resize(static_cast<std::size_t>(full));
    }
    for (std::size_t i = 0; i < epochs_.size(); ++i) {
      epochs_[i].start = static_cast<Cycles>(i) * epoch_cycles_;
    }
    stats.epochs = epochs_;
  }
  if (sink_ != nullptr) sink_->on_run_end();

  program_ = nullptr;
  stats_ = nullptr;
  energy_ = nullptr;
  return stats;
}

void Machine::handle_fetch_next(const Event& ev) {
  CoreState& cs = core_states_[ev.core];
  if (cs.done || now_ >= end_time_) {
    cs.done = true;
    return;
  }
  auto next = program_->next_op(ev.core, rngs_[ev.core]);
  if (!next) {
    cs.done = true;
    return;
  }
  cs.pending = *next;
  cs.has_pending = true;
  cs.attempts_this_op = 0;
  if (in_measure_window(now_) && ev.core < stats_->threads.size()) {
    stats_->threads[ev.core].work_cycles += next->work_before;
    energy_->add_active_cycles(next->work_before);
  }
  schedule(now_ + next->work_before, EventKind::kIssue, ev.core);
}

void Machine::handle_issue(const Event& ev) {
  CoreState& cs = core_states_[ev.core];
  cs.issue_time = now_;
  cs.req_id = ++next_req_id_;
  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kIssue;
    e.time = now_;
    e.core = ev.core;
    e.line = cs.pending.line;
    e.req_id = cs.req_id;
    e.prim = static_cast<std::uint8_t>(cs.pending.prim);
    sink_->on_event(e);
  }
  adjust_outstanding(+1);
  submit_request(ev.core);
}

void Machine::submit_request(CoreId core) {
  CoreState& cs = core_states_[core];
  cs.attempt_start = now_;
  const Primitive prim = cs.pending.prim;
  LineState& ls = line(cs.pending.line);
  const Mesi st = state_of(ls, core);

  if (prim == Primitive::kLoad && st != Mesi::kInvalid) {
    touch_resident(core, cs.pending.line);
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.holds_token = false;
    cs.grant_time = now_;
    note_grant(cs.pending.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/false);
    schedule(now_ + config_.l1_hit + config_.exec_cost_of(prim),
             EventKind::kOpDone, core);
    return;
  }

  if (needs_exclusive(prim) && ls.owner == core && !ls.busy &&
      (st == Mesi::kExclusive || st == Mesi::kModified)) {
    touch_resident(core, cs.pending.line);
    ls.busy = true;
    cs.holds_token = true;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    note_grant(cs.pending.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/true);
    schedule(now_ + config_.l1_hit + config_.exec_cost_of(prim),
             EventKind::kOpDone, core);
    return;
  }

  if (config_.fault == FaultInjection::kLostUpgradeWrite &&
      needs_exclusive(prim) && st == Mesi::kShared && !ls.busy) {
    touch_resident(core, cs.pending.line);
    ls.busy = true;
    cs.holds_token = true;
    cs.drop_write = true;
    cs.last_supply = Supply::kLocalHit;
    cs.last_xfer = 0;
    cs.grant_time = now_;
    note_grant(cs.pending.line, core, Supply::kLocalHit, 0, 0,
               /*counts_acquisition=*/true);
    schedule(now_ + config_.l1_hit + config_.exec_cost_of(prim),
             EventKind::kOpDone, core);
    return;
  }

  ls.queue.push_back(PendingRequest{core, needs_exclusive(prim), now_});
  try_grant(cs.pending.line);
}

std::size_t Machine::arbitrate(const LineState& ls, LineId id) {
  assert(!ls.queue.empty());
  if (config_.arbitration == Arbitration::kFifo) {
    return 0;
  }

  if (config_.arbitration == Arbitration::kNearestFirst) {
    if (ls.owner == kNoCore) return 0;
    if (config_.arbitration_age_limit > 0 &&
        now_ - ls.queue.front().arrival > config_.arbitration_age_limit) {
      return 0;
    }
    std::size_t best = 0;
    std::uint32_t best_d = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < ls.queue.size(); ++i) {
      const std::uint32_t d =
          interconnect_->distance(ls.owner, ls.queue[i].core);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return best;
  }

  const CoreId home = static_cast<CoreId>(id % cores_);
  double total = 0.0;
  std::vector<double> weight(ls.queue.size());
  for (std::size_t i = 0; i < ls.queue.size(); ++i) {
    const std::uint32_t d = interconnect_->distance(home, ls.queue[i].core);
    weight[i] = std::exp(-static_cast<double>(d) / config_.arbitration_bias);
    total += weight[i];
  }
  double pick = arb_rng_.next_double() * total;
  for (std::size_t i = 0; i < ls.queue.size(); ++i) {
    pick -= weight[i];
    if (pick <= 0.0) return i;
  }
  return ls.queue.size() - 1;
}

void Machine::touch_resident(CoreId core, LineId id) {
  Residency& res = residency_[core];
  const auto it = res.index.find(id);
  if (it != res.index.end()) {
    res.lru.splice(res.lru.begin(), res.lru, it->second);
    return;
  }
  res.lru.push_front(id);
  res.index[id] = res.lru.begin();
  if (res.lru.size() > config_.cache_capacity_lines) evict_one(core);
}

void Machine::forget_resident(CoreId core, LineId id) {
  Residency& res = residency_[core];
  const auto it = res.index.find(id);
  if (it == res.index.end()) return;
  res.lru.erase(it->second);
  res.index.erase(it);
}

void Machine::evict_one(CoreId core) {
  Residency& res = residency_[core];
  for (auto it = res.lru.rbegin(); it != res.lru.rend(); ++it) {
    const LineId victim = *it;
    LineState& ls = line(victim);
    if (ls.busy) continue;
    const bool was_dirty =
        ls.owner == core && ls.owner_state == Mesi::kModified;
    if (ls.owner == core) {
      ls.owner = kNoCore;
      ls.owner_state = Mesi::kInvalid;
    } else {
      const auto sit = std::find(ls.sharers.begin(), ls.sharers.end(), core);
      if (sit != ls.sharers.end()) ls.sharers.erase(sit);
    }
    if (stats_ != nullptr && in_measure_window(now_)) {
      ++stats_->evictions;
      if (was_dirty && energy_ != nullptr) energy_->add_memory_fetch();
    }
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kEvict;
      e.time = now_;
      e.core = core;
      e.line = victim;
      sink_->on_event(e);
    }
    forget_resident(core, victim);
    return;
  }
}

void Machine::check_line_invariants(const LineState& ls, LineId id) const {
  if (ls.owner != kNoCore) {
    if (ls.owner_state != Mesi::kExclusive && ls.owner_state != Mesi::kModified) {
      throw std::logic_error("MESI violation: owner without E/M state, line " +
                             std::to_string(id));
    }
    if (!ls.sharers.empty()) {
      throw std::logic_error(
          "MESI violation: sharers coexist with an exclusive owner, line " +
          std::to_string(id));
    }
    if (ls.owner >= cores_) {
      throw std::logic_error("MESI violation: owner out of range, line " +
                             std::to_string(id));
    }
  } else if (ls.owner_state != Mesi::kInvalid) {
    throw std::logic_error("MESI violation: ownerless E/M state, line " +
                           std::to_string(id));
  }
  for (std::size_t i = 0; i < ls.sharers.size(); ++i) {
    if (ls.sharers[i] >= cores_) {
      throw std::logic_error("MESI violation: sharer out of range, line " +
                             std::to_string(id));
    }
    for (std::size_t j = i + 1; j < ls.sharers.size(); ++j) {
      if (ls.sharers[i] == ls.sharers[j]) {
        throw std::logic_error("MESI violation: duplicate sharer, line " +
                               std::to_string(id));
      }
    }
  }
  for (std::size_t i = 0; i < ls.queue.size(); ++i) {
    for (std::size_t j = i + 1; j < ls.queue.size(); ++j) {
      if (ls.queue[i].core == ls.queue[j].core) {
        throw std::logic_error(
            "protocol violation: duplicate request from one core, line " +
            std::to_string(id));
      }
    }
  }
}

void Machine::invalidate_copy(LineState& ls, LineId id, CoreId core) {
  bool had_copy = false;
  forget_resident(core, id);
  if (ls.owner == core) {
    ls.owner = kNoCore;
    ls.owner_state = Mesi::kInvalid;
    had_copy = true;
  }
  const auto it = std::find(ls.sharers.begin(), ls.sharers.end(), core);
  if (it != ls.sharers.end()) {
    ls.sharers.erase(it);
    had_copy = true;
  }
  if (had_copy) {
    ++run_invalidations_;
    ++run_transitions_;
    if (stats_ != nullptr && in_measure_window(now_)) ++stats_->invalidations;
    if (profile_lines_ && in_measure_window(now_)) {
      ++line_prof_[id].invalidations;
    }
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kInvalidate;
      e.time = now_;
      e.core = core;
      e.line = id;
      sink_->on_event(e);
    }
  }
}

std::pair<Cycles, Supply> Machine::apply_grant(LineState& ls, LineId id,
                                               const PendingRequest& req) {
  const CoreId requester = req.core;
  Cycles xfer = 0;
  Supply supply = Supply::kLocalHit;

  const bool charge = in_measure_window(now_);
  if (ls.owner != kNoCore && ls.owner != requester) {
    xfer = interconnect_->transfer_cycles(ls.owner, requester);
    supply = interconnect_->supply_class(ls.owner, requester);
    if (charge) {
      energy_->add_transfer(interconnect_->hops(ls.owner, requester),
                            supply == Supply::kFar);
    }
    if (req.exclusive) {
      const CoreId old_owner = ls.owner;
      invalidate_copy(ls, id, old_owner);
      for (const CoreId s : std::vector<CoreId>(ls.sharers)) {
        invalidate_copy(ls, id, s);
      }
      ls.owner = requester;
      ls.owner_state = Mesi::kModified;
    } else {
      ls.sharers.push_back(ls.owner);
      ls.owner = kNoCore;
      ls.owner_state = Mesi::kInvalid;
      ls.sharers.push_back(requester);
    }
  } else if (ls.owner == requester) {
    xfer = 0;
    supply = Supply::kLocalHit;
  } else if (!ls.sharers.empty()) {
    xfer = config_.shared_supply;
    supply = Supply::kNear;
    if (charge) energy_->add_transfer(1, false);
    if (req.exclusive) {
      if (config_.fault != FaultInjection::kSkipSharedInvalidate) {
        for (const CoreId s : std::vector<CoreId>(ls.sharers)) {
          if (s != requester) invalidate_copy(ls, id, s);
        }
      }
      const auto self = std::find(ls.sharers.begin(), ls.sharers.end(), requester);
      if (self != ls.sharers.end()) ls.sharers.erase(self);
      ls.owner = requester;
      ls.owner_state = Mesi::kModified;
    } else {
      ls.sharers.push_back(requester);
    }
  } else {
    xfer = config_.memory_fill;
    supply = Supply::kMemory;
    if (charge) energy_->add_memory_fetch();
    if (stats_ != nullptr && in_measure_window(now_)) ++stats_->memory_fetches;
    if (req.exclusive) {
      ls.owner = requester;
      ls.owner_state = Mesi::kModified;
    } else {
      ls.owner = requester;
      ls.owner_state = Mesi::kExclusive;
    }
  }
  return {xfer, supply};
}

void Machine::try_grant(LineId id) {
  LineState& ls = line(id);
  if (ls.busy || ls.queue.empty()) return;

  const std::size_t idx = arbitrate(ls, id);
  const PendingRequest req = ls.queue[idx];
  ls.queue.erase(ls.queue.begin() + static_cast<std::ptrdiff_t>(idx));

  if (in_measure_window(now_)) energy_->add_directory_lookup();
  const auto [xfer, supply] = apply_grant(ls, id, req);
  if (stats_ != nullptr && in_measure_window(now_) &&
      req.core < stats_->threads.size()) {
    ++stats_->transfers[static_cast<std::size_t>(supply)];
  }

  if (config_.paranoid_checks) check_line_invariants(ls, id);
  ++run_grants_;
  if (supply != Supply::kLocalHit) ++run_transitions_;
  ++progress_marks_;
  note_grant(id, req.core, supply, xfer,
             static_cast<std::uint32_t>(ls.queue.size()),
             /*counts_acquisition=*/true);
  touch_resident(req.core, id);
  CoreState& cs = core_states_[req.core];
  cs.last_supply = supply;
  cs.last_xfer = xfer;
  cs.holds_token = true;
  cs.grant_time = now_;
  ls.busy = true;
  schedule(now_ + xfer + config_.l1_hit +
               config_.exec_cost_of(cs.pending.prim),
           EventKind::kOpDone, req.core);
}

OpResult Machine::apply_op(Primitive prim, LineState& ls, OpContext& ctx) {
  OpResult r;
  const std::uint64_t old = ls.value;
  switch (prim) {
    case Primitive::kLoad:
      r.observed = old;
      ctx.expected = old;
      break;
    case Primitive::kStore:
      ls.value = ctx.store_value;
      r.observed = ctx.store_value;
      break;
    case Primitive::kSwap:
      r.observed = old;
      ls.value = ctx.store_value;
      ctx.expected = ctx.store_value;
      break;
    case Primitive::kTas:
      r.observed = old;
      ls.value = 1;
      r.success = (old == 0);
      ctx.expected = 1;
      break;
    case Primitive::kFaa:
      r.observed = old;
      ls.value = old + 1;
      ctx.expected = old + 1;
      break;
    case Primitive::kCas:
    case Primitive::kCasLoop:
      if (old == ctx.expected) {
        ls.value = ctx.cas_desired.value_or(old + 1);
        ctx.expected = ls.value;
        r.observed = old;
        r.success = true;
      } else {
        ctx.expected = old;
        r.observed = old;
        r.success = false;
      }
      break;
  }
  return r;
}

void Machine::record_completion(CoreId core, const OpResult& r, Cycles latency) {
  if (core >= stats_->threads.size()) return;
  ThreadStats& ts = stats_->threads[core];
  const auto prim_idx =
      static_cast<std::size_t>(core_states_[core].pending.prim);
  ++ts.ops;
  ++ts.ops_by_prim[prim_idx];
  if (r.success) {
    ++ts.successes;
    ++ts.successes_by_prim[prim_idx];
  } else {
    ++ts.failures;
  }
  ts.latency_sum += static_cast<double>(latency);
  ts.latency_hist.add(std::max<double>(1.0, static_cast<double>(latency)));
  if (ts.ops == 1) {
    ts.latency_min = ts.latency_max = latency;
  } else {
    ts.latency_min = std::min(ts.latency_min, latency);
    ts.latency_max = std::max(ts.latency_max, latency);
  }
}

void Machine::handle_op_done(const Event& ev) {
  CoreState& cs = core_states_[ev.core];
  LineState& ls = line(cs.pending.line);
  const Primitive prim = cs.pending.prim;

  ++cs.attempts_this_op;
  if (cs.pending.store_value) cs.ctx.store_value = *cs.pending.store_value;
  if (cs.pending.cas_expected && cs.attempts_this_op == 1) {
    cs.ctx.expected = *cs.pending.cas_expected;
  }
  cs.ctx.cas_desired = cs.pending.cas_desired;
  const std::uint64_t value_before = ls.value;
  OpResult result = apply_op(prim, ls, cs.ctx);
  if (cs.drop_write) {
    ls.value = value_before;
    cs.drop_write = false;
  }

  const Cycles exec = config_.l1_hit + config_.exec_cost_of(prim);
  const Cycles latency = now_ - cs.issue_time;
  const Cycles attempt_span = now_ - cs.attempt_start;
  const Cycles waited = attempt_span > exec ? attempt_span - exec : 0;
  const Cycles held = cs.holds_token ? now_ - cs.grant_time : 0;

  const bool in_window = in_measure_window(now_);
  if (in_window && ev.core < stats_->threads.size()) {
    ThreadStats& ts = stats_->threads[ev.core];
    ts.exec_cycles += exec;
    ts.wait_cycles += waited;
    ++ts.attempts;
    energy_->add_active_cycles(exec);
    energy_->add_spin_cycles(waited);
  }
  if (profile_lines_ && in_window && held > 0) {
    line_prof_[cs.pending.line].hold_cycles += held;
  }
  if (EpochSample* ep = epoch_at(now_)) {
    ++ep->attempts;
    ep->wait_cycles += waited;
    ep->exec_cycles += exec;
  }

  if (cs.holds_token) {
    cs.holds_token = false;
    ls.busy = false;
  }

  if (prim == Primitive::kCasLoop && !result.success) {
    if (sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kRetry;
      e.time = now_;
      e.core = ev.core;
      e.line = cs.pending.line;
      e.req_id = next_req_id_ + 1;
      e.prim = static_cast<std::uint8_t>(prim);
      e.supply = static_cast<std::uint8_t>(cs.last_supply);
      e.value = ls.value;
      e.hold_cycles = held;
      sink_->on_event(e);
    }
    cs.req_id = ++next_req_id_;
    try_grant(cs.pending.line);
    submit_request(ev.core);
    return;
  }

  if (sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kOpDone;
    e.time = now_;
    e.core = ev.core;
    e.line = cs.pending.line;
    e.req_id = cs.req_id;
    e.prim = static_cast<std::uint8_t>(prim);
    e.supply = static_cast<std::uint8_t>(cs.last_supply);
    e.success = result.success;
    e.value = ls.value;
    e.latency = latency;
    e.hold_cycles = held;
    sink_->on_event(e);
  }
  if (EpochSample* ep = epoch_at(now_)) ++ep->ops;
  adjust_outstanding(-1);
  ++run_ops_;
  ++progress_marks_;

  if (in_window && ev.core < stats_->threads.size()) {
    record_completion(ev.core, result, latency);
  }
  cs.has_pending = false;
  program_->on_result(ev.core, result);
  try_grant(cs.pending.line);
  schedule(now_, EventKind::kFetchNext, ev.core);
}

Cycles Machine::measure_single_op(CoreId core, Primitive prim, LineId id) {
  IssueRequest req;
  req.prim = prim;
  req.line = id;
  ScriptProgram script(core, {req});
  const RunStats st = run(script, core + 1, 0, std::numeric_limits<Cycles>::max() / 2);
  if (core < st.threads.size() && st.threads[core].ops == 1) {
    return static_cast<Cycles>(st.threads[core].latency_sum);
  }
  return 0;
}

}  // namespace am::sim::legacy
