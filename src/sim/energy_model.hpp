// Event-based energy accounting — the simulator-side substitute for the
// paper's RAPL measurements.
//
// RAPL reports joules per package/DRAM domain. The same totals can be
// reconstructed from the events the simulator already tracks: cycles each
// core spends executing vs. spinning, line transfers by distance, directory
// and memory accesses. The coefficients below are order-of-magnitude figures
// from the uncore/NoC energy literature; what the paper's energy figures
// show is the *structure* (energy per op rising with contention because ops
// drag transfers and other cores spin), and that structure is exactly what
// event-based accounting reproduces.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.hpp"

namespace am::sim {

struct EnergyParams {
  double core_active_watts = 4.0;  ///< power of a core doing useful work
  double core_spin_watts = 1.5;    ///< power of a core in a pause loop
  double uncore_base_watts = 0.0;  ///< static uncore power (amortized)
  double transfer_nj_per_hop = 1.2;///< link+router energy per hop traversed
  double transfer_nj_base = 2.0;   ///< tag lookup + cache read on a transfer
  double cross_link_nj = 6.0;      ///< extra energy for a QPI/UPI crossing
  double directory_nj = 0.6;       ///< home-directory lookup
  double memory_nj = 18.0;         ///< DRAM/MCDRAM line fetch
  double freq_ghz = 2.3;           ///< converts cycles to seconds
  /// Energy of a FENCE retirement (store-buffer flush logic; the drained
  /// stores' transfers are priced separately as ordinary transfers). Only
  /// meaningful under MemoryModel::kTso, and deliberately excluded from the
  /// fingerprint's ";energy=" section — it rides in the TSO-only suffix so
  /// SC fingerprints stay byte-identical.
  double fence_nj = 4.0;
};

/// Accumulated energy over one simulation run, joules.
struct EnergyBreakdown {
  double core_active_j = 0.0;
  double core_spin_j = 0.0;
  double uncore_static_j = 0.0;
  double transfer_j = 0.0;
  double directory_j = 0.0;
  double memory_j = 0.0;
  double fence_j = 0.0;  ///< TSO only; stays 0.0 under SC (identical totals)

  double total_j() const noexcept {
    return core_active_j + core_spin_j + uncore_static_j + transfer_j +
           directory_j + memory_j + fence_j;
  }
  /// "Package" analogue: everything but memory, matching RAPL's split.
  double package_j() const noexcept { return total_j() - memory_j; }
  double dram_j() const noexcept { return memory_j; }
};

/// Streaming accumulator fed by the simulator.
class EnergyAccounting {
 public:
  explicit EnergyAccounting(const EnergyParams& p) : p_(p) {}

  void add_active_cycles(Cycles c) noexcept {
    e_.core_active_j += cycles_to_seconds(c) * p_.core_active_watts;
  }
  void add_spin_cycles(Cycles c) noexcept {
    e_.core_spin_j += cycles_to_seconds(c) * p_.core_spin_watts;
  }
  /// Static uncore power over the whole run duration.
  void add_static(Cycles run_duration) noexcept {
    e_.uncore_static_j += cycles_to_seconds(run_duration) * p_.uncore_base_watts;
  }
  void add_transfer(std::uint32_t hops, bool crosses_socket) noexcept {
    e_.transfer_j += (p_.transfer_nj_base + p_.transfer_nj_per_hop * hops +
                      (crosses_socket ? p_.cross_link_nj : 0.0)) * 1e-9;
  }
  void add_directory_lookup() noexcept { e_.directory_j += p_.directory_nj * 1e-9; }
  void add_memory_fetch() noexcept { e_.memory_j += p_.memory_nj * 1e-9; }
  void add_fence() noexcept { e_.fence_j += p_.fence_nj * 1e-9; }

  const EnergyBreakdown& breakdown() const noexcept { return e_; }
  const EnergyParams& params() const noexcept { return p_; }

 private:
  double cycles_to_seconds(Cycles c) const noexcept {
    return static_cast<double>(c) / (p_.freq_ghz * 1e9);
  }

  EnergyParams p_;
  EnergyBreakdown e_;
};

}  // namespace am::sim
