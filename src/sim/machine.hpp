// The discrete-event cache-coherence machine (fast-path core).
//
// Simulates N cores executing atomic-operation streams over MESI-coherent
// cache lines with a home directory per line. Event granularity is one
// coherence transaction: a core issues an operation, the directory
// serializes ownership of the target line, the line travels to the
// requester (latency from the interconnect), the primitive executes
// functionally (value semantics identical to the std::atomic backend, so
// CAS success/failure *emerges* rather than being assumed), and the line is
// released to the next arbitrated waiter.
//
// This is the machinery the paper's model abstracts: the model predicts the
// steady-state of exactly this hand-off process; the simulator provides the
// ground truth the model is validated against (and the stand-in for the
// 36/64-core testbeds this environment lacks).
//
// Internals (docs/sim_core.md has the full layout): line state lives in
// slot-indexed struct-of-arrays storage behind an insert-only flat hash
// (lines are never deleted, only reset), the scheduler is a calendar queue
// (sim/event_queue.hpp), interconnect routing is flattened into dense n*n
// tables at construction (sim/route_table.hpp), residency tracking is an
// intrusive array-node LRU, and op streams are decoded once per op (or once
// per run, for programs exposing a StaticPlan) into a POD the event loop
// replays without touching std::optional or virtual dispatch. All of it is
// behaviour-preserving to the byte: tests/sim/core_equivalence_test.cpp
// replays a corpus through this core and the frozen seed implementation
// (sim/legacy_machine.hpp) and asserts identical stats, traces and final
// state.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/random.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/flat_table.hpp"
#include "sim/program.hpp"
#include "sim/route_table.hpp"
#include "sim/sim_stats.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Structured watchdog failure: a run exceeded its simulated-cycle budget or
/// processed many events without any line grant / op retirement (livelock —
/// e.g. a mis-calibrated config whose CAS loop can never succeed). The sweep
/// engine catches this and marks the point `timeout` instead of hanging a
/// pool thread forever. The machine that threw is left mid-transaction and
/// must be discarded, not reused.
struct PointTimeout : std::runtime_error {
  enum class Kind : std::uint8_t {
    kCycleBudget,  ///< simulated time passed WatchdogConfig::max_cycles
    kNoProgress,   ///< progress_events events without a grant or retirement
  };
  PointTimeout(Kind k, Cycles at, std::uint64_t events);

  Kind kind;
  Cycles at_cycle;               ///< simulated time when the watchdog fired
  std::uint64_t events_processed;  ///< events handled by the run so far
};

const char* to_string(PointTimeout::Kind k) noexcept;

/// Controlled-schedule seam: when attached, the hook is consulted before the
/// built-in arbitration policy on every directory grant and notified after
/// every op retirement. The conformance fuzzer's PCT scheduler drives
/// adversarial interleavings through this. Like the trace sink and the
/// watchdog, a hook is deliberately OUTSIDE cache_identity/fingerprint —
/// attaching one changes which interleaving is explored, so hooked runs must
/// never be cached as if they were policy runs.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;
  /// Picks the next grant on @p line among @p waiters (arrival order, oldest
  /// first). Return an index into @p waiters, or any value >= waiters.size()
  /// to defer to the machine's configured arbitration policy.
  virtual std::size_t pick(LineId line, const std::vector<CoreId>& waiters) = 0;
  /// Called once per retired operation (a PCT scheduling step).
  virtual void on_step(CoreId core) { (void)core; }
};

/// Budgets enforced by the run() event loop. Zero disables a check; the
/// defaults keep raw Machine users (oracle, calibration probes with huge
/// open-ended windows) unlimited — SimBackend arms generous budgets for
/// sweep points.
struct WatchdogConfig {
  Cycles max_cycles = 0;            ///< simulated-cycle ceiling (0 = none)
  std::uint64_t progress_events = 0;  ///< livelock window in events (0 = none)
};

class Machine {
 public:
  explicit Machine(MachineConfig config, std::uint64_t seed = 1);

  const MachineConfig& config() const noexcept { return config_; }
  const Interconnect& interconnect() const noexcept { return *interconnect_; }
  CoreId core_count() const noexcept { return cores_; }

  /// Forces a line into a given coherence state before a run — used by the
  /// state-conditioned latency probes (Table 2). @p owner is the core
  /// receiving the copy for S/E/M; ignored for kInvalid (memory-only).
  void prime_line(LineId line, Mesi state, CoreId owner, std::uint64_t value = 0);

  /// Current value of a line (authoritative directory copy).
  std::uint64_t line_value(LineId line) const;
  /// Coherence state of @p line in @p core's cache.
  Mesi line_state(LineId line, CoreId core) const;

  /// Every line the directory has a record for, ascending — the domain of
  /// the invariant checkers and test snapshots.
  std::vector<LineId> touched_lines() const;

  /// Directory-side snapshot of one line, for external invariant checking.
  struct LineSnapshot {
    CoreId owner = kNoCore;          ///< E/M holder (kNoCore if none)
    Mesi owner_state = Mesi::kInvalid;
    std::vector<CoreId> sharers;     ///< S holders (excludes owner)
    std::uint64_t value = 0;
    bool busy = false;               ///< a transaction is in flight
    std::size_t queued = 0;          ///< waiters at the home directory
  };
  LineSnapshot snapshot_line(LineId line) const;

  /// Runs the MESI single-writer / sharer-consistency checker over every
  /// touched line (the same checks paranoid_checks applies per transaction),
  /// in ascending line order so a multi-line corruption reports
  /// deterministically. Throws std::logic_error naming the first violated
  /// line. Tests attach a TraceSink that calls this to verify the protocol
  /// after every step.
  void verify_invariants() const;

  /// Runs @p program on cores [0, active_cores) for @p warmup + @p measure
  /// cycles; statistics cover operations completing inside the measurement
  /// window only. The machine's caches/directory persist across calls, so a
  /// prime_line() before a run is honoured.
  RunStats run(ThreadProgram& program, CoreId active_cores, Cycles warmup,
               Cycles measure);

  /// Latency (cycles) of a single @p prim by @p core on @p line given the
  /// current primed machine state. Leaves the machine in the post-op state.
  Cycles measure_single_op(CoreId core, Primitive prim, LineId line);

  /// Attaches a structured trace sink (nullptr detaches). The machine emits
  /// one obs::TraceEvent per protocol step (issue, grant, op-done, retry,
  /// invalidate, evict); with no sink attached the hot path pays a single
  /// pointer test per step and nothing else.
  void set_sink(obs::TraceSink* sink) noexcept {
    sink_ = sink;
    owned_sink_.reset();
  }

  /// Back-compat text tracing: wraps @p os in an obs::TextTraceSink owned by
  /// the machine (nullptr disables). Grant/done lines keep the historical
  /// format:
  ///   <time> grant line=<id> -> core<c> <supply> xfer=<cy> q=<depth>
  ///   <time> done  core<c> <prim> line=<id> ok=<0|1> val=<v>
  void set_trace(std::ostream* os);

  /// Enables per-line contention profiling; results appear in
  /// RunStats::line_profiles of subsequent run() calls (hottest first).
  void set_line_profiling(bool on) { profile_lines_ = on; }

  /// Enables the epoch sampler: RunStats::epochs gets one EpochSample per
  /// @p window cycles of the measurement window (0 disables).
  void set_epoch_cycles(Cycles window) { epoch_cycles_ = window; }

  /// Arms the run watchdog; run() throws PointTimeout when a budget is
  /// exceeded. A machine whose run threw is mid-transaction and must be
  /// rebuilt before the next run.
  void set_watchdog(WatchdogConfig wd) noexcept { watchdog_ = wd; }
  const WatchdogConfig& watchdog() const noexcept { return watchdog_; }

  /// Attaches a controlled-schedule hook (nullptr detaches). See
  /// ScheduleHook: consulted before arbitration, notified per retirement,
  /// deliberately outside cache_identity.
  void set_schedule_hook(ScheduleHook* hook) noexcept { hook_ = hook; }

  /// Buffered (not yet globally visible) stores of @p core. Always 0 under
  /// MemoryModel::kSc; tests use this to observe TSO buffer occupancy.
  std::size_t store_buffer_depth(CoreId core) const noexcept {
    return core_states_[core].sbuf.size();
  }

 private:
  // --- event machinery -----------------------------------------------------
  enum class EventKind : std::uint8_t { kFetchNext, kIssue, kOpDone,
                                        kDrainDone };

  static constexpr std::uint32_t kNilSlot = ~0u;

  /// Calendar-queue payload: kind in the top 2 bits, core below.
  static std::uint32_t pack(EventKind kind, CoreId core) noexcept {
    return (static_cast<std::uint32_t>(kind) << 30) | core;
  }
  static EventKind kind_of(std::uint32_t payload) noexcept {
    return static_cast<EventKind>(payload >> 30);
  }
  static CoreId core_of(std::uint32_t payload) noexcept {
    return payload & ((1u << 30) - 1);
  }

  struct PendingRequest {
    CoreId core;
    bool exclusive;
    Cycles arrival;
    /// Proximity-arbitration weight exp(-distance(home, core)/bias), frozen
    /// at enqueue (home and bias are fixed per line, so it never changes
    /// while the request waits). 0 under other arbitration policies.
    double weight;
  };

  /// Arrival-ordered pending-request queue. Semantically identical to the
  /// seed core's std::vector (index i is the i-th oldest request), but
  /// erasure shifts whichever side of the erased index is *shorter*: the
  /// prefix slides right under a head cursor (O(1) for the FIFO winner,
  /// index 0) instead of always memmoving the whole suffix left. Relative
  /// order — the only thing arbitration and the invariant checks observe —
  /// is unaffected, so byte-identity is preserved.
  struct ReqQueue {
    std::vector<PendingRequest> items;  ///< live entries at [head, end)
    std::uint32_t head = 0;

    std::size_t size() const noexcept { return items.size() - head; }
    bool empty() const noexcept { return items.size() == head; }
    const PendingRequest& operator[](std::size_t i) const noexcept {
      return items[head + i];
    }
    const PendingRequest& front() const noexcept { return items[head]; }
    void push_back(const PendingRequest& r) { items.push_back(r); }
    void clear() noexcept {
      items.clear();
      head = 0;
    }
    void erase_at(std::size_t idx) {
      const std::size_t n = size();
      if (idx < n - idx) {
        std::move_backward(items.begin() + head,
                           items.begin() + head + static_cast<std::ptrdiff_t>(idx),
                           items.begin() + head + static_cast<std::ptrdiff_t>(idx) + 1);
        ++head;
        // Reclaim the dead prefix once it dominates the storage.
        if (head >= 64 && head * 2 >= items.size()) {
          items.erase(items.begin(), items.begin() + head);
          head = 0;
        }
      } else {
        items.erase(items.begin() + head + static_cast<std::ptrdiff_t>(idx));
      }
    }
  };

  /// One op, decoded from IssueRequest once at fetch time (or once per run
  /// for StaticPlan programs): optionals are resolved to flag bits + values,
  /// the line's SoA slot is resolved, and the fixed serve cost
  /// (l1_hit + exec_cost) is precomputed. The event loop replays this POD.
  struct DecodedOp {
    Primitive prim = Primitive::kFaa;
    std::uint8_t flags = 0;
    LineId line = 0;
    std::uint32_t slot = kNilSlot;
    Cycles work_before = 0;
    Cycles serve_cost = 0;      ///< l1_hit + exec_cost(prim)
    std::uint64_t store_value = 0;
    std::uint64_t cas_expected = 0;
    std::uint64_t cas_desired = 0;
  };
  static constexpr std::uint8_t kHasStore = 1;
  static constexpr std::uint8_t kHasExpected = 2;
  static constexpr std::uint8_t kHasDesired = 4;

  /// A store sitting in a core's TSO store buffer: globally invisible until
  /// its drain transaction commits it at the directory.
  struct BufferedStore {
    LineId line = 0;
    std::uint32_t slot = kNilSlot;
    std::uint64_t value = 0;
  };

  /// Ops that complete on the core without a directory transaction (TSO
  /// buffered stores / forwarded loads; FENCE under both models).
  enum class LocalOp : std::uint8_t {
    kNone,
    kBufferedStore,   ///< store retired into the local store buffer
    kForwardedLoad,   ///< load served from this core's own buffered store
    kFence,           ///< fence retirement (buffer already empty)
  };

  /// What the core resumes once its store-buffer drain completes.
  enum class DrainResume : std::uint8_t {
    kNone,
    kResubmit,  ///< re-submit the parked foreground op (fence/RMW/full buffer)
    kFinish,    ///< end-of-stream drain: mark the core done
  };

  struct CoreState {
    OpContext ctx;
    /// Current op (valid while has_pending). For a StaticPlan core the plan
    /// is decoded into this once per run and replayed in place — fetch never
    /// rewrites it (nothing on the execute path mutates DecodedOp fields).
    DecodedOp op;
    bool done = false;
    bool has_pending = false;
    bool has_plan = false;
    bool holds_token = false;  ///< this core's transaction owns the line slot
    bool drop_write = false;   ///< fault injection: lose this op's write-back
    Cycles issue_time = 0;
    Cycles attempt_start = 0;  ///< submit time of the current acquisition
    Cycles grant_time = 0;     ///< when the current acquisition was served
    std::uint64_t req_id = 0;  ///< trace flow id of the current acquisition
    std::uint32_t attempts_this_op = 0;
    Supply last_supply = Supply::kLocalHit;
    Cycles last_xfer = 0;
    // --- TSO state (empty/idle under kSc) ----------------------------------
    std::vector<BufferedStore> sbuf;  ///< FIFO store buffer, oldest first
    LocalOp local_op = LocalOp::kNone;  ///< pending local completion kind
    bool draining = false;     ///< a drain transaction sequence is in flight
    DrainResume drain_resume = DrainResume::kNone;
    std::uint64_t forward_value = 0;  ///< value a forwarded load observes
  };

  void schedule(Cycles time, EventKind kind, CoreId core) {
    events_.push(time, next_seq_++, pack(kind, core));
  }
  void handle_fetch_next(CoreId core);
  void handle_issue(CoreId core);
  void handle_op_done(CoreId core);
  /// Retires an op that completed locally (TSO buffered store / forwarded
  /// load; FENCE under both models). Split out of handle_op_done so the SC
  /// hot path pays one enum test only.
  void handle_local_op_done(CoreId core);
  /// Commits the head buffered store at the directory and continues the
  /// drain (kDrainDone events).
  void handle_drain_done(CoreId core);
  /// Begins draining @p core's store buffer; @p resume runs when empty.
  void start_drain(CoreId core, DrainResume resume);
  /// Issues the drain transaction for the buffer head (or finishes the
  /// drain and runs the resume action when the buffer is empty).
  void drain_next(CoreId core);
  /// Queues the core's pending request at the line's directory (or serves it
  /// locally when the cached state suffices). Shared by issue and CAS retry.
  void submit_request(CoreId core);

  /// Decodes @p req into @p op (slot left unresolved).
  void decode(const IssueRequest& req, DecodedOp& op) const;

  /// Grants the line to the next arbitrated waiter if it is free.
  void try_grant(std::uint32_t slot);
  /// Chooses the next request index per the arbitration policy. @p id is
  /// the line (its home agent anchors the proximity bias).
  std::size_t arbitrate(std::uint32_t slot, LineId id);
  /// Applies ownership/sharer updates for a grant and returns the transfer
  /// latency + supply class.
  std::pair<Cycles, Supply> apply_grant(std::uint32_t slot, LineId id,
                                        const PendingRequest& req);

  /// Executes the primitive's value semantics against the line's value.
  OpResult apply_op(Primitive prim, std::uint32_t slot, OpContext& ctx);

  /// Removes core's copy (if any) from a line record. Counts invalidations.
  void invalidate_copy(std::uint32_t slot, LineId id, CoreId core);

  /// MESI single-writer / sharer-consistency checker (paranoid_checks).
  /// Aborts the run via std::logic_error on violation.
  void check_line_invariants(std::uint32_t slot, LineId id) const;

  /// LRU residency tracking per core (capacity = config.cache_capacity_lines).
  /// touch() marks a line most-recently-used and evicts the LRU line when
  /// over capacity; forget() drops bookkeeping when a copy is invalidated.
  void touch_resident(CoreId core, std::uint32_t slot);
  void forget_resident(CoreId core, std::uint32_t slot);
  void evict_one(CoreId core);

  /// SoA slot for @p id, creating the record on first touch (mirrors the
  /// old lines_[id] insertion points; slots are never deleted).
  std::uint32_t slot_of(LineId id);
  /// Slot for @p id or kNilSlot; never creates.
  std::uint32_t find_slot(LineId id) const noexcept {
    return line_index_.find(id, kNilSlot);
  }
  Mesi state_of(std::uint32_t slot, CoreId core) const;

  void record_completion(CoreId core, const OpResult& r, Cycles latency);
  bool in_measure_window(Cycles t) const noexcept {
    return t >= warmup_end_ && t < end_time_;
  }

  // --- observability -------------------------------------------------------
  /// Forwards @p e to the attached sink, if any.
  void emit(const obs::TraceEvent& e) {
    if (sink_ != nullptr) sink_->on_event(e);
  }
  // The three hooks below sit on the per-event hot path, so each inlines its
  // disabled-case test and defers the real work to an out-of-line _slow body:
  // with no sink/profiler/sampler attached a run pays only the flag tests.

  /// Records a line-slot grant in the per-line profile and trace.
  void note_grant(LineId id, CoreId core, Supply supply, Cycles xfer,
                  std::uint32_t queue_depth, bool counts_acquisition) {
    if (sink_ != nullptr || profile_lines_) {
      note_grant_slow(id, core, supply, xfer, queue_depth, counts_acquisition);
    }
  }
  void note_grant_slow(LineId id, CoreId core, Supply supply, Cycles xfer,
                       std::uint32_t queue_depth, bool counts_acquisition);
  /// Epoch bucket covering time @p t, or nullptr when sampling is off or
  /// @p t lies outside the measurement window.
  EpochSample* epoch_at(Cycles t) {
    return epoch_cycles_ == 0 ? nullptr : epoch_at_slow(t);
  }
  EpochSample* epoch_at_slow(Cycles t);
  /// Tracks the in-flight request count for the epoch sampler.
  void adjust_outstanding(int delta) {
    outstanding_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(outstanding_) + delta);
    if (epoch_cycles_ != 0) adjust_outstanding_slow();
  }
  void adjust_outstanding_slow();

  MachineConfig config_;
  std::unique_ptr<Interconnect> interconnect_;
  CoreId cores_;

  CalendarQueue events_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;

  // --- line store: slot-indexed struct-of-arrays ---------------------------
  // Parallel arrays indexed by slot; line_index_ maps LineId -> slot. Slots
  // are created on first touch and never removed (prime_line resets contents
  // in place), so the flat hash needs no tombstones and the hot scalar
  // fields (owner/state/value/busy) stay dense. The per-slot sharers/queue
  // vectors keep their capacity across transactions — after warm-up the
  // event loop allocates nothing.
  FlatMap64 line_index_;
  std::vector<LineId> line_ids_;                 ///< slot -> LineId
  std::vector<CoreId> line_owner_;               ///< E/M holder
  std::vector<Mesi> line_owner_state_;
  std::vector<std::uint64_t> line_value_;
  std::vector<std::uint8_t> line_busy_;          ///< transaction in flight
  std::vector<std::vector<CoreId>> line_sharers_;  ///< S holders (no owner)
  std::vector<ReqQueue> line_queue_;
  /// Prefix sums of line_queue_ weights: line_prefix_[s][i] is the seed
  /// core's running total after adding queue entry i's weight. The first
  /// line_prefix_valid_[s] entries are current; a grant that erases queue
  /// index k lowers the watermark to k, so arbitrate() resumes the exact
  /// sequential FP add chain from the last unchanged prefix instead of
  /// re-summing the whole queue (kProximityBiased only).
  std::vector<std::vector<double>> line_prefix_;
  std::vector<std::uint32_t> line_prefix_valid_;

  // --- per-core LRU residency: intrusive array-node lists ------------------
  struct ResNode {
    std::uint32_t prev = kNilSlot;
    std::uint32_t next = kNilSlot;
    std::uint32_t slot = kNilSlot;  ///< line slot this node tracks
  };
  struct Residency {
    std::vector<ResNode> nodes;      ///< node pool (grows, never shrinks)
    std::vector<std::uint32_t> free; ///< recycled node indices
    std::uint32_t head = kNilSlot;   ///< most recently used
    std::uint32_t tail = kNilSlot;   ///< least recently used
    std::uint32_t count = 0;
    FlatSlotMap index;               ///< line slot -> node index
  };
  std::vector<Residency> residency_;

  std::vector<CoreState> core_states_;
  std::vector<Xoshiro256> rngs_;
  Xoshiro256 arb_rng_{0x9d2c5680};  ///< arbitration races (kProximityBiased)

  // --- precomputed routing/cost tables (see route_table.hpp) ---------------
  /// Shared across Machines built from the same preset (interconnect
  /// identity); immutable once built.
  std::shared_ptr<const RouteTable> routes_;
  /// exp(-d / arbitration_bias) per distance d (kProximityBiased only).
  std::vector<double> weight_by_dist_;
  /// l1_hit + exec_cost per primitive; index 7 is FENCE (fence_cost alone —
  /// a fence touches no cache). Internal only: serialized per-primitive
  /// arrays stay 7 wide (see Primitive::kFence).
  std::array<Cycles, 8> serve_cost_{};

  /// True iff config_.memory_model == MemoryModel::kTso; the single flag the
  /// SC hot paths test.
  bool tso_ = false;

  // Reusable scratch (replaces the per-grant sharer-snapshot copy the seed
  // core heap-allocated).
  std::vector<CoreId> scratch_sharers_;
  std::vector<CoreId> scratch_waiters_;  ///< ScheduleHook::pick argument

  obs::TraceSink* sink_ = nullptr;
  std::unique_ptr<obs::TraceSink> owned_sink_;  ///< set_trace() compat shim
  ScheduleHook* hook_ = nullptr;
  std::uint64_t next_req_id_ = 0;

  bool profile_lines_ = false;
  std::unordered_map<LineId, LineProfile> line_prof_;

  Cycles epoch_cycles_ = 0;
  std::vector<EpochSample> epochs_;
  std::uint32_t outstanding_ = 0;

  WatchdogConfig watchdog_{};
  /// Bumped on every line grant and op retirement; the run loop compares it
  /// across events to detect livelock (events flowing, nothing advancing).
  std::uint64_t progress_marks_ = 0;

  // Per-run telemetry tallies, published to obs::metrics::default_registry()
  // once per run() (success and watchdog paths both flush). The event loop
  // only bumps plain members — the shared counters are touched exactly once
  // per run, so simulation throughput is unaffected by telemetry.
  void flush_metrics(std::uint64_t cycles);
  std::uint64_t run_ops_ = 0;           ///< operations retired
  std::uint64_t run_grants_ = 0;        ///< directory line grants
  std::uint64_t run_transitions_ = 0;   ///< MESI state transitions applied
  std::uint64_t run_invalidations_ = 0; ///< copies invalidated

  // Per-run context.
  ThreadProgram* program_ = nullptr;
  CoreId active_cores_ = 0;
  Cycles warmup_end_ = 0;
  Cycles end_time_ = 0;
  RunStats* stats_ = nullptr;
  EnergyAccounting* energy_ = nullptr;
};

}  // namespace am::sim
