// The discrete-event cache-coherence machine.
//
// Simulates N cores executing atomic-operation streams over MESI-coherent
// cache lines with a home directory per line. Event granularity is one
// coherence transaction: a core issues an operation, the directory
// serializes ownership of the target line, the line travels to the
// requester (latency from the interconnect), the primitive executes
// functionally (value semantics identical to the std::atomic backend, so
// CAS success/failure *emerges* rather than being assumed), and the line is
// released to the next arbitrated waiter.
//
// This is the machinery the paper's model abstracts: the model predicts the
// steady-state of exactly this hand-off process; the simulator provides the
// ground truth the model is validated against (and the stand-in for the
// 36/64-core testbeds this environment lacks).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/random.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/program.hpp"
#include "sim/sim_stats.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Structured watchdog failure: a run exceeded its simulated-cycle budget or
/// processed many events without any line grant / op retirement (livelock —
/// e.g. a mis-calibrated config whose CAS loop can never succeed). The sweep
/// engine catches this and marks the point `timeout` instead of hanging a
/// pool thread forever. The machine that threw is left mid-transaction and
/// must be discarded, not reused.
struct PointTimeout : std::runtime_error {
  enum class Kind : std::uint8_t {
    kCycleBudget,  ///< simulated time passed WatchdogConfig::max_cycles
    kNoProgress,   ///< progress_events events without a grant or retirement
  };
  PointTimeout(Kind k, Cycles at, std::uint64_t events);

  Kind kind;
  Cycles at_cycle;               ///< simulated time when the watchdog fired
  std::uint64_t events_processed;  ///< events handled by the run so far
};

const char* to_string(PointTimeout::Kind k) noexcept;

/// Budgets enforced by the run() event loop. Zero disables a check; the
/// defaults keep raw Machine users (oracle, calibration probes with huge
/// open-ended windows) unlimited — SimBackend arms generous budgets for
/// sweep points.
struct WatchdogConfig {
  Cycles max_cycles = 0;            ///< simulated-cycle ceiling (0 = none)
  std::uint64_t progress_events = 0;  ///< livelock window in events (0 = none)
};

class Machine {
 public:
  explicit Machine(MachineConfig config, std::uint64_t seed = 1);

  const MachineConfig& config() const noexcept { return config_; }
  const Interconnect& interconnect() const noexcept { return *interconnect_; }
  CoreId core_count() const noexcept { return cores_; }

  /// Forces a line into a given coherence state before a run — used by the
  /// state-conditioned latency probes (Table 2). @p owner is the core
  /// receiving the copy for S/E/M; ignored for kInvalid (memory-only).
  void prime_line(LineId line, Mesi state, CoreId owner, std::uint64_t value = 0);

  /// Current value of a line (authoritative directory copy).
  std::uint64_t line_value(LineId line) const;
  /// Coherence state of @p line in @p core's cache.
  Mesi line_state(LineId line, CoreId core) const;

  /// Every line the directory has a record for, ascending — the domain of
  /// the invariant checkers and test snapshots.
  std::vector<LineId> touched_lines() const;

  /// Directory-side snapshot of one line, for external invariant checking.
  struct LineSnapshot {
    CoreId owner = kNoCore;          ///< E/M holder (kNoCore if none)
    Mesi owner_state = Mesi::kInvalid;
    std::vector<CoreId> sharers;     ///< S holders (excludes owner)
    std::uint64_t value = 0;
    bool busy = false;               ///< a transaction is in flight
    std::size_t queued = 0;          ///< waiters at the home directory
  };
  LineSnapshot snapshot_line(LineId line) const;

  /// Runs the MESI single-writer / sharer-consistency checker over every
  /// touched line (the same checks paranoid_checks applies per transaction).
  /// Throws std::logic_error naming the first violated line. Tests attach a
  /// TraceSink that calls this to verify the protocol after every step.
  void verify_invariants() const;

  /// Runs @p program on cores [0, active_cores) for @p warmup + @p measure
  /// cycles; statistics cover operations completing inside the measurement
  /// window only. The machine's caches/directory persist across calls, so a
  /// prime_line() before a run is honoured.
  RunStats run(ThreadProgram& program, CoreId active_cores, Cycles warmup,
               Cycles measure);

  /// Latency (cycles) of a single @p prim by @p core on @p line given the
  /// current primed machine state. Leaves the machine in the post-op state.
  Cycles measure_single_op(CoreId core, Primitive prim, LineId line);

  /// Attaches a structured trace sink (nullptr detaches). The machine emits
  /// one obs::TraceEvent per protocol step (issue, grant, op-done, retry,
  /// invalidate, evict); with no sink attached the hot path pays a single
  /// pointer test per step and nothing else.
  void set_sink(obs::TraceSink* sink) noexcept {
    sink_ = sink;
    owned_sink_.reset();
  }

  /// Back-compat text tracing: wraps @p os in an obs::TextTraceSink owned by
  /// the machine (nullptr disables). Grant/done lines keep the historical
  /// format:
  ///   <time> grant line=<id> -> core<c> <supply> xfer=<cy> q=<depth>
  ///   <time> done  core<c> <prim> line=<id> ok=<0|1> val=<v>
  void set_trace(std::ostream* os);

  /// Enables per-line contention profiling; results appear in
  /// RunStats::line_profiles of subsequent run() calls (hottest first).
  void set_line_profiling(bool on) { profile_lines_ = on; }

  /// Enables the epoch sampler: RunStats::epochs gets one EpochSample per
  /// @p window cycles of the measurement window (0 disables).
  void set_epoch_cycles(Cycles window) { epoch_cycles_ = window; }

  /// Arms the run watchdog; run() throws PointTimeout when a budget is
  /// exceeded. A machine whose run threw is mid-transaction and must be
  /// rebuilt before the next run.
  void set_watchdog(WatchdogConfig wd) noexcept { watchdog_ = wd; }
  const WatchdogConfig& watchdog() const noexcept { return watchdog_; }

 private:
  // --- event machinery -----------------------------------------------------
  enum class EventKind : std::uint8_t { kFetchNext, kIssue, kOpDone };

  struct Event {
    Cycles time;
    std::uint64_t seq;  ///< tie-break: deterministic FIFO at equal times
    EventKind kind;
    CoreId core;
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  struct PendingRequest {
    CoreId core;
    bool exclusive;
    Cycles arrival;
  };

  struct LineState {
    CoreId owner = kNoCore;       ///< E/M holder
    Mesi owner_state = Mesi::kInvalid;
    std::vector<CoreId> sharers;  ///< S holders (excludes owner)
    std::uint64_t value = 0;
    bool busy = false;            ///< a transaction is in flight
    std::vector<PendingRequest> queue;

    bool cached_anywhere() const noexcept {
      return owner != kNoCore || !sharers.empty();
    }
  };

  struct CoreState {
    OpContext ctx;
    bool done = false;
    bool has_pending = false;
    IssueRequest pending;
    Cycles issue_time = 0;
    Cycles attempt_start = 0;  ///< submit time of the current acquisition
    Cycles grant_time = 0;     ///< when the current acquisition was served
    std::uint64_t req_id = 0;  ///< trace flow id of the current acquisition
    std::uint32_t attempts_this_op = 0;
    bool holds_token = false;  ///< this core's transaction owns the line slot
    bool drop_write = false;   ///< fault injection: lose this op's write-back
    Supply last_supply = Supply::kLocalHit;
    Cycles last_xfer = 0;
  };

  void schedule(Cycles time, EventKind kind, CoreId core);
  void handle_fetch_next(const Event& ev);
  void handle_issue(const Event& ev);
  void handle_op_done(const Event& ev);
  /// Queues the core's pending request at the line's directory (or serves it
  /// locally when the cached state suffices). Shared by issue and CAS retry.
  void submit_request(CoreId core);

  /// Grants the line to the next arbitrated waiter if it is free.
  void try_grant(LineId line);
  /// Chooses the next request index per the arbitration policy. @p id is
  /// the line (its home agent anchors the proximity bias).
  std::size_t arbitrate(const LineState& ls, LineId id);
  /// Applies ownership/sharer updates for a grant and returns the transfer
  /// latency + supply class.
  std::pair<Cycles, Supply> apply_grant(LineState& ls, LineId id,
                                        const PendingRequest& req);

  /// Executes the primitive's value semantics against the line.
  OpResult apply_op(Primitive prim, LineState& ls, OpContext& ctx);

  /// Removes core's copy (if any) from a line record. Counts invalidations.
  void invalidate_copy(LineState& ls, LineId id, CoreId core);

  /// MESI single-writer / sharer-consistency checker (paranoid_checks).
  /// Aborts the run via std::logic_error on violation.
  void check_line_invariants(const LineState& ls, LineId id) const;

  /// LRU residency tracking per core (capacity = config.cache_capacity_lines).
  /// touch() marks a line most-recently-used and evicts the LRU line when
  /// over capacity; forget() drops bookkeeping when a copy is invalidated.
  void touch_resident(CoreId core, LineId id);
  void forget_resident(CoreId core, LineId id);
  void evict_one(CoreId core);

  LineState& line(LineId id) { return lines_[id]; }
  Mesi state_of(const LineState& ls, CoreId core) const;

  void record_completion(CoreId core, const OpResult& r, Cycles latency);
  bool in_measure_window(Cycles t) const noexcept {
    return t >= warmup_end_ && t < end_time_;
  }

  // --- observability -------------------------------------------------------
  /// Forwards @p e to the attached sink, if any.
  void emit(const obs::TraceEvent& e) {
    if (sink_ != nullptr) sink_->on_event(e);
  }
  // The three hooks below sit on the per-event hot path, so each inlines its
  // disabled-case test and defers the real work to an out-of-line _slow body:
  // with no sink/profiler/sampler attached a run pays only the flag tests.

  /// Records a line-slot grant in the per-line profile and trace.
  void note_grant(LineId id, CoreId core, Supply supply, Cycles xfer,
                  std::uint32_t queue_depth, bool counts_acquisition) {
    if (sink_ != nullptr || profile_lines_) {
      note_grant_slow(id, core, supply, xfer, queue_depth, counts_acquisition);
    }
  }
  void note_grant_slow(LineId id, CoreId core, Supply supply, Cycles xfer,
                       std::uint32_t queue_depth, bool counts_acquisition);
  /// Epoch bucket covering time @p t, or nullptr when sampling is off or
  /// @p t lies outside the measurement window.
  EpochSample* epoch_at(Cycles t) {
    return epoch_cycles_ == 0 ? nullptr : epoch_at_slow(t);
  }
  EpochSample* epoch_at_slow(Cycles t);
  /// Tracks the in-flight request count for the epoch sampler.
  void adjust_outstanding(int delta) {
    outstanding_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(outstanding_) + delta);
    if (epoch_cycles_ != 0) adjust_outstanding_slow();
  }
  void adjust_outstanding_slow();

  MachineConfig config_;
  std::unique_ptr<Interconnect> interconnect_;
  CoreId cores_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;

  std::unordered_map<LineId, LineState> lines_;

  struct Residency {
    std::list<LineId> lru;  ///< front = most recently used
    std::unordered_map<LineId, std::list<LineId>::iterator> index;
  };
  std::vector<Residency> residency_;

  std::vector<CoreState> core_states_;
  std::vector<Xoshiro256> rngs_;
  Xoshiro256 arb_rng_{0x9d2c5680};  ///< arbitration races (kProximityBiased)

  obs::TraceSink* sink_ = nullptr;
  std::unique_ptr<obs::TraceSink> owned_sink_;  ///< set_trace() compat shim
  std::uint64_t next_req_id_ = 0;

  bool profile_lines_ = false;
  std::unordered_map<LineId, LineProfile> line_prof_;

  Cycles epoch_cycles_ = 0;
  std::vector<EpochSample> epochs_;
  std::uint32_t outstanding_ = 0;

  WatchdogConfig watchdog_{};
  /// Bumped on every line grant and op retirement; the run loop compares it
  /// across events to detect livelock (events flowing, nothing advancing).
  std::uint64_t progress_marks_ = 0;

  // Per-run telemetry tallies, published to obs::metrics::default_registry()
  // once per run() (success and watchdog paths both flush). The event loop
  // only bumps plain members — the shared counters are touched exactly once
  // per run, so simulation throughput is unaffected by telemetry.
  void flush_metrics(std::uint64_t cycles);
  std::uint64_t run_ops_ = 0;           ///< operations retired
  std::uint64_t run_grants_ = 0;        ///< directory line grants
  std::uint64_t run_transitions_ = 0;   ///< MESI state transitions applied
  std::uint64_t run_invalidations_ = 0; ///< copies invalidated

  // Per-run context.
  ThreadProgram* program_ = nullptr;
  CoreId active_cores_ = 0;
  Cycles warmup_end_ = 0;
  Cycles end_time_ = 0;
  RunStats* stats_ = nullptr;
  EnergyAccounting* energy_ = nullptr;
};

}  // namespace am::sim
