#include "sim/config.hpp"

#include <sstream>

namespace am::sim {

std::string MachineConfig::fingerprint() const {
  std::ostringstream os;
  os.precision(17);  // doubles round-trip exactly
  os << "name=" << name << ";freq=" << freq_ghz
     << ";ic=" << static_cast<int>(interconnect) << ";cores=" << cores
     << ";mesh=" << mesh_width << "x" << mesh_height << ";l1=" << l1_hit
     << ";ss=" << same_socket_xfer << ";xs=" << cross_socket_xfer
     << ";mb=" << mesh_base_xfer << ";mh=" << mesh_per_hop
     << ";mn=" << mesh_near_hops << ";u=" << uniform_xfer
     << ";mem=" << memory_fill << ";sh=" << shared_supply << ";exec=";
  for (const Cycles c : exec_cost) os << c << ",";
  os << ";arb=" << static_cast<int>(arbitration)
     << ";age=" << arbitration_age_limit << ";bias=" << arbitration_bias
     << ";cap=" << cache_capacity_lines << ";energy=" << energy.core_active_watts
     << "," << energy.core_spin_watts << "," << energy.uncore_base_watts << ","
     << energy.transfer_nj_per_hop << "," << energy.transfer_nj_base << ","
     << energy.cross_link_nj << "," << energy.directory_nj << ","
     << energy.memory_nj << "," << energy.freq_ghz << ";placement=";
  for (const CoreId c : placement) os << c << ",";
  os << ";paranoid=" << paranoid_checks;
  // Appended only when active so fingerprints (and the sweep cache keys
  // hashed from them) of ordinary configs are unchanged.
  if (fault != FaultInjection::kNone) {
    os << ";fault=" << static_cast<int>(fault);
  }
  if (memory_model != MemoryModel::kSc) {
    os << ";mm=" << static_cast<int>(memory_model) << ";fence=" << fence_cost
       << ";sb=" << store_buffer_entries << ";fence_nj=" << energy.fence_nj;
  }
  return os.str();
}

const char* to_string(MemoryModel m) noexcept {
  switch (m) {
    case MemoryModel::kSc: return "sc";
    case MemoryModel::kTso: return "tso";
  }
  return "?";
}

std::optional<MemoryModel> parse_memory_model(
    const std::string& name) noexcept {
  if (name == "sc" || name == "SC") return MemoryModel::kSc;
  if (name == "tso" || name == "TSO" || name == "x86-tso") {
    return MemoryModel::kTso;
  }
  return std::nullopt;
}

const char* to_string(FaultInjection f) noexcept {
  switch (f) {
    case FaultInjection::kNone: return "none";
    case FaultInjection::kLostUpgradeWrite: return "lost-upgrade-write";
    case FaultInjection::kSkipSharedInvalidate: return "skip-shared-invalidate";
  }
  return "?";
}

std::unique_ptr<Interconnect> MachineConfig::make_interconnect() const {
  auto base = [this]() -> std::unique_ptr<Interconnect> {
    switch (interconnect) {
    case InterconnectKind::kTwoSocket:
      return std::make_unique<TwoSocketInterconnect>(cores / 2, same_socket_xfer,
                                                     cross_socket_xfer);
    case InterconnectKind::kMesh:
      return std::make_unique<MeshInterconnect>(mesh_width, mesh_height,
                                                mesh_base_xfer, mesh_per_hop,
                                                mesh_near_hops);
      case InterconnectKind::kUniform:
        return std::make_unique<UniformInterconnect>(cores, uniform_xfer);
    }
    return nullptr;
  }();
  if (placement.empty() || !base) return base;
  return std::make_unique<PermutedInterconnect>(std::move(base), placement);
}

std::vector<CoreId> placement_for(CoreId cores, bool scatter) {
  std::vector<CoreId> perm;
  perm.reserve(cores);
  if (!scatter) {
    for (CoreId c = 0; c < cores; ++c) perm.push_back(c);
    return perm;
  }
  const CoreId half = cores / 2;
  for (CoreId i = 0; i < half; ++i) {
    perm.push_back(i);
    perm.push_back(half + i);
  }
  if (cores % 2 != 0) perm.push_back(cores - 1);
  return perm;
}

CoreId MachineConfig::core_count() const noexcept {
  if (interconnect == InterconnectKind::kMesh) return mesh_width * mesh_height;
  return cores;
}

MachineConfig xeon_e5_2x18() {
  MachineConfig c;
  c.name = "xeon-e5-2x18";
  c.freq_ghz = 2.3;
  c.interconnect = InterconnectKind::kTwoSocket;
  c.cores = 36;
  c.l1_hit = 4;
  c.same_socket_xfer = 70;
  c.cross_socket_xfer = 180;
  c.memory_fill = 230;
  c.shared_supply = 40;
  // LOAD, STORE, SWP, TAS, FAA, CAS, CASLOOP-attempt
  c.exec_cost = {1, 1, 19, 19, 19, 24, 24};
  c.arbitration = Arbitration::kProximityBiased;  // Xeon fabrics favour locality
  c.arbitration_bias = 0.5;  // same-socket requesters win ~7x more races
  c.energy.freq_ghz = 2.3;
  c.energy.core_active_watts = 4.5;
  c.energy.core_spin_watts = 1.8;
  c.energy.transfer_nj_base = 2.0;
  c.energy.transfer_nj_per_hop = 1.0;
  c.energy.cross_link_nj = 8.0;
  c.energy.memory_nj = 20.0;
  return c;
}

MachineConfig knl_64() {
  MachineConfig c;
  c.name = "knl-64";
  c.freq_ghz = 1.4;
  c.interconnect = InterconnectKind::kMesh;
  c.mesh_width = 8;
  c.mesh_height = 8;
  c.cores = 64;
  c.l1_hit = 5;
  c.mesh_base_xfer = 150;  // KNL cache-to-cache is much slower than Xeon's
  c.mesh_per_hop = 6;
  c.mesh_near_hops = 4;
  c.memory_fill = 300;     // DDR side; MCDRAM would be ~170
  c.shared_supply = 60;
  c.exec_cost = {2, 2, 28, 28, 28, 34, 34};  // silvermont-derived cores
  c.arbitration = Arbitration::kProximityBiased;
  c.arbitration_bias = 3.0;  // bias decays over mesh hops
  c.energy.freq_ghz = 1.4;
  c.energy.core_active_watts = 2.8;  // many simple cores, lower per-core power
  c.energy.core_spin_watts = 1.0;
  c.energy.transfer_nj_base = 1.5;
  c.energy.transfer_nj_per_hop = 0.8;
  c.energy.cross_link_nj = 0.0;  // no socket crossing on die
  c.energy.memory_nj = 22.0;
  return c;
}

MachineConfig test_machine(CoreId cores, Cycles xfer, Cycles l1, Cycles mem) {
  MachineConfig c;
  c.name = "test-uniform";
  c.freq_ghz = 1.0;
  c.interconnect = InterconnectKind::kUniform;
  c.cores = cores;
  c.uniform_xfer = xfer;
  c.l1_hit = l1;
  c.memory_fill = mem;
  c.shared_supply = xfer / 2;
  c.exec_cost = {1, 1, 10, 10, 10, 10, 10};
  c.arbitration = Arbitration::kFifo;
  c.energy.freq_ghz = 1.0;
  return c;
}

MachineConfig preset_by_name(const std::string& name) {
  if (name == "xeon" || name == "xeon-e5-2x18" || name == "e5") {
    return xeon_e5_2x18();
  }
  if (name == "knl" || name == "knl-64" || name == "phi") {
    return knl_64();
  }
  return test_machine(4);
}

}  // namespace am::sim
