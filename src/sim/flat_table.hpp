// Flat open-addressing hash tables backing the fast-path simulator core.
//
// The seed core kept its line store and per-core LRU index in
// std::unordered_map / std::list, which cost a heap allocation per node and
// a pointer chase per lookup — both on the hottest simulate path. These
// replacements are linear-probe tables over contiguous storage:
//   * FlatMap64: insert-only u64 -> u32, used for LineId -> SoA slot. The
//     machine never deletes a line (prime_line only resets contents), so
//     the table needs no tombstones and probes stay short forever.
//   * FlatSlotMap: u32 -> u32 with deletion via backward-shift, used for
//     line-slot -> LRU-node inside each core's residency tracker, where
//     evictions remove entries.
// Neither table's iteration order is ever observed by the simulation — all
// externally visible orderings come from explicit sorts or insertion-order
// vectors — so growth/rehash policy cannot perturb byte-identity.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace am::sim {

/// Insert-only open-addressing map from u64 keys to u32 values.
/// find_or_insert returns the value slot for the key, creating it with
/// @p fallback if absent (and reporting creation so the caller can
/// initialise per-key state exactly where the old map would have).
class FlatMap64 {
 public:
  explicit FlatMap64(std::size_t initial_pow2 = 64) {
    keys_.assign(initial_pow2, kEmptyKey);
    vals_.assign(initial_pow2, 0);
    mask_ = initial_pow2 - 1;
  }

  /// Returns the value for @p key, or @p missing if absent.
  std::uint32_t find(std::uint64_t key, std::uint32_t missing) const noexcept {
    std::size_t i = index_of(key);
    while (true) {
      if (keys_[i] == kEmptyKey) return missing;
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
  }

  /// Returns the value for @p key, inserting @p fallback first if absent.
  /// Sets @p created accordingly.
  std::uint32_t find_or_insert(std::uint64_t key, std::uint32_t fallback,
                               bool& created) {
    std::size_t i = index_of(key);
    while (true) {
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        vals_[i] = fallback;
        ++size_;
        created = true;
        if (size_ * 4 >= keys_.size() * 3) grow();
        return fallback;
      }
      if (keys_[i] == key) {
        created = false;
        return vals_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  std::size_t index_of(std::uint64_t key) const noexcept {
    // splitmix64 finalizer: cheap, and scatters the small dense LineIds the
    // programs use well enough for linear probing.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmptyKey);
    vals_.assign(old_vals.size() * 2, 0);
    mask_ = keys_.size() - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      std::size_t j = index_of(old_keys[i]);
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressing map from u32 keys to u32 values with erase support
/// (backward-shift deletion, so no tombstone buildup). Keys are line slots;
/// ~0u is reserved as the empty marker.
class FlatSlotMap {
 public:
  explicit FlatSlotMap(std::size_t initial_pow2 = 64) {
    keys_.assign(initial_pow2, kEmpty);
    vals_.assign(initial_pow2, 0);
    mask_ = initial_pow2 - 1;
  }

  std::uint32_t find(std::uint32_t key, std::uint32_t missing) const noexcept {
    std::size_t i = index_of(key);
    while (true) {
      if (keys_[i] == kEmpty) return missing;
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
  }

  void insert(std::uint32_t key, std::uint32_t val) {
    assert(key != kEmpty);
    std::size_t i = index_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        vals_[i] = val;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = val;
    ++size_;
    if (size_ * 4 >= keys_.size() * 3) grow();
  }

  void erase(std::uint32_t key) {
    std::size_t i = index_of(key);
    while (true) {
      if (keys_[i] == kEmpty) return;  // not present
      if (keys_[i] == key) break;
      i = (i + 1) & mask_;
    }
    --size_;
    // Backward-shift: close the hole by moving later probe-chain members up.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (keys_[j] != kEmpty) {
      // Move j into the hole iff the hole lies on j's probe path, i.e. the
      // circular distance home->hole is shorter than home->j.
      const std::size_t home = index_of(keys_[j]);
      const std::size_t dist_hole = (hole - home) & mask_;
      const std::size_t dist_j = (j - home) & mask_;
      if (dist_hole < dist_j) {
        keys_[hole] = keys_[j];
        vals_[hole] = vals_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    keys_[hole] = kEmpty;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::uint32_t kEmpty = ~0u;

  std::size_t index_of(std::uint32_t key) const noexcept {
    std::uint32_t x = key;
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return static_cast<std::size_t>(x) & mask_;
  }

  void grow() {
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.assign(old_vals.size() * 2, 0);
    mask_ = keys_.size() - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = index_of(old_keys[i]);
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace am::sim
