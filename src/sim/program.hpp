// Thread programs: the per-core operation streams the simulator executes.
//
// A program answers "what does core c do next?" — which primitive, on which
// line, after how much local work. The standard programs mirror the paper's
// two execution settings (high contention, low contention) plus a
// skewed-sharing stream used in the extension experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/random.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// One operation a core asks the machine to perform.
struct IssueRequest {
  Primitive prim = Primitive::kFaa;
  LineId line = 0;
  Cycles work_before = 0;  ///< local (non-shared) work preceding the op
  /// Value written by STORE/SWP (defaults to the context's store_value, 1).
  /// Lock programs use this to release locks / publish tickets.
  std::optional<std::uint64_t> store_value;
  /// Expectation override for CAS (defaults to the context's running
  /// expectation). Lock programs use this for pointer-style CAS.
  std::optional<std::uint64_t> cas_expected;
  /// Value a successful CAS writes (defaults to expected + 1, the counter
  /// semantics shared with am::execute). Pointer-style CAS sets this.
  std::optional<std::uint64_t> cas_desired;
};

/// Decode-once description of a core's op stream for programs whose stream
/// is a single request repeated forever. The machine executes the plan
/// without calling next_op/on_result per op, so a program may only offer
/// one when (a) next_op would return exactly @p op every time without
/// drawing from the per-core RNG and (b) its on_result override (if any)
/// is a no-op. Anything stateful — per-op randomness, cursors, result
/// feedback — must stay on the dynamic path.
struct StaticPlan {
  IssueRequest op;
};

class ThreadProgram {
 public:
  virtual ~ThreadProgram() = default;

  /// Next operation for @p core, or nullopt when that core is finished.
  /// Called once per completed operation; the machine stops calling after
  /// the configured end time regardless.
  virtual std::optional<IssueRequest> next_op(CoreId core, Xoshiro256& rng) = 0;

  /// Completion callback (success/failure, observed value).
  virtual void on_result(CoreId core, const OpResult& result) {
    (void)core;
    (void)result;
  }

  /// Static per-core plan, or nullopt to run through next_op per op (the
  /// default, always correct). See StaticPlan for the eligibility rules.
  virtual std::optional<StaticPlan> static_plan(CoreId core) const {
    (void)core;
    return std::nullopt;
  }
};

/// High-contention setting: every core applies @p prim to one shared line,
/// with @p work cycles of local work between operations. work == 0 is the
/// maximum-contention point of the paper's figures.
class HighContentionProgram final : public ThreadProgram {
 public:
  /// @param jitter uniform work randomization fraction in [0,1]; non-zero
  /// jitter desynchronizes cores (how randomized backoff works in practice).
  HighContentionProgram(Primitive prim, Cycles work, LineId line = 0,
                        double jitter = 0.0)
      : prim_(prim), work_(work), line_(line), jitter_(jitter) {}

  std::optional<IssueRequest> next_op(CoreId, Xoshiro256& rng) override {
    IssueRequest r;
    r.prim = prim_;
    r.line = line_;
    r.work_before = work_;
    if (jitter_ > 0.0 && work_ > 0) {
      const double w = static_cast<double>(work_);
      const double lo = w * (1.0 - jitter_);
      const double span = 2.0 * w * jitter_;
      r.work_before = static_cast<Cycles>(lo + rng.next_double() * span);
    }
    return r;
  }

  std::optional<StaticPlan> static_plan(CoreId) const override {
    // With jitter the stream draws from the per-core RNG each op, which a
    // static plan would skip — that path must stay dynamic.
    if (jitter_ > 0.0 && work_ > 0) return std::nullopt;
    StaticPlan p;
    p.op.prim = prim_;
    p.op.line = line_;
    p.op.work_before = work_;
    return p;
  }

 private:
  Primitive prim_;
  Cycles work_;
  LineId line_;
  double jitter_;
};

/// Low-contention setting: core c applies @p prim to its own private line.
/// Measures the intrinsic cost of the primitive with a warm, exclusive line.
class LowContentionProgram final : public ThreadProgram {
 public:
  LowContentionProgram(Primitive prim, Cycles work, LineId base = 1000)
      : prim_(prim), work_(work), base_(base) {}

  std::optional<IssueRequest> next_op(CoreId core, Xoshiro256&) override {
    IssueRequest r;
    r.prim = prim_;
    r.line = base_ + core;
    r.work_before = work_;
    return r;
  }

  std::optional<StaticPlan> static_plan(CoreId core) const override {
    StaticPlan p;
    p.op.prim = prim_;
    p.op.line = base_ + core;
    p.op.work_before = work_;
    return p;
  }

 private:
  Primitive prim_;
  Cycles work_;
  LineId base_;
};

/// Skewed sharing: each op picks a line from a Zipf distribution over
/// @p n_lines lines. s == 0 is uniform (mostly uncontended for large
/// n_lines); larger s concentrates traffic on a hot set.
class ZipfSharingProgram final : public ThreadProgram {
 public:
  ZipfSharingProgram(Primitive prim, Cycles work, std::size_t n_lines,
                     double s, LineId base = 0)
      : prim_(prim), work_(work), sampler_(n_lines, s), base_(base) {}

  std::optional<IssueRequest> next_op(CoreId, Xoshiro256& rng) override {
    IssueRequest r;
    r.prim = prim_;
    r.line = base_ + sampler_.sample(rng);
    r.work_before = work_;
    return r;
  }

 private:
  Primitive prim_;
  Cycles work_;
  ZipfSampler sampler_;
  LineId base_;
};

/// Read-mostly mix: LOAD with probability (1 - write_fraction), otherwise
/// the configured RMW, all on one shared line. Models the reader/writer
/// mixes the paper's low-contention application context discusses.
class MixedReadWriteProgram final : public ThreadProgram {
 public:
  MixedReadWriteProgram(Primitive write_prim, double write_fraction,
                        Cycles work, LineId line = 0)
      : write_prim_(write_prim),
        write_fraction_(write_fraction),
        work_(work),
        line_(line) {}

  std::optional<IssueRequest> next_op(CoreId, Xoshiro256& rng) override {
    IssueRequest r;
    r.prim = rng.next_double() < write_fraction_ ? write_prim_
                                                 : Primitive::kLoad;
    r.line = line_;
    r.work_before = work_;
    return r;
  }

 private:
  Primitive write_prim_;
  double write_fraction_;
  Cycles work_;
  LineId line_;
};

/// Sharded counter: cores are grouped into contiguous blocks of
/// @p group_size, each block sharing one shard line. Grouping *adjacent*
/// cores keeps each shard's bouncing socket-local — the locality-aware
/// sharding the model prices (a core%k mapping would pair distant cores
/// and pay far transfers on every shard). group_size == cores degenerates
/// to the high-contention setting, group_size == 1 to private lines.
class ShardedProgram final : public ThreadProgram {
 public:
  ShardedProgram(Primitive prim, Cycles work, std::uint32_t group_size,
                 LineId base = 0)
      : prim_(prim), work_(work),
        group_size_(group_size == 0 ? 1 : group_size), base_(base) {}

  std::optional<IssueRequest> next_op(CoreId core, Xoshiro256&) override {
    IssueRequest r;
    r.prim = prim_;
    r.line = base_ + core / group_size_;
    r.work_before = work_;
    return r;
  }

  std::optional<StaticPlan> static_plan(CoreId core) const override {
    StaticPlan p;
    p.op.prim = prim_;
    p.op.line = base_ + core / group_size_;
    p.op.work_before = work_;
    return p;
  }

 private:
  Primitive prim_;
  Cycles work_;
  std::uint32_t group_size_;
  LineId base_;
};

/// Private working-set walk: core c cycles through its own set of
/// @p lines_per_core lines. With the walk larger than the private cache
/// capacity every access misses to memory — the capacity cliff experiment.
class PrivateWalkProgram final : public ThreadProgram {
 public:
  PrivateWalkProgram(Primitive prim, Cycles work, std::uint64_t lines_per_core,
                     LineId base = 1u << 20)
      : prim_(prim), work_(work),
        lines_per_core_(lines_per_core == 0 ? 1 : lines_per_core),
        base_(base) {}

  std::optional<IssueRequest> next_op(CoreId core, Xoshiro256&) override {
    if (core >= cursor_.size()) cursor_.resize(core + 1, 0);
    IssueRequest r;
    r.prim = prim_;
    r.line = base_ + core * lines_per_core_ + cursor_[core];
    cursor_[core] = (cursor_[core] + 1) % lines_per_core_;
    r.work_before = work_;
    return r;
  }

 private:
  Primitive prim_;
  Cycles work_;
  std::uint64_t lines_per_core_;
  LineId base_;
  std::vector<std::uint64_t> cursor_;
};

/// Fixed finite schedule for one core; every other core idles. Used by the
/// state-priming latency probes (Table 2) and unit tests.
class ScriptProgram final : public ThreadProgram {
 public:
  ScriptProgram(CoreId core, std::vector<IssueRequest> script)
      : core_(core), script_(std::move(script)) {}

  std::optional<IssueRequest> next_op(CoreId core, Xoshiro256&) override {
    if (core != core_ || next_ >= script_.size()) return std::nullopt;
    return script_[next_++];
  }

  std::size_t executed() const noexcept { return next_; }

 private:
  CoreId core_;
  std::vector<IssueRequest> script_;
  std::size_t next_ = 0;
};

}  // namespace am::sim
