#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace am::sim {

namespace {

constexpr std::size_t kMinBuckets = 8;

bool before(const SchedEntry& a, const SchedEntry& b) noexcept {
  return a.time != b.time ? a.time < b.time : a.seq < b.seq;
}

std::size_t words_for(std::size_t nbuckets) noexcept {
  return (nbuckets + 63) / 64;
}

}  // namespace

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  live_.assign(words_for(kMinBuckets), 0);
  mask_ = kMinBuckets - 1;
  width_ = 16;  // re-inferred at the first resize
  shift_ = 4;
  cur_bucket_ = 0;
  cur_top_ = width_;
}

void CalendarQueue::push_mid(Bucket& b, const SchedEntry& e) {
  // Events are pushed in near-ascending time order, so the common (append)
  // case is handled inline by push(); here the entry belongs somewhere in
  // the middle, so walk back from the tail (short buckets make the linear
  // scan cheaper than a branchy binary search).
  auto it = b.items.end();
  while (it != b.items.begin() + static_cast<std::ptrdiff_t>(b.head) &&
         before(e, *(it - 1))) {
    --it;
  }
  b.items.insert(it, e);
}

void CalendarQueue::compact(Bucket& b) {
  // Reclaim the dead prefix once it dominates the bucket.
  b.items.erase(b.items.begin(),
                b.items.begin() + static_cast<std::ptrdiff_t>(b.head));
  b.head = 0;
}

void CalendarQueue::seek_to(Cycles time) noexcept {
  cur_bucket_ = bucket_of(time);
  cur_top_ = ((time >> shift_) + 1) << shift_;
}

std::size_t CalendarQueue::next_live(std::size_t b) const noexcept {
  const std::size_t words = live_.size();
  const std::size_t w0 = b >> 6;
  std::uint64_t word = live_[w0] & (~std::uint64_t{0} << (b & 63));
  if (word != 0) {
    return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(word));
  }
  for (std::size_t k = 1; k <= words; ++k) {
    const std::size_t w = (w0 + k) % words;
    word = live_[w];
    if (word != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    }
  }
  return buckets_.size();  // unreachable when size_ > 0
}

SchedEntry CalendarQueue::pop_slow() {
  assert(size_ > 0);
  // One sweep over the calendar: bucket (cur_bucket_ + i) owns the due
  // window [cur_top_ + (i-1)*w, cur_top_ + i*w). Buckets are sorted, so a
  // bucket's front is its minimum; the first front inside its window is the
  // global minimum of the current year. The bitmap steps the sweep straight
  // between nonempty buckets.
  const std::size_t n = buckets_.size();
  std::size_t off = 0;
  while (off < n) {
    const std::size_t b = next_live((cur_bucket_ + off) & mask_);
    const std::size_t boff = (b - cur_bucket_) & mask_;
    if (boff < off) break;  // wrapped past the year's end
    Bucket& bk = buckets_[b];
    const Cycles top = cur_top_ + static_cast<Cycles>(boff) * width_;
    if (bk.front().time < top) {
      cur_bucket_ = b;
      cur_top_ = top;
      const SchedEntry e = bk.front();
      pop_front(bk, b);
      --size_;
      if (size_ < buckets_.size() / 2) maybe_shrink();
      return e;
    }
    off = boff + 1;
  }

  // Nothing due this year (a long simulated-time jump): find the global
  // minimum directly, fast-forward the cursor to its year, and pop it.
  const Bucket* best = nullptr;
  std::size_t best_idx = 0;
  for (std::size_t w = 0; w < live_.size(); ++w) {
    std::uint64_t word = live_[w];
    while (word != 0) {
      const std::size_t b =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      const Bucket& bk = buckets_[b];
      if (best == nullptr || before(bk.front(), best->front())) {
        best = &bk;
        best_idx = b;
      }
    }
  }
  assert(best != nullptr);
  const SchedEntry e = best->front();
  seek_to(e.time);
  pop_front(buckets_[best_idx], best_idx);
  --size_;
  return e;
}

void CalendarQueue::maybe_shrink() {
  if (buckets_.size() > kMinBuckets) resize(buckets_.size() / 2);
}

void CalendarQueue::clear() {
  for (Bucket& b : buckets_) {
    b.items.clear();
    b.head = 0;
  }
  std::fill(live_.begin(), live_.end(), 0);
  size_ = 0;
  cur_bucket_ = 0;
  cur_top_ = width_;
}

void CalendarQueue::resize(std::size_t nbuckets) {
  std::vector<SchedEntry> all;
  all.reserve(size_);
  for (Bucket& b : buckets_) {
    all.insert(all.end(),
               b.items.begin() + static_cast<std::ptrdiff_t>(b.head),
               b.items.end());
    b.items.clear();
    b.head = 0;
  }

  // Re-derive the bucket width from the live population: aim for roughly
  // one event per bucket across the occupied time span, rounded up to a
  // power of two so bucket_of() is a shift rather than a 64-bit divide on
  // every push. The width only affects scan cost, never ordering, so the
  // formula just needs to be deterministic.
  if (!all.empty()) {
    Cycles lo = std::numeric_limits<Cycles>::max();
    Cycles hi = 0;
    for (const SchedEntry& e : all) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const Cycles span = hi - lo;
    width_ = std::bit_ceil(
        std::max<Cycles>(1, span / static_cast<Cycles>(nbuckets) + 1));
    shift_ = static_cast<unsigned>(std::countr_zero(width_));
  }

  buckets_.assign(nbuckets, Bucket{});
  live_.assign(words_for(nbuckets), 0);
  mask_ = nbuckets - 1;
  for (const SchedEntry& e : all) {
    const std::size_t b = bucket_of(e.time);
    Bucket& bk = buckets_[b];
    if (bk.items.empty()) {
      live_[b >> 6] |= std::uint64_t{1} << (b & 63);
    }
    if (bk.items.empty() || !before(e, bk.items.back())) {
      bk.items.push_back(e);
    } else {
      push_mid(bk, e);
    }
  }
  // Park the cursor at the window of the earliest entry (or time 0).
  Cycles first = 0;
  bool any = false;
  for (const SchedEntry& e : all) {
    if (!any || e.time < first) {
      first = e.time;
      any = true;
    }
  }
  seek_to(any ? first : 0);
}

}  // namespace am::sim
