// Fundamental identifiers and enums of the coherence simulator.
#pragma once

#include <cstdint>

namespace am::sim {

using CoreId = std::uint32_t;
using LineId = std::uint64_t;
using Cycles = std::uint64_t;

inline constexpr CoreId kNoCore = ~CoreId{0};

/// MESI line states as seen by one core's private cache. The simulator
/// additionally distinguishes Exclusive-clean (E) from Modified (M) only for
/// state-priming experiments; both satisfy an RMW locally.
enum class Mesi : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* to_string(Mesi s) noexcept;

/// Where the data supplying a request came from — the latency/energy class
/// of a line transfer. The model's t_* parameters correspond 1:1 to these.
enum class Supply : std::uint8_t {
  kLocalHit,    ///< requester already held a sufficient copy (L1 hit)
  kNear,        ///< cache-to-cache within a socket / few mesh hops
  kFar,         ///< cache-to-cache across the QPI link / many mesh hops
  kMemory,      ///< no cached copy anywhere: DRAM / MCDRAM fill
};

const char* to_string(Supply s) noexcept;

inline constexpr int kSupplyClasses = 4;

/// Directory arbitration policy: who gets a contended line next.
enum class Arbitration : std::uint8_t {
  kFifo,             ///< grant in arrival order (fair queue)
  kNearestFirst,     ///< deterministically grant the requester closest to the
                     ///< current owner (with aging as anti-starvation) —
                     ///< ablation extreme of locality bias
  kProximityBiased,  ///< grant requester c with probability proportional to
                     ///< exp(-distance(owner,c)/bias) — the statistical
                     ///< locality bias real coherence fabrics show, and the
                     ///< mechanism behind the paper's fairness results
};

const char* to_string(Arbitration a) noexcept;

}  // namespace am::sim
