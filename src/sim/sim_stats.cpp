#include "sim/sim_stats.hpp"

namespace am::sim {

std::uint64_t RunStats::total_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.ops;
  return n;
}

std::uint64_t RunStats::total_successes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.successes;
  return n;
}

std::uint64_t RunStats::total_attempts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.attempts;
  return n;
}

double RunStats::throughput_ops_per_kcycle() const noexcept {
  if (measured_cycles == 0) return 0.0;
  return static_cast<double>(total_ops()) * 1000.0 /
         static_cast<double>(measured_cycles);
}

double RunStats::throughput_mops() const noexcept {
  // ops/cycle * cycles/second = ops/second; scale to millions.
  if (measured_cycles == 0) return 0.0;
  const double ops_per_cycle = static_cast<double>(total_ops()) /
                               static_cast<double>(measured_cycles);
  return ops_per_cycle * freq_ghz * 1e9 / 1e6;
}

double RunStats::mean_latency_cycles() const noexcept {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& t : threads) {
    sum += t.latency_sum;
    n += t.ops;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RunStats::success_rate() const noexcept {
  const std::uint64_t ops = total_ops();
  return ops == 0 ? 1.0
                  : static_cast<double>(total_successes()) /
                        static_cast<double>(ops);
}

std::vector<double> RunStats::per_thread_ops() const {
  std::vector<double> shares;
  shares.reserve(threads.size());
  for (const auto& t : threads) shares.push_back(static_cast<double>(t.ops));
  return shares;
}

double RunStats::jain_fairness_ops() const {
  const auto shares = per_thread_ops();
  return jain_fairness(shares);
}

double RunStats::min_max_ops_ratio() const {
  const auto shares = per_thread_ops();
  return min_max_ratio(shares);
}

double RunStats::energy_per_op_nj() const noexcept {
  const std::uint64_t ops = total_ops();
  if (ops == 0) return 0.0;
  return energy.total_j() * 1e9 / static_cast<double>(ops);
}

}  // namespace am::sim
