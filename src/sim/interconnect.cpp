#include "sim/interconnect.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace am::sim {

const char* to_string(Mesi s) noexcept {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

const char* to_string(Supply s) noexcept {
  switch (s) {
    case Supply::kLocalHit: return "local-hit";
    case Supply::kNear: return "near";
    case Supply::kFar: return "far";
    case Supply::kMemory: return "memory";
  }
  return "?";
}

const char* to_string(Arbitration a) noexcept {
  switch (a) {
    case Arbitration::kFifo: return "fifo";
    case Arbitration::kNearestFirst: return "nearest-first";
    case Arbitration::kProximityBiased: return "proximity-biased";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TwoSocketInterconnect
// ---------------------------------------------------------------------------

TwoSocketInterconnect::TwoSocketInterconnect(CoreId cores_per_socket,
                                             Cycles same_socket,
                                             Cycles cross_socket)
    : per_socket_(cores_per_socket),
      same_socket_(same_socket),
      cross_socket_(cross_socket) {
  if (cores_per_socket == 0) {
    throw std::invalid_argument("TwoSocketInterconnect: empty socket");
  }
}

Cycles TwoSocketInterconnect::transfer_cycles(CoreId from, CoreId to) const {
  if (from == to) return 0;
  return socket_of(from) == socket_of(to) ? same_socket_ : cross_socket_;
}

Supply TwoSocketInterconnect::supply_class(CoreId from, CoreId to) const {
  if (from == to) return Supply::kLocalHit;
  return socket_of(from) == socket_of(to) ? Supply::kNear : Supply::kFar;
}

std::uint32_t TwoSocketInterconnect::distance(CoreId from, CoreId to) const {
  if (from == to) return 0;
  return socket_of(from) == socket_of(to) ? 1 : 2;
}

std::uint32_t TwoSocketInterconnect::hops(CoreId from, CoreId to) const {
  if (from == to) return 0;
  return socket_of(from) == socket_of(to) ? 1 : 3;  // ring hop vs ring+QPI+ring
}

std::string TwoSocketInterconnect::describe() const {
  std::ostringstream os;
  os << "2-socket x " << per_socket_ << " cores (intra " << same_socket_
     << "cy, inter " << cross_socket_ << "cy)";
  return os.str();
}

std::string TwoSocketInterconnect::identity() const {
  std::ostringstream os;
  os << "2socket:" << per_socket_ << ':' << same_socket_ << ':'
     << cross_socket_;
  return os.str();
}

// ---------------------------------------------------------------------------
// MeshInterconnect
// ---------------------------------------------------------------------------

MeshInterconnect::MeshInterconnect(std::uint32_t width, std::uint32_t height,
                                   Cycles base, Cycles per_hop,
                                   std::uint32_t near_hops)
    : width_(width),
      height_(height),
      base_(base),
      per_hop_(per_hop),
      near_hops_(near_hops) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("MeshInterconnect: empty mesh");
  }
}

std::uint32_t MeshInterconnect::manhattan(CoreId from, CoreId to) const noexcept {
  const auto fx = static_cast<int>(from % width_);
  const auto fy = static_cast<int>(from / width_);
  const auto tx = static_cast<int>(to % width_);
  const auto ty = static_cast<int>(to / width_);
  return static_cast<std::uint32_t>(std::abs(fx - tx) + std::abs(fy - ty));
}

Cycles MeshInterconnect::transfer_cycles(CoreId from, CoreId to) const {
  if (from == to) return 0;
  return base_ + per_hop_ * manhattan(from, to);
}

Supply MeshInterconnect::supply_class(CoreId from, CoreId to) const {
  if (from == to) return Supply::kLocalHit;
  return manhattan(from, to) <= near_hops_ ? Supply::kNear : Supply::kFar;
}

std::uint32_t MeshInterconnect::distance(CoreId from, CoreId to) const {
  return manhattan(from, to);
}

std::uint32_t MeshInterconnect::hops(CoreId from, CoreId to) const {
  return manhattan(from, to);
}

std::string MeshInterconnect::describe() const {
  std::ostringstream os;
  os << width_ << "x" << height_ << " mesh (base " << base_ << "cy + "
     << per_hop_ << "cy/hop)";
  return os.str();
}

std::string MeshInterconnect::identity() const {
  std::ostringstream os;
  os << "mesh:" << width_ << ':' << height_ << ':' << base_ << ':' << per_hop_
     << ':' << near_hops_;
  return os.str();
}

// ---------------------------------------------------------------------------
// PermutedInterconnect
// ---------------------------------------------------------------------------

PermutedInterconnect::PermutedInterconnect(std::unique_ptr<Interconnect> inner,
                                           std::vector<CoreId> perm)
    : inner_(std::move(inner)), perm_(std::move(perm)) {
  if (!inner_) {
    throw std::invalid_argument("PermutedInterconnect: null inner");
  }
  for (CoreId p : perm_) {
    if (p >= inner_->core_count()) {
      throw std::invalid_argument("PermutedInterconnect: perm out of range");
    }
  }
}

Cycles PermutedInterconnect::transfer_cycles(CoreId from, CoreId to) const {
  return inner_->transfer_cycles(map(from), map(to));
}

Supply PermutedInterconnect::supply_class(CoreId from, CoreId to) const {
  return inner_->supply_class(map(from), map(to));
}

std::uint32_t PermutedInterconnect::distance(CoreId from, CoreId to) const {
  return inner_->distance(map(from), map(to));
}

std::uint32_t PermutedInterconnect::hops(CoreId from, CoreId to) const {
  return inner_->hops(map(from), map(to));
}

CoreId PermutedInterconnect::core_count() const { return inner_->core_count(); }

std::string PermutedInterconnect::describe() const {
  return inner_->describe() + " (permuted placement)";
}

std::string PermutedInterconnect::identity() const {
  // The inner topology must expose an identity too; otherwise this wrapper
  // opts out of sharing as well.
  const std::string inner = inner_->identity();
  if (inner.empty()) return std::string();
  std::ostringstream os;
  os << "perm[";
  for (std::size_t i = 0; i < perm_.size(); ++i) {
    if (i != 0) os << ',';
    os << perm_[i];
  }
  os << "]:" << inner;
  return os.str();
}

// ---------------------------------------------------------------------------
// UniformInterconnect
// ---------------------------------------------------------------------------

UniformInterconnect::UniformInterconnect(CoreId cores, Cycles latency)
    : cores_(cores), latency_(latency) {
  if (cores == 0) throw std::invalid_argument("UniformInterconnect: no cores");
}

Cycles UniformInterconnect::transfer_cycles(CoreId from, CoreId to) const {
  return from == to ? 0 : latency_;
}

Supply UniformInterconnect::supply_class(CoreId from, CoreId to) const {
  return from == to ? Supply::kLocalHit : Supply::kNear;
}

std::uint32_t UniformInterconnect::distance(CoreId from, CoreId to) const {
  return from == to ? 0 : 1;
}

std::uint32_t UniformInterconnect::hops(CoreId from, CoreId to) const {
  return from == to ? 0 : 1;
}

std::string UniformInterconnect::describe() const {
  std::ostringstream os;
  os << cores_ << " cores, uniform " << latency_ << "cy";
  return os.str();
}

std::string UniformInterconnect::identity() const {
  std::ostringstream os;
  os << "uniform:" << cores_ << ':' << latency_;
  return os.str();
}

}  // namespace am::sim
