// Spinlock implementations built on the studied primitives — the
// "algorithmic design decisions" substrate of the case study (F7).
//
// Each lock's contention behaviour maps directly onto the bouncing model:
//   TAS    — every failed exchange is a line acquisition: the lock line
//            bounces continuously while held (worst case for the fabric).
//   TTAS   — failed attempts spin on a Shared copy (local reads); the line
//            only bounces on release/acquire bursts.
//   Ticket — one FAA per acquisition on the ticket line plus a read-mostly
//            serving line: bounded hand-offs and FIFO fairness.
//   MCS    — queue lock: one SWP on the tail per acquisition, then purely
//            local spinning on a per-thread node; point-to-point hand-off.
// All locks satisfy the same informal Lockable concept (lock/try_lock/
// unlock) so the counter and example code is lock-agnostic.
#pragma once

#include <atomic>
#include <cstdint>

#include "atomics/backoff.hpp"
#include "common/cacheline.hpp"
#include "common/cpu.hpp"

namespace am::locks {

/// Plain test-and-set lock: exchange until the previous value was 0.
class TasLock {
 public:
  void lock() noexcept {
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      cpu_relax();
    }
  }
  bool try_lock() noexcept {
    return flag_.exchange(1, std::memory_order_acquire) == 0;
  }
  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint32_t> flag_{0};
};

/// Test-and-test-and-set: spin reading (Shared copy) and only attempt the
/// exchange when the lock looks free.
class TtasLock {
 public:
  void lock() noexcept {
    while (true) {
      while (flag_.load(std::memory_order_relaxed) != 0) cpu_relax();
      if (flag_.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }
  bool try_lock() noexcept {
    return flag_.load(std::memory_order_relaxed) == 0 &&
           flag_.exchange(1, std::memory_order_acquire) == 0;
  }
  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint32_t> flag_{0};
};

/// TTAS with bounded exponential backoff between attempts.
class BackoffTtasLock {
 public:
  void lock() noexcept {
    ExponentialBackoff backoff;
    while (true) {
      while (flag_.load(std::memory_order_relaxed) != 0) backoff.pause();
      if (flag_.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }
  bool try_lock() noexcept {
    return flag_.load(std::memory_order_relaxed) == 0 &&
           flag_.exchange(1, std::memory_order_acquire) == 0;
  }
  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint32_t> flag_{0};
};

/// FIFO ticket lock: FAA takes a ticket, waiters poll the serving counter.
class TicketLock {
 public:
  void lock() noexcept {
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_acq_rel);
    while (serving_.load(std::memory_order_acquire) != my) cpu_relax();
  }
  bool try_lock() noexcept {
    std::uint64_t serving = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    // Take a ticket only if it would be served immediately.
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint64_t> next_{0};
  alignas(kNoFalseSharingAlign) std::atomic<std::uint64_t> serving_{0};
};

/// MCS queue lock. Each thread supplies its own node (usually on its stack
/// or in thread-local storage); spinning happens on the node, not the lock.
class McsLock {
 public:
  struct alignas(kNoFalseSharingAlign) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  void lock(Node& node) noexcept {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(true, std::memory_order_relaxed);
    Node* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(&node, std::memory_order_release);
      while (node.locked.load(std::memory_order_acquire)) cpu_relax();
    }
  }

  void unlock(Node& node) noexcept {
    Node* successor = node.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      Node* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;  // no one queued behind us
      }
      // A successor is mid-enqueue; wait for the link to appear.
      while ((successor = node.next.load(std::memory_order_acquire)) ==
             nullptr) {
        cpu_relax();
      }
    }
    successor->locked.store(false, std::memory_order_release);
  }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<Node*> tail_{nullptr};
};

/// RAII guard for the lock()/unlock() style locks above.
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock) noexcept : lock_(lock) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace am::locks
