// Lock protocols expressed as simulator thread programs.
//
// Each program drives the same coherence machine the primitive experiments
// use, so lock behaviour emerges from line transfers rather than being
// assumed: TAS hammers the lock line with exchanges, TTAS spins on Shared
// copies, ticket is FIFO over two lines, MCS hands the lock point-to-point
// through per-core node lines. The case-study bench (F7) compares these
// against the advisor's closed-form predictions.
//
// Line-id layout (one coherent namespace per program instance):
//   kLockLine    — TAS/TTAS flag, ticket's next-ticket, MCS tail
//   kServingLine — ticket's now-serving counter
//   kDataLine    — optional shared counter FAA'd inside the critical section
//   kFlagBase+c  — MCS per-core "locked" flag
//   kNextBase+c  — MCS per-core successor pointer (0 = none, core c = c+1)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/program.hpp"
#include "sim/sim_stats.hpp"

namespace am::locks {

/// Common shape of a lock-based workload: acquire, spend critical_work
/// cycles (plus cs_data_ops FAA increments on a shared data line), release,
/// spend outside_work cycles, repeat.
struct LockWorkload {
  sim::Cycles critical_work = 100;
  sim::Cycles outside_work = 200;
  std::uint32_t cs_data_ops = 0;   ///< FAA ops on the data line inside the CS
  sim::Cycles spin_pause = 30;     ///< pause between spin polls (x86 pause)
  sim::Cycles tas_retry_pause = 0; ///< extra backoff between failed TAS tries
};

enum class LockKind : std::uint8_t { kTas, kTtas, kTicket, kMcs };
const char* to_string(LockKind k) noexcept;

inline constexpr sim::LineId kLockLine = 0;
inline constexpr sim::LineId kServingLine = 1;
inline constexpr sim::LineId kDataLine = 2;
inline constexpr sim::LineId kFlagBase = 16;
inline constexpr sim::LineId kNextBase = 512;

/// Base for the four protocols: owns per-core protocol state and the common
/// critical-section / outside-section sequencing.
class LockProgramBase : public sim::ThreadProgram {
 public:
  explicit LockProgramBase(LockWorkload workload) : wl_(workload) {}

  /// Lock acquisitions completed by @p stats' threads under this protocol
  /// (counted from the per-primitive success counters).
  static std::uint64_t acquisitions(const sim::RunStats& stats, LockKind kind);
  /// Per-core acquisition counts (fairness input).
  static std::vector<double> acquisition_shares(const sim::RunStats& stats,
                                                LockKind kind);

 protected:
  const LockWorkload wl_;
};

/// TAS: exchange(lock) until it returns 0; store 0 to release.
class TasLockProgram final : public LockProgramBase {
 public:
  using LockProgramBase::LockProgramBase;
  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

 private:
  enum class St : std::uint8_t { kAcquire, kCsData, kRelease };
  struct Core {
    St state = St::kAcquire;
    sim::Cycles next_work = 0;
    std::uint32_t cs_left = 0;
  };
  std::vector<Core> cores_;
  Core& core(sim::CoreId c);
};

/// TTAS: read the lock until it looks free, then exchange; release stores 0.
class TtasLockProgram final : public LockProgramBase {
 public:
  using LockProgramBase::LockProgramBase;
  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

 private:
  enum class St : std::uint8_t { kSpinRead, kTryTas, kCsData, kRelease };
  struct Core {
    St state = St::kTryTas;
    sim::Cycles next_work = 0;
    std::uint32_t cs_left = 0;
  };
  std::vector<Core> cores_;
  Core& core(sim::CoreId c);
};

/// Ticket: FAA takes a ticket; poll the serving line; store ticket+1 frees.
class TicketLockProgram final : public LockProgramBase {
 public:
  using LockProgramBase::LockProgramBase;
  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

 private:
  enum class St : std::uint8_t { kTakeTicket, kWaitTurn, kCsData, kRelease };
  struct Core {
    St state = St::kTakeTicket;
    sim::Cycles next_work = 0;
    std::uint64_t my_ticket = 0;
    std::uint32_t cs_left = 0;
  };
  std::vector<Core> cores_;
  Core& core(sim::CoreId c);
};

/// MCS queue lock over simulated lines; cores are encoded as core+1 so 0
/// means "no one".
class McsLockProgram final : public LockProgramBase {
 public:
  using LockProgramBase::LockProgramBase;
  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

 private:
  enum class St : std::uint8_t {
    kResetNext,   // next[me] := 0
    kSwapTail,    // prev := SWP(tail, me+1)
    kLinkPred,    // next[prev] := me+1
    kSpinFlag,    // wait until flag[me] == 1
    kClearFlag,   // flag[me] := 0
    kCsData,      // optional FAA ops on the data line
    kReadNext,    // successor := next[me] (carries the critical work)
    kCasTail,     // CAS(tail, me+1 -> 0); fail => successor mid-enqueue
    kWaitNext,    // poll next[me] until the link appears
    kWakeNext,    // flag[successor] := 1
  };
  struct Core {
    St state = St::kResetNext;
    sim::Cycles next_work = 0;
    std::uint64_t pred = 0;
    std::uint64_t successor = 0;
    std::uint32_t cs_left = 0;
  };
  std::vector<Core> cores_;
  Core& core(sim::CoreId c);
};

}  // namespace am::locks
