#include "locks/lock_programs.hpp"

namespace am::locks {

namespace {

sim::IssueRequest make(Primitive p, sim::LineId line, sim::Cycles work) {
  sim::IssueRequest r;
  r.prim = p;
  r.line = line;
  r.work_before = work;
  return r;
}

sim::IssueRequest make_store(sim::LineId line, std::uint64_t value,
                             sim::Cycles work) {
  sim::IssueRequest r = make(Primitive::kStore, line, work);
  r.store_value = value;
  return r;
}

}  // namespace

const char* to_string(LockKind k) noexcept {
  switch (k) {
    case LockKind::kTas: return "TAS";
    case LockKind::kTtas: return "TTAS";
    case LockKind::kTicket: return "ticket";
    case LockKind::kMcs: return "MCS";
  }
  return "?";
}

std::uint64_t LockProgramBase::acquisitions(const sim::RunStats& stats,
                                            LockKind kind) {
  std::uint64_t n = 0;
  for (const auto& t : stats.threads) {
    switch (kind) {
      case LockKind::kTas:
      case LockKind::kTtas:
        // An acquisition is a TAS that observed 0.
        n += t.successes_by_prim[static_cast<std::size_t>(Primitive::kTas)];
        break;
      case LockKind::kTicket:
        // The only STOREs in the ticket protocol are releases.
        n += t.ops_by_prim[static_cast<std::size_t>(Primitive::kStore)];
        break;
      case LockKind::kMcs:
        // The only SWP in the MCS protocol is the tail swap on acquire.
        n += t.ops_by_prim[static_cast<std::size_t>(Primitive::kSwap)];
        break;
    }
  }
  return n;
}

std::vector<double> LockProgramBase::acquisition_shares(
    const sim::RunStats& stats, LockKind kind) {
  std::vector<double> shares;
  shares.reserve(stats.threads.size());
  for (const auto& t : stats.threads) {
    double v = 0.0;
    switch (kind) {
      case LockKind::kTas:
      case LockKind::kTtas:
        v = static_cast<double>(
            t.successes_by_prim[static_cast<std::size_t>(Primitive::kTas)]);
        break;
      case LockKind::kTicket:
        v = static_cast<double>(
            t.ops_by_prim[static_cast<std::size_t>(Primitive::kStore)]);
        break;
      case LockKind::kMcs:
        v = static_cast<double>(
            t.ops_by_prim[static_cast<std::size_t>(Primitive::kSwap)]);
        break;
    }
    shares.push_back(v);
  }
  return shares;
}

// ---------------------------------------------------------------------------
// TAS
// ---------------------------------------------------------------------------

TasLockProgram::Core& TasLockProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) cores_.resize(c + 1);
  return cores_[c];
}

std::optional<sim::IssueRequest> TasLockProgram::next_op(sim::CoreId c,
                                                         Xoshiro256&) {
  Core& st = core(c);
  switch (st.state) {
    case St::kAcquire:
      return make(Primitive::kTas, kLockLine, st.next_work);
    case St::kCsData:
      return make(Primitive::kFaa, kDataLine, 0);
    case St::kRelease:
      return make_store(kLockLine, 0, wl_.critical_work);
  }
  return std::nullopt;
}

void TasLockProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kAcquire:
      if (r.success) {  // observed 0: lock acquired
        st.cs_left = wl_.cs_data_ops;
        st.state = st.cs_left > 0 ? St::kCsData : St::kRelease;
      } else {
        st.next_work = wl_.tas_retry_pause;
      }
      break;
    case St::kCsData:
      if (--st.cs_left == 0) st.state = St::kRelease;
      break;
    case St::kRelease:
      st.state = St::kAcquire;
      st.next_work = wl_.outside_work;
      break;
  }
}

// ---------------------------------------------------------------------------
// TTAS
// ---------------------------------------------------------------------------

TtasLockProgram::Core& TtasLockProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) cores_.resize(c + 1);
  return cores_[c];
}

std::optional<sim::IssueRequest> TtasLockProgram::next_op(sim::CoreId c,
                                                          Xoshiro256&) {
  Core& st = core(c);
  switch (st.state) {
    case St::kSpinRead:
      return make(Primitive::kLoad, kLockLine, st.next_work);
    case St::kTryTas:
      return make(Primitive::kTas, kLockLine, st.next_work);
    case St::kCsData:
      return make(Primitive::kFaa, kDataLine, 0);
    case St::kRelease:
      return make_store(kLockLine, 0, wl_.critical_work);
  }
  return std::nullopt;
}

void TtasLockProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kSpinRead:
      if (r.observed == 0) {
        st.state = St::kTryTas;
        st.next_work = 0;
      } else {
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kTryTas:
      if (r.success) {
        st.cs_left = wl_.cs_data_ops;
        st.state = st.cs_left > 0 ? St::kCsData : St::kRelease;
      } else {
        st.state = St::kSpinRead;
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kCsData:
      if (--st.cs_left == 0) st.state = St::kRelease;
      break;
    case St::kRelease:
      st.state = St::kTryTas;
      st.next_work = wl_.outside_work;
      break;
  }
}

// ---------------------------------------------------------------------------
// Ticket
// ---------------------------------------------------------------------------

TicketLockProgram::Core& TicketLockProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) cores_.resize(c + 1);
  return cores_[c];
}

std::optional<sim::IssueRequest> TicketLockProgram::next_op(sim::CoreId c,
                                                            Xoshiro256&) {
  Core& st = core(c);
  switch (st.state) {
    case St::kTakeTicket:
      return make(Primitive::kFaa, kLockLine, st.next_work);
    case St::kWaitTurn:
      return make(Primitive::kLoad, kServingLine, st.next_work);
    case St::kCsData:
      return make(Primitive::kFaa, kDataLine, 0);
    case St::kRelease:
      return make_store(kServingLine, st.my_ticket + 1, wl_.critical_work);
  }
  return std::nullopt;
}

void TicketLockProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kTakeTicket:
      st.my_ticket = r.observed;
      st.state = St::kWaitTurn;
      st.next_work = 0;
      break;
    case St::kWaitTurn:
      if (r.observed == st.my_ticket) {
        st.cs_left = wl_.cs_data_ops;
        st.state = st.cs_left > 0 ? St::kCsData : St::kRelease;
      } else {
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kCsData:
      if (--st.cs_left == 0) st.state = St::kRelease;
      break;
    case St::kRelease:
      st.state = St::kTakeTicket;
      st.next_work = wl_.outside_work;
      break;
  }
}

// ---------------------------------------------------------------------------
// MCS
// ---------------------------------------------------------------------------

McsLockProgram::Core& McsLockProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) cores_.resize(c + 1);
  return cores_[c];
}

std::optional<sim::IssueRequest> McsLockProgram::next_op(sim::CoreId c,
                                                         Xoshiro256&) {
  Core& st = core(c);
  const std::uint64_t me = c + 1;  // 0 encodes "no one"
  switch (st.state) {
    case St::kResetNext:
      return make_store(kNextBase + c, 0, st.next_work);
    case St::kSwapTail: {
      sim::IssueRequest r = make(Primitive::kSwap, kLockLine, 0);
      r.store_value = me;
      return r;
    }
    case St::kLinkPred:
      return make_store(kNextBase + (st.pred - 1), me, 0);
    case St::kSpinFlag:
      return make(Primitive::kLoad, kFlagBase + c, st.next_work);
    case St::kClearFlag:
      return make_store(kFlagBase + c, 0, 0);
    case St::kCsData:
      return make(Primitive::kFaa, kDataLine, 0);
    case St::kReadNext:
      return make(Primitive::kLoad, kNextBase + c, wl_.critical_work);
    case St::kCasTail: {
      sim::IssueRequest r = make(Primitive::kCas, kLockLine, 0);
      r.cas_expected = me;
      r.cas_desired = 0;
      return r;
    }
    case St::kWaitNext:
      return make(Primitive::kLoad, kNextBase + c, st.next_work);
    case St::kWakeNext:
      return make_store(kFlagBase + (st.successor - 1), 1, 0);
  }
  return std::nullopt;
}

void McsLockProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kResetNext:
      st.state = St::kSwapTail;
      break;
    case St::kSwapTail:
      st.pred = r.observed;
      if (st.pred == 0) {
        st.cs_left = wl_.cs_data_ops;
        st.state = st.cs_left > 0 ? St::kCsData : St::kReadNext;
      } else {
        st.state = St::kLinkPred;
      }
      break;
    case St::kLinkPred:
      st.state = St::kSpinFlag;
      st.next_work = 0;
      break;
    case St::kSpinFlag:
      if (r.observed == 1) {
        st.state = St::kClearFlag;
      } else {
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kClearFlag:
      st.cs_left = wl_.cs_data_ops;
      st.state = st.cs_left > 0 ? St::kCsData : St::kReadNext;
      break;
    case St::kCsData:
      if (--st.cs_left == 0) st.state = St::kReadNext;
      break;
    case St::kReadNext:
      st.successor = r.observed;
      st.state = st.successor != 0 ? St::kWakeNext : St::kCasTail;
      break;
    case St::kCasTail:
      if (r.success) {
        st.state = St::kResetNext;
        st.next_work = wl_.outside_work;
      } else {
        st.state = St::kWaitNext;
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kWaitNext:
      if (r.observed != 0) {
        st.successor = r.observed;
        st.state = St::kWakeNext;
      } else {
        st.next_work = wl_.spin_pause;
      }
      break;
    case St::kWakeNext:
      st.state = St::kResetNext;
      st.next_work = wl_.outside_work;
      break;
  }
}

}  // namespace am::locks
