// Shared-counter implementations — the motivating example of the paper's
// design-decision story: the same "increment a shared counter" contract
// implemented with FAA (one acquisition per increment), a CAS retry loop
// (~N acquisitions per increment under contention), and a lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/cacheline.hpp"
#include "locks/spinlocks.hpp"

namespace am::locks {

/// FAA-based counter: wait-free, one line acquisition per increment.
class FaaCounter {
 public:
  static constexpr const char* name() noexcept { return "faa"; }
  std::uint64_t increment() noexcept {
    return value_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::uint64_t read() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint64_t> value_{0};
};

/// CAS-retry-loop counter: lock-free but not wait-free; a failed attempt
/// still pays a full line acquisition.
class CasLoopCounter {
 public:
  static constexpr const char* name() noexcept { return "cas-loop"; }
  std::uint64_t increment() noexcept {
    std::uint64_t v = value_.load(std::memory_order_acquire);
    while (!value_.compare_exchange_strong(v, v + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      // v refreshed by compare_exchange.
    }
    return v;
  }
  std::uint64_t read() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  alignas(kNoFalseSharingAlign) std::atomic<std::uint64_t> value_{0};
};

/// Lock-protected counter: two contended lines (lock + data).
template <typename Lock = TasLock>
class LockedCounter {
 public:
  static constexpr const char* name() noexcept { return "locked"; }
  std::uint64_t increment() noexcept {
    LockGuard<Lock> guard(lock_);
    // The lock serializes writers; relaxed atomics make the unlocked read()
    // well-defined without adding an RMW to the data line.
    const std::uint64_t v = value_.load(std::memory_order_relaxed);
    value_.store(v + 1, std::memory_order_relaxed);
    return v;
  }
  std::uint64_t read() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  Lock lock_;
  alignas(kNoFalseSharingAlign) std::atomic<std::uint64_t> value_{0};
};

/// Sharded counter: per-slot FAA cells, summed on read. Increment traffic
/// stays shard-local (no bouncing when shards >= writers); reads pay one
/// line fetch per shard — the classic write-optimized counter.
class ShardedCounter {
 public:
  /// @param shards number of independent cells; choose >= expected writers.
  explicit ShardedCounter(std::size_t shards)
      : cells_(std::make_unique<Cell[]>(shards == 0 ? 1 : shards)),
        shards_(shards == 0 ? 1 : shards) {}

  static constexpr const char* name() noexcept { return "sharded"; }

  /// @param slot caller-provided shard hint (typically the thread index).
  std::uint64_t increment(std::size_t slot) noexcept {
    return cells_[slot % shards_].value.fetch_add(1,
                                                  std::memory_order_acq_rel);
  }

  /// Sums all shards. Not a snapshot: concurrent increments may or may not
  /// be included — the usual sharded-counter semantics.
  std::uint64_t read() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < shards_; ++i) {
      total += cells_[i].value.load(std::memory_order_acquire);
    }
    return total;
  }

  std::size_t shards() const noexcept { return shards_; }

 private:
  struct alignas(kNoFalseSharingAlign) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::unique_ptr<Cell[]> cells_;
  std::size_t shards_;
};

}  // namespace am::locks
