#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace am {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cell
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_ascii();
}

}  // namespace am
