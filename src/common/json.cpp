#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace am {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Mask before widening: a raw signed char would sign-extend
          // through the int vararg and %04x would print 8 hex digits.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty) {}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::comma_and_indent(bool is_key) {
  if (expecting_value_) {
    // This token is the value paired with an already-written key.
    expecting_value_ = is_key;  // a key here would be malformed; tolerate
    return;
  }
  if (!stack_.empty()) {
    if (has_items_.back()) os_ << ',';
    has_items_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_indent(false);
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = !has_items_.empty() && has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_indent(false);
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = !has_items_.empty() && has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_and_indent(true);
  os_ << '"' << json_escape(k) << "\":";
  if (pretty_) os_ << ' ';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_and_indent(false);
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma_and_indent(false);
  char buf[32];
  // %.12g round-trips every counter a run produces and keeps files compact.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_and_indent(false);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_and_indent(false);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_and_indent(false);
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_indent(false);
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) {
    if (error != nullptr) {
      *error = err_ + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  // Containers recurse through parse_value; a hostile input of 100k '['
  // would otherwise overflow the native stack. 256 levels is far beyond
  // anything the writers here emit.
  static constexpr std::size_t kMaxDepth = 256;

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      err_ = "unexpected end of input";
      return false;
    }
    if (depth_ >= kMaxDepth) {
      err_ = "nesting too deep";
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      }
      case 't':
        if (literal("true")) {
          out.type_ = JsonValue::Type::kBool;
          out.bool_ = true;
          return true;
        }
        break;
      case 'f':
        if (literal("false")) {
          out.type_ = JsonValue::Type::kBool;
          out.bool_ = false;
          return true;
        }
        break;
      case 'n':
        if (literal("null")) {
          out.type_ = JsonValue::Type::kNull;
          return true;
        }
        break;
      default: return parse_number(out);
    }
    err_ = "unexpected token";
    return false;
  }

  bool parse_object(JsonValue& out) {
    out.type_ = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        err_ = "expected object key";
        return false;
      }
      if (!eat(':')) {
        err_ = "expected ':'";
        return false;
      }
      JsonValue member;
      if (!parse_value(member)) return false;
      out.members_.emplace_back(std::move(key), std::move(member));
      if (eat(',')) continue;
      if (eat('}')) {
        --depth_;
        return true;
      }
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.type_ = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) {
      --depth_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items_.push_back(std::move(item));
      if (eat(',')) continue;
      if (eat(']')) {
        --depth_;
        return true;
      }
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              err_ = "bad \\u escape";
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                err_ = "bad \\u escape";
                return false;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; pass them through as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            err_ = "bad escape";
            return false;
        }
      } else {
        out += c;
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      err_ = "expected number";
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      err_ = "malformed number";
      return false;
    }
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string err_ = "parse error";
};

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return JsonParser(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::at(std::size_t i) const noexcept {
  if (type_ != Type::kArray || i >= items_.size()) return nullptr;
  return &items_[i];
}

}  // namespace am
