#include "common/random.hpp"

#include <algorithm>
#include <stdexcept>

namespace am {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding keeping it just below 1
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace am
