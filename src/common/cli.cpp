#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace am {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  if (flags_.contains(name)) {
    throw std::logic_error("duplicate flag: " + name);
  }
  flags_[name] = Flag{help, default_value, false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) {
    const std::string argv0 = argv[0];
    const auto slash = argv0.find_last_of('/');
    program_name_ =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    command_line_.clear();
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command_line_ += ' ';
      command_line_ += argv[i];
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << "\n" << usage();
      return false;
    }
    arg.erase(0, 2);
    std::string key = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      std::cerr << "unknown flag: --" << key << "\n" << usage();
      return false;
    }
    if (!have_value) {
      // Accept "--key value" when the next token is not itself a flag;
      // otherwise treat as boolean true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::logic_error("unregistered flag: " + name);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

std::uint64_t CliParser::get_uint64(const std::string& name) const {
  return std::strtoull(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    if (!f.value.empty()) os << " (default: " << f.value << ")";
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace am
