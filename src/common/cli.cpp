#include "common/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace am {

namespace {

/// Full-string integer parse; the whole token must be consumed.
template <typename Int>
bool parse_full(const std::string& s, Int& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

bool parse_full_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool is_bool_token(const std::string& v) {
  return v == "true" || v == "false" || v == "1" || v == "0" || v == "yes" ||
         v == "no" || v == "on" || v == "off";
}

const char* kind_name(CliParser::FlagKind kind) {
  switch (kind) {
    case CliParser::FlagKind::kString:  return "a string";
    case CliParser::FlagKind::kInt:     return "an integer";
    case CliParser::FlagKind::kUint64:  return "an unsigned integer";
    case CliParser::FlagKind::kDouble:  return "a number";
    case CliParser::FlagKind::kBool:    return "a boolean (true/false)";
    case CliParser::FlagKind::kIntList: return "a comma-separated integer list";
    case CliParser::FlagKind::kEndpoint:
      return "an endpoint (host:port or unix:path)";
  }
  return "a value";
}

bool value_matches_kind(const std::string& v, CliParser::FlagKind kind) {
  switch (kind) {
    case CliParser::FlagKind::kString:
      return true;
    case CliParser::FlagKind::kInt: {
      std::int64_t i;
      return parse_full(v, i);
    }
    case CliParser::FlagKind::kUint64: {
      std::uint64_t u;
      return parse_full(v, u);
    }
    case CliParser::FlagKind::kDouble: {
      double d;
      return parse_full_double(v, d);
    }
    case CliParser::FlagKind::kBool:
      return is_bool_token(v);
    case CliParser::FlagKind::kIntList: {
      if (v.empty() || v.back() == ',') return false;
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        std::int64_t i;
        if (!parse_full(tok, i)) return false;
      }
      return true;
    }
    case CliParser::FlagKind::kEndpoint:
      return CliParser::is_endpoint(v);
  }
  return false;
}

}  // namespace

bool CliParser::is_endpoint(const std::string& value) {
  if (value.rfind("unix:", 0) == 0) return value.size() > 5;
  // host:port — split on the LAST colon so a future bracketed-IPv6 host
  // with embedded colons keeps working; host and port must be non-empty.
  const auto colon = value.find_last_of(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string port = value.substr(colon + 1);
  std::uint64_t p = 0;
  if (!parse_full(port, p)) return false;
  return p <= 65535;
}

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value, FlagKind kind) {
  if (flags_.contains(name)) {
    throw std::logic_error("duplicate flag: " + name);
  }
  flags_[name] = Flag{help, default_value, kind, false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) {
    const std::string argv0 = argv[0];
    const auto slash = argv0.find_last_of('/');
    program_name_ =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    command_line_.clear();
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command_line_ += ' ';
      command_line_ += argv[i];
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << "\n" << usage();
      return false;
    }
    arg.erase(0, 2);
    std::string key = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      std::cerr << "unknown flag: --" << key << "\n" << usage();
      return false;
    }
    if (!have_value) {
      // Accept "--key value" when the next token is not itself a flag;
      // otherwise treat as boolean true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!value_matches_kind(value, it->second.kind)) {
      std::cerr << "invalid value for --" << key << ": '" << value
                << "' is not " << kind_name(it->second.kind) << "\n"
                << usage();
      return false;
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::logic_error("unregistered flag: " + name);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

std::uint64_t CliParser::get_uint64(const std::string& name) const {
  return std::strtoull(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    if (!f.value.empty()) os << " (default: " << f.value << ")";
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace am
