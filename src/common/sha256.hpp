// SHA-256 (FIPS 180-4), self-contained. Exists for the one place the repo
// needs a *cryptographic* digest: content-addressing attacker-supplied
// bytes (run_guest ELF images) whose hash is the sole shared cache key —
// an engineered collision there would serve one binary's cached response
// for a different binary. Everything that only needs distribution (LRU
// sharding, the fleet hash ring, per-point seeds) keeps the cheap
// splitmix64 chain in service/protocol.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace am {

/// Full 32-byte SHA-256 digest of @p bytes.
std::array<std::uint8_t, 32> sha256(std::string_view bytes);

/// Lowercase hex of the first @p bytes_out bytes of sha256(@p bytes).
/// bytes_out is clamped to [1, 32]; 16 gives the 128-bit / 32-hex form the
/// service uses for cache keys.
std::string sha256_hex(std::string_view bytes, std::size_t bytes_out = 32);

}  // namespace am
