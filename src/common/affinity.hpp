// Thread-to-CPU pinning.
//
// Every hardware-backend measurement thread is pinned: the model's transfer
// latencies are defined between fixed core pairs, so a migrating thread
// would mix latency classes within one sample.
#pragma once

namespace am {

/// Pins the calling thread to OS CPU @p os_cpu_id.
/// @returns false when the kernel refused (e.g. the CPU is offline) —
/// callers treat that as "run unpinned" and record the fact.
bool pin_current_thread(int os_cpu_id) noexcept;

/// Removes any affinity restriction from the calling thread.
bool unpin_current_thread() noexcept;

/// CPU the calling thread last ran on, or -1 when unknown.
int current_cpu() noexcept;

}  // namespace am
