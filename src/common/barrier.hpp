// Sense-reversing spin barrier.
//
// The hardware measurement engine needs all worker threads to enter the
// measured region at the same instant; otherwise the first arrivals measure
// an emptier machine. std::barrier would do semantically, but a
// sense-reversing spin barrier keeps the wakeup path free of futex syscalls,
// which matters when the measured region is tens of nanoseconds long.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/cacheline.hpp"
#include "common/cpu.hpp"

namespace am {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties have arrived.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the count and flip the sense, releasing everyone.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        cpu_relax();
      }
    }
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  alignas(kNoFalseSharingAlign) std::atomic<std::size_t> remaining_;
  alignas(kNoFalseSharingAlign) std::atomic<bool> sense_{false};
};

}  // namespace am
