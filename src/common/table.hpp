// Result-table rendering: every bench binary prints its paper table/figure
// series as an aligned ASCII table and mirrors it to a CSV file so plots can
// be regenerated offline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace am {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return headers_.size(); }
  const std::vector<std::string>& header() const noexcept { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Renders an aligned ASCII table (pipe-separated, header rule).
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Writes CSV to @p path; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace am
