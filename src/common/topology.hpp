// CPU topology description and discovery.
//
// The paper's measurements are topology-sensitive: the cost of a cache-line
// bounce depends on whether the two threads share a core (SMT), a socket, or
// sit across the QPI link / mesh. This module provides
//   * a machine-independent Topology description,
//   * discovery from Linux sysfs for the hardware backend, and
//   * synthetic constructors used by tests and by the simulator presets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace am {

/// One logical CPU (hardware thread).
struct LogicalCpu {
  int os_id = -1;      ///< id used by sched_setaffinity
  int package = -1;    ///< physical socket
  int core = -1;       ///< physical core within the package
  int smt = -1;        ///< hardware-thread index within the core
  int numa_node = -1;  ///< NUMA node (== package on the machines studied)
};

/// Order in which worker threads are placed onto logical CPUs.
enum class PinOrder {
  kCompact,  ///< fill cores of socket 0, then socket 1, SMT siblings last
  kScatter,  ///< round-robin across sockets first (maximises cross-socket traffic)
  kSmtFirst, ///< pack SMT siblings together before moving to the next core
};

const char* to_string(PinOrder order) noexcept;

class Topology {
 public:
  /// Discovers the current machine from /sys/devices/system/cpu. Falls back
  /// to a flat single-socket description when sysfs is unavailable.
  static Topology discover();

  /// Builds a synthetic topology: @p packages sockets ×
  /// @p cores_per_package cores × @p smt_per_core hardware threads.
  static Topology synthetic(int packages, int cores_per_package,
                            int smt_per_core);

  std::size_t logical_cpu_count() const noexcept { return cpus_.size(); }
  std::size_t package_count() const noexcept;
  std::size_t core_count() const noexcept;
  const LogicalCpu& cpu(std::size_t i) const { return cpus_.at(i); }
  const std::vector<LogicalCpu>& cpus() const noexcept { return cpus_; }

  /// Returns os_ids in placement order for @p order, suitable for pinning
  /// thread i to result[i % size].
  std::vector<int> pin_sequence(PinOrder order) const;

  /// True when the two logical CPUs share a physical core (SMT siblings).
  bool same_core(std::size_t a, std::size_t b) const;
  /// True when the two logical CPUs are on the same package.
  bool same_package(std::size_t a, std::size_t b) const;

  /// Human-readable one-line description, e.g. "2 packages x 18 cores x 2 SMT".
  std::string describe() const;

 private:
  std::vector<LogicalCpu> cpus_;
};

}  // namespace am
