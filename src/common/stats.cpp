#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace am {

double Summary::ci95_halfwidth() const noexcept {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  if (q <= 0.0) return *std::min_element(sample.begin(), sample.end());
  if (q >= 100.0) return *std::max_element(sample.begin(), sample.end());
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(sample.size());
  double ssq = 0.0;
  for (double v : sample) {
    const double d = v - s.mean;
    ssq += d * d;
  }
  s.stddev = sample.size() > 1
                 ? std::sqrt(ssq / static_cast<double>(sample.size() - 1))
                 : 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double q) {
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  s.p50 = pct(50.0);
  s.p90 = pct(90.0);
  s.p99 = pct(99.0);
  return s;
}

double jain_fairness(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (double v : shares) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) return 1.0;  // all-zero shares: degenerate but "equal"
  return sum * sum / (static_cast<double>(shares.size()) * sumsq);
}

double min_max_ratio(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(shares.begin(), shares.end());
  if (*hi == 0.0) return 1.0;
  return *lo / *hi;
}

double coefficient_of_variation(std::span<const double> sample) {
  const Summary s = summarize(sample);
  if (s.mean == 0.0) return 0.0;
  return s.stddev / s.mean;
}

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

LogHistogram::LogHistogram(double lo, double hi, int per_decade) : lo_(lo) {
  if (lo <= 0.0 || hi <= lo || per_decade <= 0) {
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi, per_decade > 0");
  }
  log_lo_ = std::log10(lo);
  log_step_ = 1.0 / static_cast<double>(per_decade);
  inv_log_step_ = static_cast<double>(per_decade);
  const double decades = std::log10(hi) - log_lo_;
  const auto regular =
      static_cast<std::size_t>(std::ceil(decades * per_decade)) + 1;
  counts_.assign(regular + 2, 0);  // +underflow +overflow
}

std::size_t LogHistogram::index_for(double value) const noexcept {
  if (value < lo_) return 0;  // underflow
  const double pos = (std::log10(value) - log_lo_) * inv_log_step_;
  auto idx = static_cast<std::size_t>(pos) + 1;
  if (idx >= counts_.size() - 1) return counts_.size() - 1;  // overflow
  return idx;
}

void LogHistogram::add(double value) noexcept {
  std::size_t idx;
  if (value == memo_value_[0]) {
    idx = memo_index_[0];
  } else if (value == memo_value_[1]) {
    idx = memo_index_[1];
  } else if (value == memo_value_[2]) {
    idx = memo_index_[2];
  } else if (value == memo_value_[3]) {
    idx = memo_index_[3];
  } else {
    idx = index_for(value);
    memo_value_[memo_pos_] = value;
    memo_index_[memo_pos_] = static_cast<std::uint32_t>(idx);
    memo_pos_ = (memo_pos_ + 1) & 3;
  }
  ++counts_[idx];
  if (total_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++total_;
  sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.log_step_ != log_step_) {
    throw std::invalid_argument("LogHistogram::merge: incompatible geometry");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.total_ > 0) {
    if (total_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::bucket_mid(std::size_t i) const {
  if (i == 0) return lo_ / 2.0;  // representative for underflow
  const double lo_edge = std::pow(10.0, log_lo_ + static_cast<double>(i - 1) * log_step_);
  const double hi_edge = std::pow(10.0, log_lo_ + static_cast<double>(i) * log_step_);
  return std::sqrt(lo_edge * hi_edge);
}

double LogHistogram::value_at_percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      q / 100.0 * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return bucket_mid(i);
  }
  return bucket_mid(counts_.size() - 1);
}

double LogHistogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

// ---------------------------------------------------------------------------
// Least squares
// ---------------------------------------------------------------------------

namespace {

/// Solves A x = b in place (A is n x n, row-major). Returns false if singular.
bool solve_gauss(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const std::size_t n = a.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri][c] * b[c];
    b[ri] = acc / a[ri][ri];
  }
  return true;
}

}  // namespace

LeastSquaresFit least_squares(const std::vector<std::vector<double>>& rows,
                              std::span<const double> y) {
  LeastSquaresFit fit;
  if (rows.empty() || rows.size() != y.size()) return fit;
  const std::size_t k = rows.front().size();
  if (k == 0) return fit;
  for (const auto& r : rows) {
    if (r.size() != k) return fit;
  }

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx[a][b] += rows[i][a] * rows[i][b];
    }
  }
  std::vector<double> beta = xty;
  if (!solve_gauss(xtx, beta)) return fit;

  const double ymean =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = 0.0;
    for (std::size_t a = 0; a < k; ++a) pred += rows[i][a] * beta[a];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  fit.coefficients = std::move(beta);
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.ok = true;
  return fit;
}

LeastSquaresFit linear_regression(std::span<const double> x,
                                  std::span<const double> y) {
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (double xi : x) rows.push_back({1.0, xi});
  return least_squares(rows, y);
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size() || predicted.empty()) return 0.0;
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) continue;
    acc += std::fabs((predicted[i] - actual[i]) / actual[i]);
    ++n;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double max_relative_error(std::span<const double> predicted,
                          std::span<const double> actual) {
  if (predicted.size() != actual.size()) return 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) continue;
    worst = std::max(worst, std::fabs((predicted[i] - actual[i]) / actual[i]));
  }
  return worst;
}

double geometric_mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : sample) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace am
