// Minimal command-line flag parser shared by the bench and example binaries.
// Accepts --key=value, --key value and boolean --key forms; anything the
// binary did not register is an error so typos fail loudly instead of being
// silently ignored mid-experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace am {

class CliParser {
 public:
  /// Declared type of a flag's value. parse() rejects a command line whose
  /// value does not parse as the declared kind, so "--threads=abc" is a
  /// loud startup error instead of a silent 0 deep inside a sweep.
  enum class FlagKind : std::uint8_t {
    kString,
    kInt,      ///< full-string signed integer
    kUint64,   ///< full-string unsigned 64-bit integer
    kDouble,   ///< full-string floating point
    kBool,     ///< true/false/1/0/yes/no/on/off
    kIntList,  ///< non-empty comma-separated signed integers
    kEndpoint, ///< socket endpoint: host:port (port 0-65535) or unix:path
  };

  /// True when @p value is a well-formed socket endpoint ("host:port" with a
  /// numeric port in [0, 65535], or "unix:path" with a non-empty path). The
  /// service binaries validate --listen/--connect with this at parse time.
  static bool is_endpoint(const std::string& value);

  CliParser(std::string program_description);

  /// Registers a flag; @p help shows up in usage output. Values supplied on
  /// the command line are validated against @p kind during parse().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "",
                FlagKind kind = FlagKind::kString);

  /// Parses argv. Returns false (after printing usage/diagnostics to stderr)
  /// on unknown flags, malformed input, or --help.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  /// Full-range unsigned parse (seeds are 64-bit; get_int would clip them).
  std::uint64_t get_uint64(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated list of integers, e.g. "--threads=1,2,4,8".
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  std::string usage() const;

  /// Basename of argv[0] as seen by the last parse() ("" before parse).
  const std::string& program_name() const noexcept { return program_name_; }
  /// The command line as invoked, space-joined — report provenance.
  const std::string& command_line() const noexcept { return command_line_; }

 private:
  struct Flag {
    std::string help;
    std::string value;
    FlagKind kind = FlagKind::kString;
    bool set = false;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::string program_name_;
  std::string command_line_;
};

}  // namespace am
