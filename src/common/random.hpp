// Deterministic, allocation-free PRNGs and distributions for workload
// generation. <random>'s engines are avoided on the measurement path: their
// state is large and their call overhead is visible at the scale of a single
// atomic operation.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace am {

/// SplitMix64 — tiny, fast, passes BigCrush for its size; used both directly
/// and to seed Xoshiro.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for workload decisions.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __extension__ using uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<uint128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Zipf-distributed index sampler over {0, ..., n-1} with exponent s.
/// Used by the low-contention workloads with skewed sharing: a small hot set
/// of lines receives most accesses, the tail is effectively private.
///
/// Implementation: inverse-CDF table (O(n) memory, O(log n) sampling), which
/// is exact and fast enough for workload generation.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Xoshiro256& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return s_; }

 private:
  std::vector<double> cdf_;
  double s_;
};

}  // namespace am
