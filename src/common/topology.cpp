#include "common/topology.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

namespace am {

const char* to_string(PinOrder order) noexcept {
  switch (order) {
    case PinOrder::kCompact: return "compact";
    case PinOrder::kScatter: return "scatter";
    case PinOrder::kSmtFirst: return "smt-first";
  }
  return "?";
}

namespace {

/// Reads a small integer file like /sys/.../topology/core_id; returns
/// fallback when missing.
int read_int_file(const std::string& path, int fallback) {
  std::ifstream in(path);
  int v = fallback;
  if (in && (in >> v)) return v;
  return fallback;
}

int numa_node_of(int cpu) {
  // The node shows up as a directory node<N> under the cpu directory.
  for (int node = 0; node < 1024; ++node) {
    std::ifstream probe("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                        "/node" + std::to_string(node) + "/cpulist");
    if (probe) return node;
  }
  return 0;
}

}  // namespace

Topology Topology::discover() {
  Topology topo;
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  // Map (package, core) -> number of SMT threads seen so far, to derive the
  // smt index deterministically even when sysfs lacks thread_siblings.
  std::map<std::pair<int, int>, int> smt_seen;
  for (unsigned i = 0; i < n; ++i) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(i) + "/topology/";
    LogicalCpu c;
    c.os_id = static_cast<int>(i);
    c.package = read_int_file(base + "physical_package_id", 0);
    c.core = read_int_file(base + "core_id", static_cast<int>(i));
    c.smt = smt_seen[{c.package, c.core}]++;
    c.numa_node = numa_node_of(static_cast<int>(i));
    topo.cpus_.push_back(c);
  }
  return topo;
}

Topology Topology::synthetic(int packages, int cores_per_package,
                             int smt_per_core) {
  Topology topo;
  int os_id = 0;
  // Mirror Linux enumeration on Intel parts: first SMT thread of every core
  // across all packages, then the second SMT threads.
  for (int smt = 0; smt < smt_per_core; ++smt) {
    for (int p = 0; p < packages; ++p) {
      for (int core = 0; core < cores_per_package; ++core) {
        LogicalCpu c;
        c.os_id = os_id++;
        c.package = p;
        c.core = core;
        c.smt = smt;
        c.numa_node = p;
        topo.cpus_.push_back(c);
      }
    }
  }
  return topo;
}

std::size_t Topology::package_count() const noexcept {
  std::set<int> pkgs;
  for (const auto& c : cpus_) pkgs.insert(c.package);
  return pkgs.size();
}

std::size_t Topology::core_count() const noexcept {
  std::set<std::pair<int, int>> cores;
  for (const auto& c : cpus_) cores.insert({c.package, c.core});
  return cores.size();
}

std::vector<int> Topology::pin_sequence(PinOrder order) const {
  std::vector<LogicalCpu> sorted = cpus_;
  switch (order) {
    case PinOrder::kCompact:
      // All smt-0 threads of socket 0's cores, then socket 1, ...; SMT
      // siblings only after every core has one thread.
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const LogicalCpu& a, const LogicalCpu& b) {
                         return std::tuple(a.smt, a.package, a.core) <
                                std::tuple(b.smt, b.package, b.core);
                       });
      break;
    case PinOrder::kScatter:
      // Alternate sockets: core 0 of socket 0, core 0 of socket 1, core 1 of
      // socket 0, ... Maximises the fraction of cross-socket transfers.
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const LogicalCpu& a, const LogicalCpu& b) {
                         return std::tuple(a.smt, a.core, a.package) <
                                std::tuple(b.smt, b.core, b.package);
                       });
      break;
    case PinOrder::kSmtFirst:
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const LogicalCpu& a, const LogicalCpu& b) {
                         return std::tuple(a.package, a.core, a.smt) <
                                std::tuple(b.package, b.core, b.smt);
                       });
      break;
  }
  std::vector<int> seq;
  seq.reserve(sorted.size());
  for (const auto& c : sorted) seq.push_back(c.os_id);
  return seq;
}

bool Topology::same_core(std::size_t a, std::size_t b) const {
  const auto& ca = cpus_.at(a);
  const auto& cb = cpus_.at(b);
  return ca.package == cb.package && ca.core == cb.core;
}

bool Topology::same_package(std::size_t a, std::size_t b) const {
  return cpus_.at(a).package == cpus_.at(b).package;
}

std::string Topology::describe() const {
  std::ostringstream os;
  const std::size_t pkgs = package_count();
  const std::size_t cores = core_count();
  const std::size_t smt =
      cores == 0 ? 1 : std::max<std::size_t>(1, cpus_.size() / cores);
  os << pkgs << " package(s) x " << (pkgs == 0 ? 0 : cores / std::max<std::size_t>(1, pkgs))
     << " core(s) x " << smt << " SMT = " << cpus_.size() << " logical CPUs";
  return os.str();
}

}  // namespace am
