#include "common/cpu.hpp"

#include <chrono>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace am {

std::uint64_t rdtscp() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

namespace {

double calibrate_tsc_hz() {
  using clock = std::chrono::steady_clock;
  // Two short spins bracketed by wall-clock reads; long enough (~10 ms) to
  // swamp clock-read overhead, short enough not to matter at startup.
  const auto t0 = clock::now();
  const std::uint64_t c0 = rdtscp();
  const auto deadline = t0 + std::chrono::milliseconds(10);
  while (clock::now() < deadline) {
    cpu_relax();
  }
  const std::uint64_t c1 = rdtscp();
  const auto t1 = clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  if (secs <= 0.0 || c1 <= c0) {
    return 1e9;  // degenerate clock; treat one tick as one nanosecond
  }
  return static_cast<double>(c1 - c0) / secs;
}

}  // namespace

double tsc_frequency_hz() {
  static std::once_flag once;
  static double hz = 0.0;
  std::call_once(once, [] { hz = calibrate_tsc_hz(); });
  return hz;
}

double ticks_to_ns(std::uint64_t ticks) {
  return static_cast<double>(ticks) * 1e9 / tsc_frequency_hz();
}

}  // namespace am
