#include "common/sha256.hpp"

#include <bit>
#include <cstring>

namespace am {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundK = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

void compress(std::array<std::uint32_t, 8>& state,
              const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                             std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                             std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundK[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(std::string_view bytes) {
  std::array<std::uint32_t, 8> state = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                        0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                        0x1f83d9abu, 0x5be0cd19u};
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t n = bytes.size();
  while (n >= 64) {
    compress(state, p);
    p += 64;
    n -= 64;
  }
  // Final block(s): message tail, 0x80, zero pad, 64-bit big-endian bit
  // length. Spills into a second block when the tail leaves < 9 free bytes.
  std::uint8_t tail[128] = {};
  std::memcpy(tail, p, n);
  tail[n] = 0x80;
  const std::size_t total = n + 9 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(bytes.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[total - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  compress(state, tail);
  if (total == 128) compress(state, tail + 64);

  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

std::string sha256_hex(std::string_view bytes, std::size_t bytes_out) {
  if (bytes_out < 1) bytes_out = 1;
  if (bytes_out > 32) bytes_out = 32;
  const std::array<std::uint8_t, 32> digest = sha256(bytes);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes_out * 2);
  for (std::size_t i = 0; i < bytes_out; ++i) {
    out.push_back(kHex[digest[i] >> 4]);
    out.push_back(kHex[digest[i] & 0xf]);
  }
  return out;
}

}  // namespace am
