// Standard base64 (RFC 4648, with padding) for binary payloads carried
// inside the JSON wire protocol — the run_guest request ships a whole ELF
// image this way. Strict decoding: the alphabet is exact, padding is
// mandatory and terminal, whitespace is rejected, and non-canonical
// trailing bits in padded groups (RFC 4648 §3.5) are refused. A payload
// either decodes to the bytes the client encoded or the request is
// refused; there is no lenient path that could make two distinct wire
// forms canonicalize to the same guest image.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace am {

/// Encodes @p bytes as base64 with '=' padding.
std::string base64_encode(std::string_view bytes);

/// Decodes strict base64 into @p out (cleared first). False on any
/// malformed input: bad characters, bad length, misplaced padding.
bool base64_decode(std::string_view text, std::string* out);

}  // namespace am
