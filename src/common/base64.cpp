#include "common/base64.hpp"

#include <array>

namespace am {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> table{};
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = -1;
  for (std::int8_t i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = i;
  }
  return table;
}

constexpr std::array<std::int8_t, 256> kReverse = make_reverse();

}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                            static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

bool base64_decode(std::string_view text, std::string* out) {
  out->clear();
  if (text.size() % 4 != 0) return false;
  out->reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal as the final one or two characters.
        if (!last || j < 2) return false;
        if (j == 2 && text[i + 3] != '=') return false;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return false;
      const std::int8_t d = kReverse[static_cast<unsigned char>(c)];
      if (d < 0) return false;
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    // Canonical padding (RFC 4648 §3.5): the encoder leaves the unused low
    // bits of the final symbol zero, so e.g. "QQ==" and "QR==" must not
    // both decode to "A" — reject the non-canonical spellings.
    if (pad == 1 && (v & 0xffu) != 0) return false;
    if (pad == 2 && (v & 0xffffu) != 0) return false;
    out->push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out->push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out->push_back(static_cast<char>(v & 0xff));
  }
  return true;
}

}  // namespace am
