// Low-level CPU helpers: timestamp counter access, pause/relax hints and
// TSC-frequency calibration.
//
// The hardware measurement backend times individual atomic operations with
// the TSC (the same methodology the paper uses); the calibration routine maps
// TSC ticks to nanoseconds so results are comparable with the simulator's
// cycle-denominated output.
#pragma once

#include <cstdint>

namespace am {

/// Serializing read of the timestamp counter (RDTSCP ordering semantics on
/// x86; falls back to a monotonic clock elsewhere). Suitable for the *end*
/// of a timed region.
std::uint64_t rdtscp() noexcept;

/// Plain RDTSC (may execute early relative to preceding loads). Suitable for
/// the *start* of a timed region when combined with a fence.
std::uint64_t rdtsc() noexcept;

/// Pause/spin-wait hint (x86 `pause`). Reduces the power drawn by a spinning
/// hardware thread and frees pipeline resources for its SMT sibling, exactly
/// as the paper's spin loops do.
void cpu_relax() noexcept;

/// Full compiler barrier: prevents the optimizer from hoisting or sinking
/// memory operations across a measurement boundary.
inline void compiler_barrier() noexcept { asm volatile("" ::: "memory"); }

/// Defeats dead-code elimination of a computed value.
template <typename T>
inline void do_not_optimize(T const& value) noexcept {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Estimated TSC frequency in Hz, measured once against the steady clock
/// (~10 ms calibration on first call, cached afterwards).
double tsc_frequency_hz();

/// Converts a tick delta to nanoseconds using the calibrated frequency.
double ticks_to_ns(std::uint64_t ticks);

}  // namespace am
