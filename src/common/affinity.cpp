#include "common/affinity.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include <thread>

namespace am {

bool pin_current_thread(int os_cpu_id) noexcept {
#ifdef __linux__
  if (os_cpu_id < 0 || os_cpu_id >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(os_cpu_id, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)os_cpu_id;
  return false;
#endif
}

bool unpin_current_thread() noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned i = 0; i < n && i < CPU_SETSIZE; ++i) CPU_SET(i, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

int current_cpu() noexcept {
#ifdef __linux__
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace am
