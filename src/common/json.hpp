// Dependency-free JSON support for the observability subsystem.
//
// JsonWriter is a streaming emitter: it never builds an in-memory document,
// so trace sinks can write hundreds of thousands of events without
// allocating more than the output stream's buffer. JsonValue is a small
// recursive-descent parser used by the round-trip tests and by tools that
// read run reports back (it is not meant to be a fast general-purpose
// parser; reports and traces are the only inputs it sees).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace am {

/// Escapes @p s per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Streaming JSON emitter. Scopes (object/array) are explicit; the writer
/// tracks where commas are needed. Doubles that are not finite are emitted
/// as null (JSON has no NaN/Inf), which the report readers treat as "not
/// measured".
class JsonWriter {
 public:
  /// @param pretty adds newlines + two-space indentation; compact otherwise.
  explicit JsonWriter(std::ostream& os, bool pretty = false);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  JsonWriter& kv_null(std::string_view k) {
    key(k);
    return null();
  }

  /// Current nesting depth (0 at top level) — handy for asserting balance.
  int depth() const noexcept { return static_cast<int>(stack_.size()); }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void comma_and_indent(bool is_key);
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  ///< per scope: something already emitted
  bool expecting_value_ = false; ///< a key was written, value pending
};

/// Parsed JSON document node. Numbers are stored as double (adequate for
/// the counters in run reports: exact up to 2^53).
class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses @p text. Returns nullopt and fills @p error (when given) on
  /// malformed input or trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const noexcept {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Array element; nullptr when out of range or not an array.
  const JsonValue* at(std::size_t i) const noexcept;
  std::size_t size() const noexcept {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace am
