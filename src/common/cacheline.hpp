// Cache-line geometry constants and alignment helpers.
//
// Everything in this project that touches shared memory is laid out in units
// of cache lines: the studied atomic primitives operate on a cache-line
// granularity as far as the coherence protocol is concerned, and false
// sharing would corrupt every measurement.
#pragma once

#include <cstddef>
#include <new>

namespace am {

/// Size of one coherence granule. 64 bytes on every x86 part the paper
/// studies (Xeon E5 and Xeon Phi KNL both use 64-byte lines).
inline constexpr std::size_t kCacheLineSize = 64;

/// Alignment used to keep two logically distinct objects from ever sharing a
/// line. Twice the line size guards against adjacent-line (spatial) prefetch
/// pairing, which on Intel parts can drag the neighbouring line along.
inline constexpr std::size_t kNoFalseSharingAlign = 2 * kCacheLineSize;

/// Rounds @p bytes up to a whole number of cache lines.
constexpr std::size_t round_up_to_line(std::size_t bytes) noexcept {
  return (bytes + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
}

/// A value of type T alone on its own (pair of) cache line(s).
///
/// Used for per-thread counters and for the shared cells the primitives
/// hammer on, so that contention is exactly what the experiment configures
/// and nothing else.
template <typename T>
struct alignas(kNoFalseSharingAlign) Padded {
  T value{};

  constexpr Padded() = default;
  constexpr explicit Padded(const T& v) : value(v) {}

  constexpr T& operator*() noexcept { return value; }
  constexpr const T& operator*() const noexcept { return value; }
  constexpr T* operator->() noexcept { return &value; }
  constexpr const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(Padded<char>) == kNoFalseSharingAlign);
static_assert(alignof(Padded<char>) == kNoFalseSharingAlign);

}  // namespace am
