// Statistics toolkit used throughout the measurement engine and the model:
// summary statistics with confidence intervals, latency histograms,
// fairness indices (the paper reports fairness as one of its four metrics),
// and small-scale least-squares fitting used by model calibration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace am {

/// Five-number-style summary of a sample, plus moments and a normal-theory
/// confidence interval for the mean.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Half-width of the 95% confidence interval for the mean
  /// (1.96 * stddev / sqrt(n); 0 for n < 2).
  double ci95_halfwidth() const noexcept;
};

/// Computes a Summary over @p sample. Does not need the input sorted.
Summary summarize(std::span<const double> sample);

/// Linear-interpolated percentile (q in [0,100]) of @p sample.
/// The input is copied and sorted internally.
double percentile(std::span<const double> sample, double q);

/// Jain's fairness index over per-thread shares x_i:
///   J = (sum x_i)^2 / (n * sum x_i^2), in (0, 1]; 1 == perfectly fair.
/// This is the fairness metric used for the paper's fairness figures.
double jain_fairness(std::span<const double> shares);

/// min(x)/max(x) over per-thread shares — a second, stricter fairness view:
/// 1 means every thread completed the same number of operations.
double min_max_ratio(std::span<const double> shares);

/// Coefficient of variation (stddev / mean); 0 when mean == 0.
double coefficient_of_variation(std::span<const double> sample);

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log-spaced histogram for latency samples. Buckets grow geometrically so a
/// single histogram spans L1-hit latencies (~tens of cycles) through
/// cross-socket bounce storms (~tens of thousands of cycles).
class LogHistogram {
 public:
  /// @param lo       lower edge of the first bucket (> 0)
  /// @param hi       upper edge of the last regular bucket
  /// @param per_decade number of buckets per decade (resolution)
  LogHistogram(double lo, double hi, int per_decade = 16);

  void add(double value) noexcept;
  void merge(const LogHistogram& other);

  std::uint64_t total_count() const noexcept { return total_; }
  double value_at_percentile(double q) const;
  double observed_min() const noexcept { return min_seen_; }
  double observed_max() const noexcept { return max_seen_; }
  double mean() const noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Geometric midpoint of bucket @p i (representative value).
  double bucket_mid(std::size_t i) const;

 private:
  std::size_t index_for(double value) const noexcept;

  double lo_;
  double log_lo_;
  double inv_log_step_;
  double log_step_;
  // Memo of recent bucket lookups: latency streams draw from a handful of
  // repeating values (an uncontended op completes in the same cycle count
  // every time; a sharded group alternates between a few transfer
  // distances), and index_for() pays a log10 per miss. Four slots with
  // round-robin replacement cover the alternating patterns a single-entry
  // memo thrashes on. Initialised to a consistent pair: index_for(-1.0) is
  // the underflow bucket.
  double memo_value_[4] = {-1.0, -1.0, -1.0, -1.0};
  std::uint32_t memo_index_[4] = {0, 0, 0, 0};
  std::uint32_t memo_pos_ = 0;
  std::vector<std::uint64_t> counts_;  // [underflow, regular..., overflow]
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

// ---------------------------------------------------------------------------
// Least squares (model calibration)
// ---------------------------------------------------------------------------

/// Result of an ordinary-least-squares fit y ~ X * beta.
struct LeastSquaresFit {
  std::vector<double> coefficients;
  double r_squared = 0.0;
  bool ok = false;  ///< false when the normal equations were singular
};

/// Solves min_beta ||X beta - y||_2 via normal equations with Gaussian
/// elimination and partial pivoting. Suitable for the handful of parameters
/// model calibration needs (<< 10); not a general numerical library.
///
/// @param rows  each element is one observation's regressor vector; all rows
///              must have equal length
/// @param y     observations, y.size() == rows.size()
LeastSquaresFit least_squares(const std::vector<std::vector<double>>& rows,
                              std::span<const double> y);

/// Simple linear regression y = a + b*x. Returns {a, b, r^2} packed in a fit
/// with coefficients = {a, b}.
LeastSquaresFit linear_regression(std::span<const double> x,
                                  std::span<const double> y);

// ---------------------------------------------------------------------------
// Error metrics (model validation)
// ---------------------------------------------------------------------------

/// Mean absolute percentage error between prediction and reference,
/// skipping reference values of 0. Returned as a fraction (0.1 == 10%).
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Largest absolute relative error over the grid (fraction).
double max_relative_error(std::span<const double> predicted,
                          std::span<const double> actual);

/// Geometric mean of a positive sample (0 if any element <= 0 or empty).
double geometric_mean(std::span<const double> sample);

}  // namespace am
