#include "bench_core/report.hpp"

#include <cstddef>
#include <fstream>
#include <ostream>

#include "atomics/primitives.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "common/topology.hpp"
#include "sim/types.hpp"

namespace am::bench {

namespace {

constexpr const char* kSchema = "am-run-report/1";

void write_by_prim(JsonWriter& w, std::string_view key,
                   const std::array<std::uint64_t, 7>& counts) {
  // Emit only the primitives that actually ran; an all-zero map means the
  // backend/workload did not distinguish primitives.
  w.key(key).begin_object();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    w.kv(to_string(static_cast<Primitive>(i)), counts[i]);
  }
  w.end_object();
}

void write_supply(JsonWriter& w, std::string_view key,
                  const std::array<std::uint64_t, 4>& by_class) {
  w.key(key).begin_object();
  for (int s = 0; s < sim::kSupplyClasses; ++s) {
    w.kv(sim::to_string(static_cast<sim::Supply>(s)),
         by_class[static_cast<std::size_t>(s)]);
  }
  w.end_object();
}

void write_workload(JsonWriter& w, const WorkloadConfig& c) {
  w.key("workload").begin_object();
  w.kv("prim", to_string(c.prim));
  w.kv("mode", to_string(c.mode));
  w.kv("threads", c.threads);
  w.kv("work", c.work);
  w.kv("work_jitter", c.work_jitter);
  switch (c.mode) {
    case WorkloadMode::kZipf:
      w.kv("zipf_lines", std::uint64_t{c.zipf_lines});
      w.kv("zipf_s", c.zipf_s);
      break;
    case WorkloadMode::kMixedReadWrite:
      w.kv("write_fraction", c.write_fraction);
      break;
    case WorkloadMode::kSharded:
      w.kv("shards", c.shards);
      break;
    case WorkloadMode::kPrivateWalk:
      w.kv("lines_per_thread", c.lines_per_thread);
      break;
    default:
      break;
  }
  w.kv("seed", c.seed);
  w.kv("pin_order",
       c.pin_order == PinOrder::kScatter ? "scatter" : "compact");
  w.kv("describe", c.describe());
  w.end_object();
}

void write_threads(JsonWriter& w, const MeasuredRun& r) {
  w.key("threads").begin_array();
  for (const auto& t : r.threads) {
    w.begin_object();
    w.kv("ops", t.ops);
    w.kv("successes", t.successes);
    w.kv("failures", t.failures);
    w.kv("attempts", t.attempts);
    w.kv("mean_latency_cycles", t.mean_latency_cycles);
    if (t.latency_tail_valid) {
      w.kv("p99_latency_cycles", t.p99_latency_cycles);
    } else {
      w.kv_null("p99_latency_cycles");
    }
    write_by_prim(w, "ops_by_prim", t.ops_by_prim);
    write_by_prim(w, "successes_by_prim", t.successes_by_prim);
    w.end_object();
  }
  w.end_array();
}

void write_hot_lines(JsonWriter& w, const MeasuredRun& r) {
  w.key("hot_lines").begin_array();
  for (const auto& h : r.hot_lines) {
    w.begin_object();
    w.kv("line", h.line);
    w.kv("accesses", h.accesses);
    w.kv("acquisitions", h.acquisitions);
    w.kv("invalidations", h.invalidations);
    w.kv("mean_queue_depth", h.mean_queue_depth);
    w.kv("max_queue_depth", h.max_queue_depth);
    w.kv("mean_hold_cycles", h.mean_hold_cycles);
    write_supply(w, "supply", h.supply);
    w.end_object();
  }
  w.end_array();
}

void write_epochs(JsonWriter& w, const MeasuredRun& r) {
  w.kv("epoch_cycles", r.epoch_cycles);
  w.key("epochs").begin_array();
  for (const auto& e : r.epochs) {
    w.begin_object();
    w.kv("start_cycle", e.start_cycle);
    w.kv("ops", e.ops);
    w.kv("attempts", e.attempts);
    w.kv("throughput_ops_per_kcycle", e.throughput_ops_per_kcycle);
    w.kv("wait_fraction", e.wait_fraction);
    w.kv("outstanding_max", e.outstanding_max);
    w.end_object();
  }
  w.end_array();
}

void write_run(JsonWriter& w, const RecordedRun& rec) {
  const MeasuredRun& r = rec.run;
  w.begin_object();
  write_workload(w, rec.workload);
  w.kv("backend", r.backend);
  w.kv("machine", r.machine);
  w.kv("duration_cycles", r.duration_cycles);
  w.kv("freq_ghz", r.freq_ghz);

  w.key("totals").begin_object();
  w.kv("ops", r.total_ops());
  w.kv("successes", r.total_successes());
  w.kv("attempts", r.total_attempts());
  w.kv("throughput_ops_per_kcycle", r.throughput_ops_per_kcycle());
  w.kv("throughput_mops", r.throughput_mops());
  w.kv("mean_latency_cycles", r.mean_latency_cycles());
  w.kv("success_rate", r.success_rate());
  w.kv("attempts_per_op", r.attempts_per_op());
  w.kv("jain_fairness", r.jain_fairness());
  w.kv("min_max_ratio", r.min_max_ratio());
  w.end_object();

  write_threads(w, r);

  w.key("coherence").begin_object();
  write_supply(w, "transfers", r.transfers);
  w.kv("invalidations", r.invalidations);
  w.kv("memory_fetches", r.memory_fetches);
  w.kv("evictions", r.evictions);
  w.end_object();

  w.key("energy").begin_object();
  w.kv("valid", r.energy_valid);
  if (r.energy_valid) {
    w.kv("package_j", r.energy_package_j);
    w.kv("dram_j", r.energy_dram_j);
    w.kv("per_op_nj", r.energy_per_op_nj());
  } else {
    w.kv_null("package_j");
    w.kv_null("dram_j");
    w.kv_null("per_op_nj");
  }
  w.end_object();

  w.key("perf").begin_object();
  w.kv("valid", r.perf_valid);
  if (r.perf_valid) {
    w.kv("cycles", r.perf_cycles);
    w.kv("instructions", r.perf_instructions);
  } else {
    w.kv_null("cycles");
    w.kv_null("instructions");
  }
  w.end_object();

  write_hot_lines(w, r);
  write_epochs(w, r);
  w.end_object();
}

}  // namespace

void write_run_report(std::ostream& os, const ReportMeta& meta,
                      const Table* table, const std::vector<RecordedRun>& runs,
                      const SweepReport* sweep) {
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.kv("schema", kSchema);

  w.key("meta").begin_object();
  w.kv("bench", meta.bench);
  w.kv("title", meta.title);
  w.kv("backend", meta.backend);
  w.kv("machine", meta.machine);
  w.kv("command", meta.command);
  w.kv("wall_time_s", meta.wall_time_s);
  w.end_object();

  if (table != nullptr) {
    w.key("table").begin_object();
    w.key("columns").begin_array();
    for (const auto& h : table->header()) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (std::size_t i = 0; i < table->row_count(); ++i) {
      w.begin_array();
      for (const auto& cell : table->row(i)) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }

  w.key("runs").begin_array();
  for (const auto& rec : runs) write_run(w, rec);
  w.end_array();

  if (sweep != nullptr) {
    w.key("sweep").begin_object();
    w.kv("points", std::uint64_t{sweep->points});
    w.kv("ok", std::uint64_t{sweep->ok});
    w.kv("failed", std::uint64_t{sweep->failures.size()});
    w.kv("cache_io_errors", sweep->cache_io_errors);
    w.kv("quarantined_files", std::uint64_t{sweep->quarantined_files});
    w.key("failed_points").begin_array();
    for (const auto& f : sweep->failures) {
      w.begin_object();
      w.kv("index", std::uint64_t{f.index});
      w.kv("status", f.status);
      w.kv("seed", f.seed);
      w.kv("message", f.message);
      w.kv("replay", f.replay);
      w.kv("workload", f.workload);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
  os << "\n";
}

bool write_run_report_file(const std::string& path, const ReportMeta& meta,
                           const Table* table,
                           const std::vector<RecordedRun>& runs,
                           const SweepReport* sweep) {
  std::ofstream os(path);
  if (!os) return false;
  write_run_report(os, meta, table, runs, sweep);
  return os.good();
}

}  // namespace am::bench
