// Workload descriptions shared by both execution backends.
//
// A WorkloadConfig is a complete, backend-independent description of one
// measurement point in the paper's evaluation: which primitive, how many
// threads, how much local work between operations, and which sharing
// pattern (the paper's high- and low-contention settings, plus skewed and
// read-mostly mixes used by the extension experiments).
#pragma once

#include <cstdint>
#include <string>

#include "atomics/primitives.hpp"
#include "common/topology.hpp"

namespace am::bench {

using Cycles = std::uint64_t;

enum class WorkloadMode : std::uint8_t {
  kHighContention,  ///< all threads hammer one shared line
  kLowContention,   ///< each thread owns a private line
  kZipf,            ///< lines drawn from a Zipf distribution (skewed sharing)
  kMixedReadWrite,  ///< one shared line, LOADs mixed with a write primitive
  kSharded,         ///< thread t hits shard (t % shards) — sharded counter
  kPrivateWalk,     ///< thread t cycles through its own working set
};

const char* to_string(WorkloadMode m) noexcept;

struct WorkloadConfig {
  WorkloadMode mode = WorkloadMode::kHighContention;
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  Cycles work = 0;  ///< local work between ops, in cycles (approximate on hw)
  /// Randomizes work uniformly in [work*(1-j), work*(1+j)] — randomized
  /// backoff; 0 keeps work deterministic (lock-step phases on the sim).
  double work_jitter = 0.0;

  // kZipf parameters
  std::size_t zipf_lines = 64;
  double zipf_s = 0.99;

  // kMixedReadWrite parameters
  double write_fraction = 0.1;

  // kSharded parameters
  std::uint32_t shards = 8;

  // kPrivateWalk parameters
  std::uint64_t lines_per_thread = 16;

  std::uint64_t seed = 1;
  PinOrder pin_order = PinOrder::kCompact;  ///< hardware backend placement

  std::string describe() const;
};

}  // namespace am::bench
