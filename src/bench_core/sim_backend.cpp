#include "bench_core/sim_backend.hpp"

#include <stdexcept>

#include "sim/program.hpp"

namespace am::bench {

SimBackend::SimBackend(sim::MachineConfig config, SimBackendOptions options,
                       std::uint64_t seed)
    : config_(std::move(config)),
      options_(options),
      machine_(std::make_unique<sim::Machine>(config_, seed)),
      seed_(seed) {}

std::uint32_t SimBackend::max_threads() const {
  return machine_->core_count();
}

bool SimBackend::set_trace_file(const std::string& path) {
  if (path.empty()) {
    trace_file_.reset();
    return true;
  }
  trace_file_ = std::make_unique<obs::ChromeTraceFileSink>(path);
  if (!trace_file_->ok()) {
    trace_file_.reset();
    return false;
  }
  return true;
}

MeasuredRun to_measured_run(const sim::RunStats& stats,
                            const std::string& machine) {
  MeasuredRun r;
  r.backend = "sim";
  r.machine = machine;
  r.duration_cycles = static_cast<double>(stats.measured_cycles);
  r.freq_ghz = stats.freq_ghz;
  r.threads.reserve(stats.threads.size());
  for (const auto& t : stats.threads) {
    ThreadResult tr;
    tr.ops = t.ops;
    tr.successes = t.successes;
    tr.failures = t.failures;
    tr.attempts = t.attempts;
    tr.mean_latency_cycles = t.mean_latency();
    tr.latency_tail_valid = t.latency_hist.total_count() > 0;
    tr.p99_latency_cycles =
        tr.latency_tail_valid ? t.latency_hist.value_at_percentile(99.0) : 0.0;
    tr.ops_by_prim = t.ops_by_prim;
    tr.successes_by_prim = t.successes_by_prim;
    r.threads.push_back(tr);
  }
  r.transfers = stats.transfers;
  r.invalidations = stats.invalidations;
  r.memory_fetches = stats.memory_fetches;
  r.evictions = stats.evictions;
  r.hot_lines.reserve(stats.line_profiles.size());
  for (const auto& p : stats.line_profiles) {
    LineHotness h;
    h.line = p.line;
    h.accesses = p.accesses;
    h.acquisitions = p.acquisitions;
    h.invalidations = p.invalidations;
    h.mean_queue_depth = p.mean_queue_depth();
    h.max_queue_depth = p.queue_depth_max;
    h.mean_hold_cycles = p.mean_hold_cycles();
    h.supply = p.supply;
    r.hot_lines.push_back(h);
  }
  r.epoch_cycles = static_cast<double>(stats.epoch_cycles);
  r.epochs.reserve(stats.epochs.size());
  const auto cores = static_cast<std::uint32_t>(stats.threads.size());
  for (const auto& e : stats.epochs) {
    EpochPoint p;
    p.start_cycle = static_cast<double>(e.start);
    p.ops = e.ops;
    p.attempts = e.attempts;
    p.throughput_ops_per_kcycle =
        e.throughput_ops_per_kcycle(stats.epoch_cycles);
    p.wait_fraction = e.wait_fraction(stats.epoch_cycles, cores);
    p.outstanding_max = e.outstanding_max;
    r.epochs.push_back(p);
  }
  r.energy_valid = true;
  r.energy_package_j = stats.energy.package_j();
  r.energy_dram_j = stats.energy.dram_j();
  return r;
}

MeasuredRun SimBackend::do_run(const WorkloadConfig& config) {
  if (config.threads > max_threads()) {
    throw std::invalid_argument("SimBackend: workload needs " +
                                std::to_string(config.threads) +
                                " threads, machine has " +
                                std::to_string(max_threads()) + " cores");
  }
  // A fresh machine per run keeps runs independent and reproducible;
  // the per-workload seed keeps stochastic programs deterministic. The
  // workload's pin order maps to a placement permutation: scatter
  // interleaves the machine's halves so consecutive workload threads sit
  // on opposite sockets / mesh halves.
  sim::MachineConfig run_config = config_;
  run_config.placement = sim::placement_for(
      config_.core_count(), config.pin_order == PinOrder::kScatter);
  machine_ = std::make_unique<sim::Machine>(run_config, seed_ ^ config.seed);
  machine_->set_line_profiling(profile_lines_);
  machine_->set_epoch_cycles(epoch_cycles_);
  machine_->set_watchdog(options_.watchdog);
  if (sink_ != nullptr) {
    machine_->set_sink(sink_);
  } else if (trace_file_ != nullptr) {
    machine_->set_sink(trace_file_.get());
  }

  std::unique_ptr<sim::ThreadProgram> program;
  switch (config.mode) {
    case WorkloadMode::kHighContention:
      program = std::make_unique<sim::HighContentionProgram>(
          config.prim, config.work, 0, config.work_jitter);
      break;
    case WorkloadMode::kLowContention:
      program = std::make_unique<sim::LowContentionProgram>(config.prim,
                                                            config.work);
      break;
    case WorkloadMode::kZipf:
      program = std::make_unique<sim::ZipfSharingProgram>(
          config.prim, config.work, config.zipf_lines, config.zipf_s);
      break;
    case WorkloadMode::kMixedReadWrite:
      program = std::make_unique<sim::MixedReadWriteProgram>(
          config.prim, config.write_fraction, config.work);
      break;
    case WorkloadMode::kSharded: {
      // Contiguous groups of ceil(threads/shards) cores per shard keep each
      // shard's traffic topologically local.
      const std::uint32_t shards = std::max(1u, config.shards);
      const std::uint32_t group =
          (config.threads + shards - 1) / shards;
      program = std::make_unique<sim::ShardedProgram>(config.prim, config.work,
                                                      group);
      break;
    }
    case WorkloadMode::kPrivateWalk:
      program = std::make_unique<sim::PrivateWalkProgram>(
          config.prim, config.work, config.lines_per_thread);
      break;
  }

  const sim::RunStats stats = machine_->run(
      *program, config.threads, options_.warmup_cycles, options_.measure_cycles);
  return to_measured_run(stats, config_.name);
}

}  // namespace am::bench
