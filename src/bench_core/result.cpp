#include "bench_core/result.hpp"

#include "common/stats.hpp"

namespace am::bench {

std::uint64_t MeasuredRun::total_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.ops;
  return n;
}

std::uint64_t MeasuredRun::total_successes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.successes;
  return n;
}

std::uint64_t MeasuredRun::total_attempts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.attempts;
  return n;
}

double MeasuredRun::throughput_ops_per_kcycle() const noexcept {
  if (duration_cycles <= 0.0) return 0.0;
  return static_cast<double>(total_ops()) * 1000.0 / duration_cycles;
}

double MeasuredRun::throughput_mops() const noexcept {
  if (duration_cycles <= 0.0) return 0.0;
  const double ops_per_cycle =
      static_cast<double>(total_ops()) / duration_cycles;
  return ops_per_cycle * freq_ghz * 1e9 / 1e6;
}

double MeasuredRun::mean_latency_cycles() const noexcept {
  double weighted = 0.0;
  std::uint64_t n = 0;
  for (const auto& t : threads) {
    weighted += t.mean_latency_cycles * static_cast<double>(t.ops);
    n += t.ops;
  }
  return n == 0 ? 0.0 : weighted / static_cast<double>(n);
}

double MeasuredRun::success_rate() const noexcept {
  const std::uint64_t ops = total_ops();
  if (ops == 0) return 1.0;
  return static_cast<double>(total_successes()) / static_cast<double>(ops);
}

double MeasuredRun::attempts_per_op() const noexcept {
  const std::uint64_t ops = total_ops();
  if (ops == 0) return 1.0;
  return static_cast<double>(total_attempts()) / static_cast<double>(ops);
}

namespace {
std::vector<double> shares_of(const std::vector<ThreadResult>& threads) {
  std::vector<double> s;
  s.reserve(threads.size());
  for (const auto& t : threads) s.push_back(static_cast<double>(t.ops));
  return s;
}
}  // namespace

double MeasuredRun::jain_fairness() const {
  const auto s = shares_of(threads);
  return am::jain_fairness(s);
}

double MeasuredRun::min_max_ratio() const {
  const auto s = shares_of(threads);
  return am::min_max_ratio(s);
}

double MeasuredRun::energy_per_op_nj() const noexcept {
  const std::uint64_t ops = total_ops();
  if (!energy_valid || ops == 0) return 0.0;
  return (energy_package_j + energy_dram_j) * 1e9 / static_cast<double>(ops);
}

}  // namespace am::bench
