// SimBackend: runs workloads on the discrete-event coherence machine.
#pragma once

#include <memory>
#include <string>

#include "bench_core/backend.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::bench {

struct SimBackendOptions {
  sim::Cycles warmup_cycles = 50'000;
  sim::Cycles measure_cycles = 250'000;
  /// Per-run watchdog. Deliberately NOT part of cache_identity(): the
  /// watchdog never changes a result, only whether a run is allowed to
  /// finish, so cached points stay valid across budget changes.
  sim::WatchdogConfig watchdog{};
};

/// The cache_identity() string a SimBackend built from @p config/@p options
/// would report, without constructing one. Lets the fleet's stale-serve
/// path address the shared disk cache for a simulate request while the
/// owning worker (which would normally build the backend) is down.
inline std::string sim_backend_cache_identity(const sim::MachineConfig& config,
                                              const SimBackendOptions& options) {
  return "sim{" + config.fingerprint() +
         "};warmup=" + std::to_string(options.warmup_cycles) +
         ";measure=" + std::to_string(options.measure_cycles);
}

class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(sim::MachineConfig config, SimBackendOptions options = {},
                      std::uint64_t seed = 1);

  std::string name() const override { return "sim"; }
  std::string machine_name() const override { return config_.name; }
  std::uint32_t max_threads() const override;
  double freq_ghz() const override { return config_.freq_ghz; }
  /// Machine fingerprint + measurement windows: everything besides the
  /// workload and seed that determines a simulated result.
  std::string cache_identity() const override {
    return sim_backend_cache_identity(config_, options_);
  }
  /// Seed this backend XORs into every run's machine seed.
  std::uint64_t seed() const noexcept { return seed_; }

  /// Direct access for experiments that prime line states (Table 2).
  sim::Machine& machine() { return *machine_; }
  const sim::MachineConfig& machine_config() const { return config_; }
  const SimBackendOptions& options() const { return options_; }

  // --- observability configuration -----------------------------------------
  // Each do_run() builds a fresh machine, so these are stored here and
  // re-applied per run; they also enrich the MeasuredRun (hot_lines, epochs).

  /// Collect per-line contention profiles into MeasuredRun::hot_lines.
  void set_line_profiling(bool on) { profile_lines_ = on; }
  /// Sample the run as an epoch time-series (MeasuredRun::epochs); 0 = off.
  void set_epoch_cycles(sim::Cycles window) { epoch_cycles_ = window; }
  /// Attach an external trace sink (not owned; nullptr detaches). Takes
  /// precedence over set_trace_file().
  void set_sink(obs::TraceSink* sink) { sink_ = sink; }
  /// Stream Chrome trace-event JSON for every run to @p path (empty string
  /// disables). Returns false when the file cannot be opened.
  bool set_trace_file(const std::string& path);
  /// Override the watchdog for subsequent runs (see SimBackendOptions).
  void set_watchdog(sim::WatchdogConfig wd) { options_.watchdog = wd; }

 private:
  MeasuredRun do_run(const WorkloadConfig& config) override;

  sim::MachineConfig config_;
  SimBackendOptions options_;
  std::unique_ptr<sim::Machine> machine_;
  std::uint64_t seed_;

  bool profile_lines_ = false;
  sim::Cycles epoch_cycles_ = 0;
  obs::TraceSink* sink_ = nullptr;
  std::unique_ptr<obs::ChromeTraceFileSink> trace_file_;
};

/// Converts simulator run stats into the backend-independent record.
MeasuredRun to_measured_run(const sim::RunStats& stats,
                            const std::string& machine);

}  // namespace am::bench
