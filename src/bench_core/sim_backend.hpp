// SimBackend: runs workloads on the discrete-event coherence machine.
#pragma once

#include <memory>

#include "bench_core/backend.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::bench {

struct SimBackendOptions {
  sim::Cycles warmup_cycles = 50'000;
  sim::Cycles measure_cycles = 250'000;
};

class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(sim::MachineConfig config, SimBackendOptions options = {},
                      std::uint64_t seed = 1);

  MeasuredRun run(const WorkloadConfig& config) override;
  std::string name() const override { return "sim"; }
  std::string machine_name() const override { return config_.name; }
  std::uint32_t max_threads() const override;
  double freq_ghz() const override { return config_.freq_ghz; }

  /// Direct access for experiments that prime line states (Table 2).
  sim::Machine& machine() { return *machine_; }
  const sim::MachineConfig& machine_config() const { return config_; }
  const SimBackendOptions& options() const { return options_; }

 private:
  sim::MachineConfig config_;
  SimBackendOptions options_;
  std::unique_ptr<sim::Machine> machine_;
  std::uint64_t seed_;
};

/// Converts simulator run stats into the backend-independent record.
MeasuredRun to_measured_run(const sim::RunStats& stats,
                            const std::string& machine);

}  // namespace am::bench
