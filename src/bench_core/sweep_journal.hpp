// Crash-safe sweep infrastructure: the completed-point journal and the
// fault-injectable cache I/O layer.
//
// The journal (`am-sweep-journal/1`) records every completed sweep point —
// keyed by sweep_cache_key, carrying the full bit-exact MeasuredRun — in an
// append-only, fsync'd file. Rerunning the same command after a SIGKILL or
// SIGINT skips the recorded points even with the result cache disabled, and
// the rerun's report is byte-identical to an uninterrupted run. A torn tail
// (crash mid-append) is tolerated on load and compacted away by an
// atomic-rename rotation.
//
// All cache/journal file I/O funnels through the helpers here so that
// (a) transient errors retry with bounded exponential backoff before the
// sweep degrades to uncached execution, and (b) tests can inject torn
// writes, ENOSPC and EIO through sweep::IoFaults to prove every failure
// path without a faulty disk.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "bench_core/result.hpp"

namespace am::bench::sweep {

// --- fault injection ---------------------------------------------------------

/// Test hook injecting I/O failures into the sweep cache/journal layer.
/// Each counter is consumed once per matching operation; 0 injects nothing,
/// a negative value injects on every operation.
struct IoFaults {
  std::atomic<int> read_eio{0};      ///< file reads fail with EIO
  std::atomic<int> write_enospc{0};  ///< file writes fail with ENOSPC
  std::atomic<int> torn_write{0};    ///< write half the bytes, then fail
  std::atomic<int> rename_eio{0};    ///< the atomic-rename publish fails
  /// When set, an injected *read* fault escalates to a failed point
  /// (PointStatus::kCacheError) instead of degrading to uncached execution —
  /// proves the cache_error outcome propagates end to end.
  std::atomic<bool> escalate_read{false};

  /// Consumes one injection from @p counter; true when the op must fail.
  static bool consume(std::atomic<int>& counter) noexcept;
};

/// Attaches @p faults to the sweep I/O layer (nullptr detaches). Not owned;
/// the caller keeps it alive for the duration. Test-only.
void set_io_faults(IoFaults* faults) noexcept;
IoFaults* io_faults() noexcept;

// --- retrying file I/O -------------------------------------------------------

enum class IoResult : std::uint8_t {
  kOk,
  kMissing,  ///< file does not exist (reads only)
  kError,    ///< failed after every retry
};

/// Retry schedule: attempt k sleeps kIoBackoffBaseMs << k before retrying.
inline constexpr int kIoAttempts = 3;
inline constexpr int kIoBackoffBaseMs = 1;

/// Reads the whole file into @p out, retrying transient errors with bounded
/// exponential backoff.
IoResult read_file_with_retry(const std::string& path, std::string& out);

/// Writes @p bytes to @p path via a unique temp file and atomic rename, with
/// the same retry policy. On failure the temp file is removed and the
/// destination left untouched.
IoResult write_file_atomic(const std::string& path, const std::string& bytes);

/// Moves an unreadable/mismatched cache file into `<cache_dir>/quarantine/`
/// for postmortem instead of silently overwriting it. Returns false when
/// the move itself failed (the file is removed as a last resort so the
/// sweep cannot livelock re-reading the same corrupt bytes).
bool quarantine_file(const std::string& cache_dir, const std::string& path);

// --- the journal -------------------------------------------------------------

inline constexpr const char* kJournalVersion = "am-sweep-journal/1";

/// Append-only completed-point journal. Thread-safe: pool workers append
/// concurrently. I/O failures never throw — they count into io_errors() and
/// the sweep continues without the crashed-run safety net.
class SweepJournal {
 public:
  SweepJournal() = default;
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Opens (creating if absent) the journal at @p path and loads every
  /// complete entry. A torn tail or corrupt line stops the load there and
  /// the valid prefix is rewritten in place via atomic rename; a file that
  /// is not a journal at all is set aside as `<path>.corrupt`. Returns
  /// false when the file cannot be opened for appending.
  bool open(const std::string& path);

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  /// Completed run recorded under @p key, if any.
  std::optional<MeasuredRun> lookup(const std::string& key) const;

  /// Appends one completed point and fsyncs. Returns false on I/O failure
  /// (counted in io_errors(); the sweep continues unjournaled).
  bool append(const std::string& key, const MeasuredRun& run);

  /// Entries loaded from disk at open().
  std::size_t loaded_entries() const;
  /// Append/load failures survived so far.
  std::uint64_t io_errors() const;

 private:
  bool write_all(int fd, const char* data, std::size_t len);

  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  std::unordered_map<std::string, std::string> entries_;  ///< key -> line
  std::size_t loaded_ = 0;
  std::uint64_t io_errors_ = 0;
};

}  // namespace am::bench::sweep
