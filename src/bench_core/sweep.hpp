// SweepEngine: bounded-parallel execution of a bench binary's parameter grid.
//
// Every bench sweeps a (workload x thread-count x machine) grid in which each
// simulated point builds a fresh sim::Machine — the points are embarrassingly
// parallel, and on the paper's grids serial execution is the dominant
// wall-clock cost. The engine runs submitted points on a bounded host thread
// pool and merges their results back into the process-wide run log in
// *submission* order, so tables, am-run-report/1 JSON and plots are
// byte-identical regardless of --jobs.
//
// Determinism contract:
//  * Point i runs on an independent backend seeded with
//    point_seed(base_seed, i) (a splitmix64-style hash), so any point is
//    replayable in isolation: build the same backend with that seed, run the
//    same workload, get the same MeasuredRun.
//  * Results surface in submission order (drain() + result(i)), never in
//    completion order.
//  * With a result cache attached (SweepOptions::cache_dir), already-computed
//    points are loaded from disk bit-exactly (doubles round-trip through
//    their bit patterns), so warm-cache reruns emit byte-identical reports
//    while simulating nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"

namespace am::bench {

/// Bump when simulator/backend semantics change in a way that invalidates
/// cached sweep results; the cache key includes it.
inline constexpr const char* kSweepCacheVersion = "am-sweep-cache/1";

/// splitmix64 finalizer — the statistically strong 64-bit mix used to derive
/// independent per-point seeds from (base_seed, point_index).
std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Seed of sweep point @p index under @p base_seed. Never returns 0 (some
/// PRNGs degenerate on an all-zero state).
std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// Validates the --jobs / --trace-out combination. A Chrome trace is one
/// ordered event stream, so a sweep that traces must run serially; an
/// explicit request for parallelism alongside a trace is a user error, not
/// something to silently downgrade. Returns an error message, or "" when
/// the combination is fine (@p jobs <= 1, or no trace requested).
std::string jobs_trace_conflict(std::int64_t jobs, bool trace_requested);

struct SweepOptions {
  /// Pool width. 0 = hardware_concurrency, 1 = serial (same seeds/results).
  unsigned jobs = 0;
  /// On-disk result cache directory; empty disables caching. Created on
  /// first use.
  std::string cache_dir;
  /// Base seed for per-point seed derivation (--base-seed).
  std::uint64_t base_seed = 1;
};

class SweepEngine {
 public:
  /// Builds the backend for one point. Called on pool threads; must be
  /// thread-safe (the usual factory just calls make_backend(spec, seed)).
  using BackendFactory =
      std::function<std::unique_ptr<ExecutionBackend>(std::uint64_t seed)>;

  /// A free-form unit of pooled work (multi-run procedures like model
  /// calibration). The task creates its own backend, attaches @p log as its
  /// run recorder, and runs; the engine merges @p log into the global run
  /// log in submission order at drain().
  using Task =
      std::function<void(std::uint64_t seed, std::vector<RecordedRun>& log)>;

  explicit SweepEngine(BackendFactory factory, SweepOptions options = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Enqueues one workload point; returns its index (also its seed index).
  std::size_t submit(const WorkloadConfig& config);
  /// Enqueues a free-form task (not cached); returns its index.
  std::size_t submit_task(Task task);

  /// Blocks until every submitted point has executed, then flushes their
  /// recorded runs into the process-wide run log in submission order.
  /// Rethrows the first point failure (by submission order), after flushing
  /// the points that preceded it. More points may be submitted afterwards.
  void drain();

  /// Measurement of workload point @p index; valid after drain().
  const MeasuredRun& result(std::size_t index) const;

  /// Points actually executed (cache misses + tasks) so far.
  std::size_t executed_points() const;
  /// Points served from the result cache so far.
  std::size_t cache_hits() const;
  /// Effective pool width.
  unsigned jobs() const noexcept { return jobs_; }
  std::uint64_t base_seed() const noexcept { return options_.base_seed; }

 private:
  struct Point;
  struct Impl;

  void worker_loop();
  void execute_point(Point& p);

  BackendFactory factory_;
  SweepOptions options_;
  unsigned jobs_;
  std::unique_ptr<Impl> impl_;
};

// --- cache plumbing (exposed for tests) -------------------------------------

/// Stable cache key for one point: hash of cache version, backend identity,
/// workload and seed. Empty when @p backend_identity is empty (uncacheable).
std::string sweep_cache_key(const std::string& backend_identity,
                            const WorkloadConfig& config, std::uint64_t seed);

/// Serializes @p run bit-exactly (doubles as IEEE-754 bit patterns).
std::string serialize_measured_run(const MeasuredRun& run,
                                   const std::string& key);

/// Parses serialize_measured_run() output; rejects documents whose embedded
/// key differs from @p key (hash collision / stale file).
std::optional<MeasuredRun> parse_measured_run(const std::string& text,
                                              const std::string& key);

}  // namespace am::bench
