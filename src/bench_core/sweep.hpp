// SweepEngine: bounded-parallel execution of a bench binary's parameter grid.
//
// Every bench sweeps a (workload x thread-count x machine) grid in which each
// simulated point builds a fresh sim::Machine — the points are embarrassingly
// parallel, and on the paper's grids serial execution is the dominant
// wall-clock cost. The engine runs submitted points on a bounded host thread
// pool and merges their results back into the process-wide run log in
// *submission* order, so tables, am-run-report/1 JSON and plots are
// byte-identical regardless of --jobs.
//
// Determinism contract:
//  * Point i runs on an independent backend seeded with
//    point_seed(base_seed, i) (a splitmix64-style hash), so any point is
//    replayable in isolation: build the same backend with that seed, run the
//    same workload, get the same MeasuredRun.
//  * Results surface in submission order (drain() + result(i)), never in
//    completion order.
//  * With a result cache attached (SweepOptions::cache_dir), already-computed
//    points are loaded from disk bit-exactly (doubles round-trip through
//    their bit patterns), so warm-cache reruns emit byte-identical reports
//    while simulating nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"

namespace am::bench {

/// Bump when simulator/backend semantics change in a way that invalidates
/// cached sweep results; the cache key includes it.
inline constexpr const char* kSweepCacheVersion = "am-sweep-cache/1";

/// splitmix64 finalizer — the statistically strong 64-bit mix used to derive
/// independent per-point seeds from (base_seed, point_index).
std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Seed of sweep point @p index under @p base_seed. Never returns 0 (some
/// PRNGs degenerate on an all-zero state).
std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// Validates the --jobs / --trace-out combination. A Chrome trace is one
/// ordered event stream, so a sweep that traces must run serially; an
/// explicit request for parallelism alongside a trace is a user error, not
/// something to silently downgrade. Returns an error message, or "" when
/// the combination is fine (@p jobs <= 1, or no trace requested).
std::string jobs_trace_conflict(std::int64_t jobs, bool trace_requested);

// --- per-point outcomes ------------------------------------------------------

/// Terminal state of one sweep point. A failed point never aborts the sweep:
/// it surfaces as a degraded table row and a failed_points report entry while
/// every other point completes normally.
enum class PointStatus : std::uint8_t {
  kOk,          ///< measured (or served from cache/journal)
  kTimeout,     ///< sim::PointTimeout — watchdog budget or livelock
  kSimError,    ///< simulator/backend/task threw
  kCacheError,  ///< cache I/O failure escalated (IoFaults::escalate_read)
  kCancelled,   ///< cancel requested (SIGINT) before the point started
  kSkipped,     ///< not this point (replay mode runs exactly one index)
};

const char* to_string(PointStatus s) noexcept;

/// Everything known about how one point ended.
struct PointOutcome {
  PointStatus status = PointStatus::kOk;
  std::string message;  ///< one-line failure description; empty when ok
  std::uint64_t seed = 0;
  bool from_cache = false;
  bool from_journal = false;
};

/// Report-facing record of a point that did not produce a measurement.
struct FailedPoint {
  std::size_t index = 0;
  PointStatus status = PointStatus::kSimError;
  std::string message;
  std::uint64_t seed = 0;
  bool is_task = false;
  WorkloadConfig config;  ///< meaningful only when !is_task
};

struct SweepOptions {
  /// Pool width. 0 = hardware_concurrency, 1 = serial (same seeds/results).
  unsigned jobs = 0;
  /// On-disk result cache directory; empty disables caching. Created on
  /// first use.
  std::string cache_dir;
  /// Base seed for per-point seed derivation (--base-seed).
  std::uint64_t base_seed = 1;
  /// Crash-safe completed-point journal (--sweep-journal); empty disables.
  /// See sweep_journal.hpp — a rerun after SIGKILL/SIGINT skips journaled
  /// points even with the result cache disabled.
  std::string journal_path;
  /// When >= 0, run exactly this submission index (serially, bypassing cache
  /// and journal) and mark every other point kSkipped — the replay command
  /// printed for failed points (--replay-point).
  std::int64_t replay_point = -1;
};

class SweepEngine {
 public:
  /// Builds the backend for one point. Called on pool threads; must be
  /// thread-safe (the usual factory just calls make_backend(spec, seed)).
  using BackendFactory =
      std::function<std::unique_ptr<ExecutionBackend>(std::uint64_t seed)>;

  /// A free-form unit of pooled work (multi-run procedures like model
  /// calibration). The task creates its own backend, attaches @p log as its
  /// run recorder, and runs; the engine merges @p log into the global run
  /// log in submission order at drain().
  using Task =
      std::function<void(std::uint64_t seed, std::vector<RecordedRun>& log)>;

  explicit SweepEngine(BackendFactory factory, SweepOptions options = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Enqueues one workload point; returns its index (also its seed index).
  std::size_t submit(const WorkloadConfig& config);
  /// Enqueues a free-form task (not cached); returns its index.
  std::size_t submit_task(Task task);

  /// Blocks until every submitted point has reached a terminal state, then
  /// flushes the recorded runs of the ok points into the process-wide run
  /// log in submission order. Never rethrows point failures — inspect
  /// outcome()/failed_points(). Emits a once-per-sweep stderr warning when
  /// cache/journal I/O errors degraded the sweep. More points may be
  /// submitted afterwards.
  void drain();

  /// Measurement of workload point @p index; valid after drain(). Throws
  /// std::logic_error for a failed point — the message carries the outcome
  /// and a --jobs=1 --replay-point=N replay hint. Prefer result_or_null()
  /// when degraded rows are acceptable.
  const MeasuredRun& result(std::size_t index) const;
  /// Like result(), but nullptr instead of throwing for failed/task points.
  const MeasuredRun* result_or_null(std::size_t index) const;
  /// How point @p index ended; valid after drain().
  PointOutcome outcome(std::size_t index) const;
  /// Every point that reached a non-ok, non-skipped terminal state, in
  /// submission order.
  std::vector<FailedPoint> failed_points() const;

  /// Points submitted so far.
  std::size_t submitted_points() const;
  /// Points that reached PointStatus::kOk so far.
  std::size_t ok_points() const;
  /// Points actually executed (cache misses + tasks) so far.
  std::size_t executed_points() const;
  /// Points served from the result cache so far.
  std::size_t cache_hits() const;
  /// Points served from the crash-recovery journal so far.
  std::size_t journal_hits() const;
  /// Cache/journal I/O failures survived so far (the sweep degraded to
  /// uncached/unjournaled execution instead of failing).
  std::uint64_t cache_io_errors() const;
  /// Corrupt or key-mismatched cache files moved to <cache_dir>/quarantine/.
  std::size_t quarantined_files() const;

  /// Process-wide cooperative cancel, async-signal-safe: a SIGINT handler
  /// calls request_cancel(); workers finish in-flight points, mark unstarted
  /// ones kCancelled, and drain() returns with partial results.
  static void request_cancel() noexcept;
  static bool cancel_requested() noexcept;
  static void clear_cancel() noexcept;  ///< test isolation
  /// Effective pool width.
  unsigned jobs() const noexcept { return jobs_; }
  std::uint64_t base_seed() const noexcept { return options_.base_seed; }

 private:
  struct Point;
  struct Impl;

  void worker_loop();
  void execute_point(Point& p);
  void record_in_journal(const std::string& key, const MeasuredRun& run);

  BackendFactory factory_;
  SweepOptions options_;
  unsigned jobs_;
  std::unique_ptr<Impl> impl_;
};

// --- cache plumbing (exposed for tests) -------------------------------------

/// The per-point seed a sweep derives for point @p index under
/// @p base_seed (splitmix64-chained). Exposed so out-of-process consumers
/// of the disk cache (the fleet's stale-serve path) can address entries a
/// SweepEngine wrote without running one.
std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t index) noexcept;

/// Stable cache key for one point: hash of cache version, backend identity,
/// workload and seed. Empty when @p backend_identity is empty (uncacheable).
std::string sweep_cache_key(const std::string& backend_identity,
                            const WorkloadConfig& config, std::uint64_t seed);

/// Serializes @p run bit-exactly (doubles as IEEE-754 bit patterns).
std::string serialize_measured_run(const MeasuredRun& run,
                                   const std::string& key);

/// Parses serialize_measured_run() output; rejects documents whose embedded
/// key differs from @p key (hash collision / stale file).
std::optional<MeasuredRun> parse_measured_run(const std::string& text,
                                              const std::string& key);

}  // namespace am::bench
