// HardwareBackend: runs workloads with real pinned threads over std::atomic.
//
// This is the paper's native methodology: N pinned threads execute the
// primitive in a timed epoch; per-op latencies are sampled with the TSC;
// energy comes from RAPL when the host exposes it. On hosts without enough
// cores the results are still well-defined (threads are timeshared) but not
// meaningful as contention measurements — choose_backend() steers such
// hosts to the simulator.
#pragma once

#include "bench_core/backend.hpp"
#include "common/topology.hpp"

namespace am::bench {

struct HwBackendOptions {
  double warmup_s = 0.05;
  double measure_s = 0.2;
  bool pin_threads = true;
  /// Sample one op latency out of every 2^shift ops (timing every op would
  /// double the cost of the cheapest primitives).
  std::uint32_t latency_sample_shift = 6;
  /// Open per-thread perf_event counters (cycles, instructions) around the
  /// measurement epoch. Silently absent where the kernel refuses.
  bool collect_perf_counters = true;
};

class HardwareBackend final : public ExecutionBackend {
 public:
  explicit HardwareBackend(HwBackendOptions options = {});

  std::string name() const override { return "hw"; }
  std::string machine_name() const override { return "host"; }
  std::uint32_t max_threads() const override;
  double freq_ghz() const override;

  const Topology& topology() const noexcept { return topology_; }

 private:
  MeasuredRun do_run(const WorkloadConfig& config) override;

  HwBackendOptions options_;
  Topology topology_;
};

}  // namespace am::bench
