// JSON run-report writer.
//
// Serializes everything a bench binary measured — the rendered result table
// plus the full MeasuredRun of every workload executed through the backend
// seam — into one machine-readable document (schema "am-run-report/1").
// scripts/plot_results.py and the model-calibration tools consume these
// instead of scraping stdout; the CSV mirror stays for spreadsheets.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"

namespace am {
class Table;
}

namespace am::bench {

/// Report provenance; everything optional except bench/title.
struct ReportMeta {
  std::string bench;    ///< binary name (argv[0] basename)
  std::string title;    ///< table/figure title, as printed
  std::string backend;  ///< backend spec ("sim:xeon", "hw", ...)
  std::string machine;  ///< machine/preset the backend reported
  std::string command;  ///< reconstructed command line
  double wall_time_s = 0.0;  ///< wall time of the whole bench run
};

/// Sweep-resilience summary for the report's "sweep" section: how many
/// points survived, which failed (with a replay command), and what the
/// cache/journal layer had to absorb. Statuses are the to_string() names of
/// bench::PointStatus, kept as strings so the report layer stays decoupled
/// from the engine.
struct SweepReport {
  std::size_t points = 0;  ///< points submitted
  std::size_t ok = 0;      ///< points that produced a measurement
  std::uint64_t cache_io_errors = 0;
  std::size_t quarantined_files = 0;
  struct Failure {
    std::size_t index = 0;
    std::string status;    ///< "timeout", "sim_error", ...
    std::uint64_t seed = 0;
    std::string message;   ///< one-line failure description
    std::string replay;    ///< command that re-executes just this point
    std::string workload;  ///< WorkloadConfig::describe(), or "task"
  };
  std::vector<Failure> failures;
};

/// Writes the report to @p os. @p table may be null (no table section);
/// @p runs is typically run_log(); @p sweep may be null (no sweep section).
/// Pretty-printed (reports are small and meant to be diffable).
void write_run_report(std::ostream& os, const ReportMeta& meta,
                      const Table* table, const std::vector<RecordedRun>& runs,
                      const SweepReport* sweep = nullptr);

/// Writes the report to @p path; returns false on I/O failure.
bool write_run_report_file(const std::string& path, const ReportMeta& meta,
                           const Table* table,
                           const std::vector<RecordedRun>& runs,
                           const SweepReport* sweep = nullptr);

}  // namespace am::bench
