// JSON run-report writer.
//
// Serializes everything a bench binary measured — the rendered result table
// plus the full MeasuredRun of every workload executed through the backend
// seam — into one machine-readable document (schema "am-run-report/1").
// scripts/plot_results.py and the model-calibration tools consume these
// instead of scraping stdout; the CSV mirror stays for spreadsheets.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"

namespace am {
class Table;
}

namespace am::bench {

/// Report provenance; everything optional except bench/title.
struct ReportMeta {
  std::string bench;    ///< binary name (argv[0] basename)
  std::string title;    ///< table/figure title, as printed
  std::string backend;  ///< backend spec ("sim:xeon", "hw", ...)
  std::string machine;  ///< machine/preset the backend reported
  std::string command;  ///< reconstructed command line
  double wall_time_s = 0.0;  ///< wall time of the whole bench run
};

/// Writes the report to @p os. @p table may be null (no table section);
/// @p runs is typically run_log(). Pretty-printed (reports are small and
/// meant to be diffable).
void write_run_report(std::ostream& os, const ReportMeta& meta,
                      const Table* table, const std::vector<RecordedRun>& runs);

/// Writes the report to @p path; returns false on I/O failure.
bool write_run_report_file(const std::string& path, const ReportMeta& meta,
                           const Table* table,
                           const std::vector<RecordedRun>& runs);

}  // namespace am::bench
