#include "bench_core/sweep.hpp"

#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_core/sweep_journal.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"

namespace am::bench {

namespace {

/// Outcome counter, one per PointStatus label. The registry interns each
/// (name, labels) pair once; the per-point cost is a single sharded
/// fetch-add.
obs::metrics::Counter& point_status_counter(PointStatus s) {
  namespace m = obs::metrics;
  const auto make = [](const char* status) -> m::Counter& {
    return m::default_registry().counter(
        "am_sweep_points_total", "Sweep points finished, by outcome",
        {{"status", status}});
  };
  switch (s) {
    case PointStatus::kOk: { static m::Counter& c = make("ok"); return c; }
    case PointStatus::kTimeout: {
      static m::Counter& c = make("timeout");
      return c;
    }
    case PointStatus::kSimError: {
      static m::Counter& c = make("sim_error");
      return c;
    }
    case PointStatus::kCacheError: {
      static m::Counter& c = make("cache_error");
      return c;
    }
    case PointStatus::kCancelled: {
      static m::Counter& c = make("cancelled");
      return c;
    }
    case PointStatus::kSkipped: {
      static m::Counter& c = make("skipped");
      return c;
    }
  }
  static m::Counter& unknown = make("unknown");
  return unknown;
}

/// Where an ok result came from: fresh execution or one of the reuse tiers.
enum class PointSource { kExecuted, kCache, kJournal };

obs::metrics::Counter& point_source_counter(PointSource s) {
  namespace m = obs::metrics;
  const auto make = [](const char* src) -> m::Counter& {
    return m::default_registry().counter(
        "am_sweep_point_results_total",
        "Successful sweep-point results, by source",
        {{"source", src}});
  };
  switch (s) {
    case PointSource::kCache: {
      static m::Counter& c = make("cache");
      return c;
    }
    case PointSource::kJournal: {
      static m::Counter& c = make("journal");
      return c;
    }
    case PointSource::kExecuted:
      break;
  }
  static m::Counter& c = make("executed");
  return c;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  const std::uint64_t s = splitmix64(splitmix64(base_seed) ^ index);
  return s == 0 ? 0x9e3779b97f4a7c15ULL : s;
}

std::string jobs_trace_conflict(std::int64_t jobs, bool trace_requested) {
  if (!trace_requested || jobs <= 1) return "";
  return "--trace-out writes a single ordered trace stream and requires a "
         "serial sweep; drop --jobs=" +
         std::to_string(jobs) + " or the trace";
}

// ---------------------------------------------------------------------------
// Cache key + bit-exact result serialization
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Serializes every WorkloadConfig field (describe() omits several).
std::string workload_fingerprint(const WorkloadConfig& c) {
  std::ostringstream os;
  os.precision(17);
  os << "mode=" << static_cast<int>(c.mode)
     << ";prim=" << static_cast<int>(c.prim) << ";threads=" << c.threads
     << ";work=" << c.work << ";jitter=" << c.work_jitter
     << ";zlines=" << c.zipf_lines << ";zs=" << c.zipf_s
     << ";wf=" << c.write_fraction << ";shards=" << c.shards
     << ";lpt=" << c.lines_per_thread << ";seed=" << c.seed
     << ";pin=" << static_cast<int>(c.pin_order);
  return os.str();
}

// Doubles are cached as their IEEE-754 bit patterns (16 hex digits): the
// JSON number path would round-trip through double-formatted text and the
// parser's double storage, which is only exact up to 2^53 — not enough for
// byte-identical warm-cache reports.
void kv_bits(JsonWriter& w, std::string_view key, double v) {
  w.kv(key, hex64(std::bit_cast<std::uint64_t>(v)));
}

void kv_u64_array(JsonWriter& w, std::string_view key, const std::uint64_t* v,
                  std::size_t n) {
  w.key(key).begin_array();
  for (std::size_t i = 0; i < n; ++i) w.value(v[i]);
  w.end_array();
}

std::uint64_t get_u64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != JsonValue::Type::kNumber) {
    throw std::runtime_error("sweep cache: missing field");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

double get_bits(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != JsonValue::Type::kString) {
    throw std::runtime_error("sweep cache: missing bits field");
  }
  const std::uint64_t bits =
      std::strtoull(v->as_string().c_str(), nullptr, 16);
  return std::bit_cast<double>(bits);
}

bool get_bool(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != JsonValue::Type::kBool) {
    throw std::runtime_error("sweep cache: missing bool field");
  }
  return v->as_bool();
}

template <std::size_t N>
void fill_u64_array(const JsonValue& obj, std::string_view key,
                    std::array<std::uint64_t, N>& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != JsonValue::Type::kArray || v->size() != N) {
    throw std::runtime_error("sweep cache: bad array field");
  }
  for (std::size_t i = 0; i < N; ++i) {
    out[i] = static_cast<std::uint64_t>(v->at(i)->as_number());
  }
}

const JsonValue& require_array(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != JsonValue::Type::kArray) {
    throw std::runtime_error("sweep cache: missing array");
  }
  return *v;
}

}  // namespace

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t index) noexcept {
  return point_seed(base_seed, index);
}

std::string sweep_cache_key(const std::string& backend_identity,
                            const WorkloadConfig& config, std::uint64_t seed) {
  if (backend_identity.empty()) return "";
  const std::string material = std::string(kSweepCacheVersion) + "|" +
                               backend_identity + "|" +
                               workload_fingerprint(config) + "|" +
                               std::to_string(seed);
  // Two independent hashes (plain and salted) make accidental 64-bit
  // collisions a non-issue; the full key material is also embedded in the
  // cache file and verified on load.
  return hex64(fnv1a64(material)) + hex64(fnv1a64("salt|" + material));
}

std::string serialize_measured_run(const MeasuredRun& r,
                                   const std::string& key) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("v", kSweepCacheVersion);
  w.kv("key", key);
  w.kv("backend", r.backend);
  w.kv("machine", r.machine);
  kv_bits(w, "duration_cycles", r.duration_cycles);
  kv_bits(w, "freq_ghz", r.freq_ghz);
  w.key("threads").begin_array();
  for (const auto& t : r.threads) {
    w.begin_object();
    w.kv("ops", t.ops);
    w.kv("successes", t.successes);
    w.kv("failures", t.failures);
    w.kv("attempts", t.attempts);
    kv_bits(w, "mean_latency", t.mean_latency_cycles);
    kv_bits(w, "p99_latency", t.p99_latency_cycles);
    w.kv("tail_valid", t.latency_tail_valid);
    kv_u64_array(w, "ops_by_prim", t.ops_by_prim.data(), t.ops_by_prim.size());
    kv_u64_array(w, "successes_by_prim", t.successes_by_prim.data(),
                 t.successes_by_prim.size());
    w.end_object();
  }
  w.end_array();
  kv_u64_array(w, "transfers", r.transfers.data(), r.transfers.size());
  w.kv("invalidations", r.invalidations);
  w.kv("memory_fetches", r.memory_fetches);
  w.kv("evictions", r.evictions);
  w.key("hot_lines").begin_array();
  for (const auto& h : r.hot_lines) {
    w.begin_object();
    w.kv("line", h.line);
    w.kv("accesses", h.accesses);
    w.kv("acquisitions", h.acquisitions);
    w.kv("invalidations", h.invalidations);
    kv_bits(w, "mean_queue_depth", h.mean_queue_depth);
    w.kv("max_queue_depth", h.max_queue_depth);
    kv_bits(w, "mean_hold_cycles", h.mean_hold_cycles);
    kv_u64_array(w, "supply", h.supply.data(), h.supply.size());
    w.end_object();
  }
  w.end_array();
  kv_bits(w, "epoch_cycles", r.epoch_cycles);
  w.key("epochs").begin_array();
  for (const auto& e : r.epochs) {
    w.begin_object();
    kv_bits(w, "start_cycle", e.start_cycle);
    w.kv("ops", e.ops);
    w.kv("attempts", e.attempts);
    kv_bits(w, "throughput", e.throughput_ops_per_kcycle);
    kv_bits(w, "wait_fraction", e.wait_fraction);
    w.kv("outstanding_max", e.outstanding_max);
    w.end_object();
  }
  w.end_array();
  w.kv("energy_valid", r.energy_valid);
  kv_bits(w, "energy_package_j", r.energy_package_j);
  kv_bits(w, "energy_dram_j", r.energy_dram_j);
  w.kv("perf_valid", r.perf_valid);
  w.kv("perf_cycles", r.perf_cycles);
  w.kv("perf_instructions", r.perf_instructions);
  w.end_object();
  os << "\n";
  return os.str();
}

std::optional<MeasuredRun> parse_measured_run(const std::string& text,
                                              const std::string& key) {
  const auto doc = JsonValue::parse(text);
  if (!doc.has_value()) return std::nullopt;
  try {
    const JsonValue* v = doc->find("v");
    const JsonValue* k = doc->find("key");
    if (v == nullptr || v->as_string() != kSweepCacheVersion ||
        k == nullptr || k->as_string() != key) {
      return std::nullopt;
    }
    MeasuredRun r;
    r.backend = doc->find("backend")->as_string();
    r.machine = doc->find("machine")->as_string();
    r.duration_cycles = get_bits(*doc, "duration_cycles");
    r.freq_ghz = get_bits(*doc, "freq_ghz");
    for (const JsonValue& jt : require_array(*doc, "threads").items()) {
      ThreadResult t;
      t.ops = get_u64(jt, "ops");
      t.successes = get_u64(jt, "successes");
      t.failures = get_u64(jt, "failures");
      t.attempts = get_u64(jt, "attempts");
      t.mean_latency_cycles = get_bits(jt, "mean_latency");
      t.p99_latency_cycles = get_bits(jt, "p99_latency");
      t.latency_tail_valid = get_bool(jt, "tail_valid");
      fill_u64_array(jt, "ops_by_prim", t.ops_by_prim);
      fill_u64_array(jt, "successes_by_prim", t.successes_by_prim);
      r.threads.push_back(t);
    }
    fill_u64_array(*doc, "transfers", r.transfers);
    r.invalidations = get_u64(*doc, "invalidations");
    r.memory_fetches = get_u64(*doc, "memory_fetches");
    r.evictions = get_u64(*doc, "evictions");
    for (const JsonValue& jh : require_array(*doc, "hot_lines").items()) {
      LineHotness h;
      h.line = get_u64(jh, "line");
      h.accesses = get_u64(jh, "accesses");
      h.acquisitions = get_u64(jh, "acquisitions");
      h.invalidations = get_u64(jh, "invalidations");
      h.mean_queue_depth = get_bits(jh, "mean_queue_depth");
      h.max_queue_depth = get_u64(jh, "max_queue_depth");
      h.mean_hold_cycles = get_bits(jh, "mean_hold_cycles");
      fill_u64_array(jh, "supply", h.supply);
      r.hot_lines.push_back(h);
    }
    r.epoch_cycles = get_bits(*doc, "epoch_cycles");
    for (const JsonValue& je : require_array(*doc, "epochs").items()) {
      EpochPoint e;
      e.start_cycle = get_bits(je, "start_cycle");
      e.ops = get_u64(je, "ops");
      e.attempts = get_u64(je, "attempts");
      e.throughput_ops_per_kcycle = get_bits(je, "throughput");
      e.wait_fraction = get_bits(je, "wait_fraction");
      e.outstanding_max = get_u64(je, "outstanding_max");
      r.epochs.push_back(e);
    }
    r.energy_valid = get_bool(*doc, "energy_valid");
    r.energy_package_j = get_bits(*doc, "energy_package_j");
    r.energy_dram_j = get_bits(*doc, "energy_dram_j");
    r.perf_valid = get_bool(*doc, "perf_valid");
    r.perf_cycles = get_u64(*doc, "perf_cycles");
    r.perf_instructions = get_u64(*doc, "perf_instructions");
    return r;
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt/stale file: treat as a cache miss
  }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

const char* to_string(PointStatus s) noexcept {
  switch (s) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kTimeout: return "timeout";
    case PointStatus::kSimError: return "sim_error";
    case PointStatus::kCacheError: return "cache_error";
    case PointStatus::kCancelled: return "cancelled";
    case PointStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

namespace {

/// Process-wide: set from the SIGINT handler, so it must stay a lone
/// lock-free atomic store away from any engine state.
std::atomic<bool> g_cancel{false};

}  // namespace

void SweepEngine::request_cancel() noexcept {
  g_cancel.store(true, std::memory_order_relaxed);
}
bool SweepEngine::cancel_requested() noexcept {
  return g_cancel.load(std::memory_order_relaxed);
}
void SweepEngine::clear_cancel() noexcept {
  g_cancel.store(false, std::memory_order_relaxed);
}

struct SweepEngine::Point {
  bool is_task = false;
  WorkloadConfig config;
  Task task;
  std::uint64_t seed = 0;
  std::size_t index = 0;

  std::vector<RecordedRun> local_log;
  MeasuredRun result;
  bool has_result = false;
  bool from_cache = false;
  bool from_journal = false;
  PointStatus status = PointStatus::kOk;
  std::string message;  ///< failure description when status != kOk
};

struct SweepEngine::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  ///< workers: new work or shutdown
  std::condition_variable done_cv;  ///< drain(): a point completed
  std::vector<std::unique_ptr<Point>> points;
  std::size_t next = 0;       ///< next point to hand to a worker
  std::size_t completed = 0;  ///< points finished (ok or failed)
  std::size_t flushed = 0;    ///< points merged into the global run log
  std::size_t executed = 0;   ///< cache misses + tasks actually run
  std::size_t cache_hits = 0;
  std::size_t journal_hits = 0;
  std::size_t quarantined = 0;
  std::uint64_t cache_io_errors = 0;
  bool io_warning_emitted = false;
  bool stop = false;
  std::vector<std::thread> workers;
  sweep::SweepJournal journal;
};

SweepEngine::SweepEngine(BackendFactory factory, SweepOptions options)
    : factory_(std::move(factory)),
      options_(std::move(options)),
      jobs_(options_.jobs != 0
                ? options_.jobs
                : std::max(1u, std::thread::hardware_concurrency())),
      impl_(std::make_unique<Impl>()) {
  if (!options_.journal_path.empty() && options_.replay_point < 0) {
    if (!impl_->journal.open(options_.journal_path)) {
      ++impl_->cache_io_errors;  // degrade: run unjournaled, warn at drain()
    }
  }
}

SweepEngine::~SweepEngine() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
}

std::size_t SweepEngine::submit(const WorkloadConfig& config) {
  auto p = std::make_unique<Point>();
  p->config = config;
  std::size_t index;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    index = impl_->points.size();
    p->index = index;
    p->seed = point_seed(options_.base_seed, index);
    impl_->points.push_back(std::move(p));
    // Lazy pool start: an engine that is never used costs no threads.
    if (impl_->workers.size() < jobs_ &&
        impl_->workers.size() < impl_->points.size()) {
      impl_->workers.emplace_back([this] { worker_loop(); });
    }
  }
  impl_->work_cv.notify_one();
  return index;
}

std::size_t SweepEngine::submit_task(Task task) {
  auto p = std::make_unique<Point>();
  p->is_task = true;
  p->task = std::move(task);
  std::size_t index;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    index = impl_->points.size();
    p->index = index;
    p->seed = point_seed(options_.base_seed, index);
    impl_->points.push_back(std::move(p));
    if (impl_->workers.size() < jobs_ &&
        impl_->workers.size() < impl_->points.size()) {
      impl_->workers.emplace_back([this] { worker_loop(); });
    }
  }
  impl_->work_cv.notify_one();
  return index;
}

void SweepEngine::worker_loop() {
  for (;;) {
    Point* point = nullptr;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->work_cv.wait(lock, [this] {
        return impl_->stop || impl_->next < impl_->points.size();
      });
      if (impl_->next >= impl_->points.size()) {
        if (impl_->stop) return;
        continue;
      }
      point = impl_->points[impl_->next++].get();
    }
    if (cancel_requested()) {
      // In-flight points finish; this one never started, so it is cleanly
      // cancellable without losing work.
      point->status = PointStatus::kCancelled;
      point->message = "cancelled before execution (SIGINT)";
    } else {
      if (obs::metrics::enabled()) {
        static obs::metrics::Counter& started =
            obs::metrics::default_registry().counter(
                "am_sweep_points_started_total",
                "Sweep points picked up by a worker");
        started.inc();
      }
      execute_point(*point);
    }
    if (obs::metrics::enabled()) {
      point_status_counter(point->status).inc();
      if (point->status == PointStatus::kOk) {
        point_source_counter(point->from_cache     ? PointSource::kCache
                             : point->from_journal ? PointSource::kJournal
                                                   : PointSource::kExecuted)
            .inc();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      ++impl_->completed;
      if (point->status == PointStatus::kOk) {
        if (point->from_cache) {
          ++impl_->cache_hits;
        } else if (point->from_journal) {
          ++impl_->journal_hits;
        } else {
          ++impl_->executed;
        }
      }
    }
    impl_->done_cv.notify_all();
  }
}

void SweepEngine::execute_point(Point& p) {
  if (options_.replay_point >= 0 &&
      p.index != static_cast<std::size_t>(options_.replay_point)) {
    p.status = PointStatus::kSkipped;
    p.message = "skipped (--replay-point=" +
                std::to_string(options_.replay_point) + ")";
    return;
  }
  const bool replaying = options_.replay_point >= 0;
  try {
    if (p.is_task) {
      p.task(p.seed, p.local_log);
      return;
    }
    std::unique_ptr<ExecutionBackend> backend = factory_(p.seed);
    backend->set_run_recorder(&p.local_log);

    // Replay bypasses cache and journal entirely: the point must re-execute.
    std::string cache_path;
    std::string key;
    if (!replaying) {
      key = sweep_cache_key(backend->cache_identity(), p.config, p.seed);
    }
    if (!key.empty()) {
      if (impl_->journal.is_open()) {
        if (auto journaled = impl_->journal.lookup(key)) {
          p.result = std::move(*journaled);
          p.has_result = true;
          p.from_journal = true;
          p.local_log.push_back(RecordedRun{p.config, p.result});
          return;
        }
      }
      if (!options_.cache_dir.empty()) {
        cache_path = options_.cache_dir + "/" + key + ".json";
        std::string bytes;
        switch (sweep::read_file_with_retry(cache_path, bytes)) {
          case sweep::IoResult::kOk:
            if (auto cached = parse_measured_run(bytes, key)) {
              p.result = std::move(*cached);
              p.has_result = true;
              p.from_cache = true;
              p.local_log.push_back(RecordedRun{p.config, p.result});
              record_in_journal(key, p.result);
              return;
            }
            // Corrupt bytes or a stale/colliding key: quarantine the file
            // for postmortem and recompute — never trust it again.
            sweep::quarantine_file(options_.cache_dir, cache_path);
            {
              const std::lock_guard<std::mutex> lock(impl_->mu);
              ++impl_->quarantined;
            }
            break;
          case sweep::IoResult::kMissing:
            break;
          case sweep::IoResult::kError: {
            bool escalate = false;
            if (sweep::IoFaults* f = sweep::io_faults()) {
              escalate = f->escalate_read.load(std::memory_order_relaxed);
            }
            {
              const std::lock_guard<std::mutex> lock(impl_->mu);
              ++impl_->cache_io_errors;
            }
            if (escalate) {
              p.status = PointStatus::kCacheError;
              p.message = "cache read failed after " +
                          std::to_string(sweep::kIoAttempts) +
                          " attempts: " + cache_path;
              p.local_log.clear();
              return;
            }
            // Degrade: run uncached rather than fail the point.
            cache_path.clear();
            break;
          }
        }
      }
    }

    p.result = backend->run(p.config);
    p.has_result = true;

    if (!cache_path.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options_.cache_dir, ec);
      if (sweep::write_file_atomic(cache_path,
                                   serialize_measured_run(p.result, key)) !=
          sweep::IoResult::kOk) {
        // A lost cache write only costs a future recompute — degrade, count
        // it, and surface one warning at drain() instead of failing the
        // point (or worse, staying silent).
        const std::lock_guard<std::mutex> lock(impl_->mu);
        ++impl_->cache_io_errors;
      }
    }
    record_in_journal(key, p.result);
  } catch (const sim::PointTimeout& e) {
    p.status = PointStatus::kTimeout;
    p.message = e.what();
    p.local_log.clear();
  } catch (const std::exception& e) {
    p.status = PointStatus::kSimError;
    p.message = e.what();
    p.local_log.clear();
  } catch (...) {
    p.status = PointStatus::kSimError;
    p.message = "unknown error";
    p.local_log.clear();
  }
}

void SweepEngine::record_in_journal(const std::string& key,
                                    const MeasuredRun& run) {
  if (key.empty() || !impl_->journal.is_open()) return;
  if (!impl_->journal.append(key, run)) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->cache_io_errors;
  }
}

void SweepEngine::drain() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(
      lock, [this] { return impl_->completed == impl_->points.size(); });
  while (impl_->flushed < impl_->points.size()) {
    Point& p = *impl_->points[impl_->flushed];
    ++impl_->flushed;
    if (p.status != PointStatus::kOk) continue;  // failed points flush nothing
    for (auto& rec : p.local_log) {
      append_run_log(std::move(rec));
    }
    p.local_log.clear();
  }
  const std::uint64_t io_errors =
      impl_->cache_io_errors + impl_->journal.io_errors();
  if (io_errors > 0 && !impl_->io_warning_emitted) {
    impl_->io_warning_emitted = true;
    std::fprintf(stderr,
                 "warning: sweep: %llu cache/journal I/O error(s); affected "
                 "points ran uncached (results are unaffected)\n",
                 static_cast<unsigned long long>(io_errors));
  }
}

const MeasuredRun& SweepEngine::result(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (index < impl_->points.size() && impl_->points[index]->has_result) {
    return impl_->points[index]->result;
  }
  std::string why = "not drained or a task";
  if (index < impl_->points.size()) {
    const Point& p = *impl_->points[index];
    if (p.status != PointStatus::kOk) {
      why = std::string(to_string(p.status)) + ": " + p.message +
            "; replay: rerun with --jobs=1 --replay-point=" +
            std::to_string(index);
    }
  }
  throw std::logic_error("SweepEngine::result: point " +
                         std::to_string(index) + " has no measurement (" +
                         why + ")");
}

const MeasuredRun* SweepEngine::result_or_null(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (index >= impl_->points.size() || !impl_->points[index]->has_result) {
    return nullptr;
  }
  return &impl_->points[index]->result;
}

PointOutcome SweepEngine::outcome(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  PointOutcome out;
  if (index >= impl_->points.size()) {
    out.status = PointStatus::kSimError;
    out.message = "no such point";
    return out;
  }
  const Point& p = *impl_->points[index];
  out.status = p.status;
  out.message = p.message;
  out.seed = p.seed;
  out.from_cache = p.from_cache;
  out.from_journal = p.from_journal;
  return out;
}

std::vector<FailedPoint> SweepEngine::failed_points() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<FailedPoint> out;
  for (const auto& pp : impl_->points) {
    const Point& p = *pp;
    if (p.status == PointStatus::kOk || p.status == PointStatus::kSkipped) {
      continue;
    }
    FailedPoint f;
    f.index = p.index;
    f.status = p.status;
    f.message = p.message;
    f.seed = p.seed;
    f.is_task = p.is_task;
    f.config = p.config;
    out.push_back(std::move(f));
  }
  return out;
}

std::size_t SweepEngine::submitted_points() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->points.size();
}

std::size_t SweepEngine::ok_points() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->executed + impl_->cache_hits + impl_->journal_hits;
}

std::size_t SweepEngine::executed_points() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->executed;
}

std::size_t SweepEngine::cache_hits() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->cache_hits;
}

std::size_t SweepEngine::journal_hits() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->journal_hits;
}

std::uint64_t SweepEngine::cache_io_errors() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->cache_io_errors + impl_->journal.io_errors();
}

std::size_t SweepEngine::quarantined_files() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->quarantined;
}

}  // namespace am::bench
