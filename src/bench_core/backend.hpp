// ExecutionBackend: the seam between the experiments and the machinery that
// runs them.
//
// Every bench binary is written against this interface and can therefore run
// on real hardware threads (HardwareBackend) or on the coherence simulator
// (SimBackend) unchanged. choose_backend() implements the repo's policy:
// simulator presets stand in for the paper's 36/64-core testbeds whenever
// the host lacks the cores to produce meaningful contention.
#pragma once

#include <memory>
#include <string>

#include "bench_core/result.hpp"
#include "bench_core/workload.hpp"

namespace am::bench {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one workload to completion and returns its measurements.
  virtual MeasuredRun run(const WorkloadConfig& config) = 0;

  /// "sim" or "hw".
  virtual std::string name() const = 0;
  /// Machine this backend models/runs on.
  virtual std::string machine_name() const = 0;
  /// Largest thread count the backend can place.
  virtual std::uint32_t max_threads() const = 0;
  /// Nominal core frequency, for cycle <-> time conversions.
  virtual double freq_ghz() const = 0;
};

/// Builds a backend from a CLI-ish spec:
///   "sim:xeon" | "sim:knl" | "sim:test" -> SimBackend on that preset
///   "hw"                                -> HardwareBackend on this host
///   "auto"                              -> hw when the host has >= 8 cores,
///                                          otherwise sim:xeon
std::unique_ptr<ExecutionBackend> make_backend(const std::string& spec);

}  // namespace am::bench
