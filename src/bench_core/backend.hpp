// ExecutionBackend: the seam between the experiments and the machinery that
// runs them.
//
// Every bench binary is written against this interface and can therefore run
// on real hardware threads (HardwareBackend) or on the coherence simulator
// (SimBackend) unchanged. choose_backend() implements the repo's policy:
// simulator presets stand in for the paper's 36/64-core testbeds whenever
// the host lacks the cores to produce meaningful contention.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench_core/result.hpp"
#include "bench_core/workload.hpp"

namespace am::bench {

/// One measurement recorded by the backend seam.
struct RecordedRun;

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one workload to completion and returns its measurements.
  /// Non-virtual: delegates to do_run() and appends the (workload, result)
  /// pair to the process-wide run log, which the JSON run-report writer
  /// serializes — every bench binary gets --json-out without touching its
  /// measurement loop. With a run recorder attached (set_run_recorder) the
  /// pair goes to the recorder instead; the sweep engine uses this to merge
  /// pool results back into the global log in submission order.
  MeasuredRun run(const WorkloadConfig& config);

  /// Redirects run() recording into @p sink (not owned; nullptr restores the
  /// process-wide log). A recorder is owned by exactly one task, so appends
  /// to it are unsynchronized by design.
  void set_run_recorder(std::vector<RecordedRun>* sink) noexcept {
    recorder_ = sink;
  }

  /// "sim" or "hw".
  virtual std::string name() const = 0;
  /// Machine this backend models/runs on.
  virtual std::string machine_name() const = 0;
  /// Largest thread count the backend can place.
  virtual std::uint32_t max_threads() const = 0;
  /// Nominal core frequency, for cycle <-> time conversions.
  virtual double freq_ghz() const = 0;

  /// Stable string identifying everything that determines this backend's
  /// results besides the workload and seed — machine config, measurement
  /// windows. Cache keys for the sweep result cache hash this; backends
  /// whose runs are not reproducible (hw) return "" to opt out of caching.
  virtual std::string cache_identity() const { return ""; }

 protected:
  /// Backend-specific measurement; implemented by each backend.
  virtual MeasuredRun do_run(const WorkloadConfig& config) = 0;

 private:
  std::vector<RecordedRun>* recorder_ = nullptr;
};

struct RecordedRun {
  WorkloadConfig workload;
  MeasuredRun run;
};

/// Process-wide log of every workload executed through ExecutionBackend::run,
/// in execution order. Cleared with clear_run_log() (tests). Appends and
/// clears are mutex-protected; reading the returned reference is only safe
/// once no backend is running (bench binaries read it after their sweeps
/// drain).
const std::vector<RecordedRun>& run_log();
void clear_run_log();
/// Appends @p rec to the process-wide run log (thread-safe). The sweep
/// engine flushes pooled results through this in submission order.
void append_run_log(RecordedRun rec);

/// Builds a backend from a CLI-ish spec:
///   "sim:xeon" | "sim:knl" | "sim:test" -> SimBackend on that preset
///   "hw"                                -> HardwareBackend on this host
///   "auto"                              -> hw when the host has >= 8 cores,
///                                          otherwise sim:xeon
/// @p seed seeds simulator backends (ignored by hw); the sweep engine derives
/// one per grid point so every point is independently replayable.
std::unique_ptr<ExecutionBackend> make_backend(const std::string& spec,
                                               std::uint64_t seed = 1);

}  // namespace am::bench
