// ExecutionBackend: the seam between the experiments and the machinery that
// runs them.
//
// Every bench binary is written against this interface and can therefore run
// on real hardware threads (HardwareBackend) or on the coherence simulator
// (SimBackend) unchanged. choose_backend() implements the repo's policy:
// simulator presets stand in for the paper's 36/64-core testbeds whenever
// the host lacks the cores to produce meaningful contention.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench_core/result.hpp"
#include "bench_core/workload.hpp"

namespace am::bench {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one workload to completion and returns its measurements.
  /// Non-virtual: delegates to do_run() and appends the (workload, result)
  /// pair to the process-wide run log, which the JSON run-report writer
  /// serializes — every bench binary gets --json-out without touching its
  /// measurement loop.
  MeasuredRun run(const WorkloadConfig& config);

  /// "sim" or "hw".
  virtual std::string name() const = 0;
  /// Machine this backend models/runs on.
  virtual std::string machine_name() const = 0;
  /// Largest thread count the backend can place.
  virtual std::uint32_t max_threads() const = 0;
  /// Nominal core frequency, for cycle <-> time conversions.
  virtual double freq_ghz() const = 0;

 protected:
  /// Backend-specific measurement; implemented by each backend.
  virtual MeasuredRun do_run(const WorkloadConfig& config) = 0;
};

/// One measurement recorded by the backend seam.
struct RecordedRun {
  WorkloadConfig workload;
  MeasuredRun run;
};

/// Process-wide log of every workload executed through ExecutionBackend::run,
/// in execution order. Cleared with clear_run_log() (tests).
const std::vector<RecordedRun>& run_log();
void clear_run_log();

/// Builds a backend from a CLI-ish spec:
///   "sim:xeon" | "sim:knl" | "sim:test" -> SimBackend on that preset
///   "hw"                                -> HardwareBackend on this host
///   "auto"                              -> hw when the host has >= 8 cores,
///                                          otherwise sim:xeon
std::unique_ptr<ExecutionBackend> make_backend(const std::string& spec);

}  // namespace am::bench
