#include "bench_core/sweep_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_core/sweep.hpp"
#include "common/json.hpp"

namespace am::bench::sweep {

namespace {

std::atomic<IoFaults*> g_faults{nullptr};

void backoff_sleep(int attempt) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(kIoBackoffBaseMs << attempt));
}

/// write(2) the whole buffer, honoring injected faults. A torn-write fault
/// deliberately leaves a half-written prefix behind — the crash shape the
/// journal loader must tolerate.
bool faulty_write_all(int fd, const char* data, std::size_t len,
                      std::string* err) {
  IoFaults* f = io_faults();
  if (f != nullptr && IoFaults::consume(f->torn_write)) {
    const std::size_t half = len / 2;
    if (half > 0) (void)!::write(fd, data, half);
    if (err != nullptr) *err = "injected torn write";
    return false;
  }
  if (f != nullptr && IoFaults::consume(f->write_enospc)) {
    if (err != nullptr) *err = "injected ENOSPC";
    return false;
  }
  while (len > 0) {
    const ::ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = std::strerror(errno);
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Flushes the entry containing @p path so a rename survives power loss.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool IoFaults::consume(std::atomic<int>& counter) noexcept {
  int v = counter.load(std::memory_order_relaxed);
  for (;;) {
    if (v == 0) return false;
    if (v < 0) return true;  // inject always
    if (counter.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
}

void set_io_faults(IoFaults* faults) noexcept {
  g_faults.store(faults, std::memory_order_release);
}

IoFaults* io_faults() noexcept {
  return g_faults.load(std::memory_order_acquire);
}

IoResult read_file_with_retry(const std::string& path, std::string& out) {
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    IoFaults* f = io_faults();
    if (f != nullptr && IoFaults::consume(f->read_eio)) continue;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return IoResult::kMissing;
      continue;
    }
    out.clear();
    char buf[1 << 16];
    bool ok = true;
    for (;;) {
      const ::ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (ok) return IoResult::kOk;
  }
  return IoResult::kError;
}

IoResult write_file_atomic(const std::string& path, const std::string& bytes) {
  // A unique temp name keeps concurrent writers (pool threads racing on one
  // cache key) from tearing each other; last rename wins with equal bytes.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid())) +
      "." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) continue;
    std::string err;
    bool ok = faulty_write_all(fd, bytes.data(), bytes.size(), &err);
    if (ok && ::fsync(fd) != 0) ok = false;
    ::close(fd);
    if (ok) {
      IoFaults* f = io_faults();
      if (f != nullptr && IoFaults::consume(f->rename_eio)) {
        ok = false;
      } else if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ok = false;
      }
    }
    if (ok) {
      fsync_parent_dir(path);
      return IoResult::kOk;
    }
    ::unlink(tmp.c_str());
  }
  return IoResult::kError;
}

bool quarantine_file(const std::string& cache_dir, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path qdir = fs::path(cache_dir) / "quarantine";
  fs::create_directories(qdir, ec);
  const fs::path dest = qdir / fs::path(path).filename();
  fs::rename(path, dest, ec);
  if (!ec) return true;
  // Last resort: drop the corrupt file so the sweep cannot keep re-reading
  // the same bad bytes on every rerun.
  fs::remove(path, ec);
  return false;
}

// --- SweepJournal ------------------------------------------------------------

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool SweepJournal::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  entries_.clear();
  loaded_ = 0;

  std::string content;
  const IoResult r = read_file_with_retry(path, content);
  if (r == IoResult::kError) {
    ++io_errors_;
    return false;
  }

  bool needs_rewrite = false;
  if (r == IoResult::kOk && !content.empty()) {
    std::istringstream in(content);
    std::string line;
    bool header_ok = false;
    if (std::getline(in, line) && line == kJournalVersion &&
        content.find('\n') != std::string::npos) {
      header_ok = true;
    }
    if (!header_ok) {
      // Not a journal (or a headerless torn stump): set it aside rather than
      // silently destroying whatever it was.
      std::error_code ec;
      std::filesystem::rename(path, path + ".corrupt", ec);
      if (ec) std::filesystem::remove(path, ec);
      needs_rewrite = true;
    } else {
      // content ends with '\n' for every complete entry; a torn tail is the
      // suffix after the last newline (or an unparseable line mid-file).
      while (std::getline(in, line)) {
        const bool complete_line =
            static_cast<std::size_t>(in.tellg()) <= content.size() ||
            content.back() == '\n';
        const auto doc = JsonValue::parse(line);
        const JsonValue* key = doc.has_value() ? doc->find("key") : nullptr;
        if (!complete_line || key == nullptr ||
            key->type() != JsonValue::Type::kString ||
            !parse_measured_run(line, key->as_string()).has_value()) {
          needs_rewrite = true;  // torn tail / corrupt entry: drop the rest
          break;
        }
        entries_[key->as_string()] = line;
      }
      loaded_ = entries_.size();
    }
  }

  if (needs_rewrite || r == IoResult::kMissing) {
    std::string compact = std::string(kJournalVersion) + "\n";
    for (const auto& [k, text] : entries_) compact += text + "\n";
    if (write_file_atomic(path, compact) != IoResult::kOk) {
      ++io_errors_;
      return false;
    }
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    ++io_errors_;
    return false;
  }
  return true;
}

std::optional<MeasuredRun> SweepJournal::lookup(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return parse_measured_run(it->second, key);
}

bool SweepJournal::write_all(int fd, const char* data, std::size_t len) {
  std::string err;
  if (!faulty_write_all(fd, data, len, &err)) return false;
  return ::fsync(fd) == 0;
}

bool SweepJournal::append(const std::string& key, const MeasuredRun& run) {
  if (key.empty()) return false;
  const std::string line = serialize_measured_run(run, key);  // '\n'-terminated
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return false;
  if (!write_all(fd_, line.data(), line.size())) {
    ++io_errors_;
    return false;
  }
  entries_[key] = line.substr(0, line.size() - 1);
  return true;
}

std::size_t SweepJournal::loaded_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

std::uint64_t SweepJournal::io_errors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return io_errors_;
}

}  // namespace am::bench::sweep
