// Backend-independent measurement record.
//
// Both backends (hardware threads and the coherence simulator) reduce a run
// to this structure, expressed in cycles and operation counts, so the model,
// the validation harness and every bench binary treat them identically.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace am::bench {

struct ThreadResult {
  std::uint64_t ops = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t attempts = 0;
  double mean_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;  ///< 0 when the backend didn't sample tails
};

struct MeasuredRun {
  std::string backend;  ///< "sim" or "hw"
  std::string machine;  ///< machine/preset name
  double duration_cycles = 0.0;  ///< measurement window length
  double freq_ghz = 1.0;
  std::vector<ThreadResult> threads;

  // Coherence-event counters (simulator backend; zero on hardware).
  std::array<std::uint64_t, 4> transfers{};  ///< by sim::Supply class
  std::uint64_t invalidations = 0;
  std::uint64_t memory_fetches = 0;

  // Energy (RAPL on hardware, event model in the simulator).
  bool energy_valid = false;
  double energy_package_j = 0.0;
  double energy_dram_j = 0.0;

  // Hardware counters (perf_event on the hardware backend; absent on the
  // simulator and on hosts where perf_event_open is not permitted).
  bool perf_valid = false;
  std::uint64_t perf_cycles = 0;        ///< summed over worker threads
  std::uint64_t perf_instructions = 0;  ///< summed over worker threads

  // --- derived metrics ------------------------------------------------------
  std::uint64_t total_ops() const noexcept;
  std::uint64_t total_successes() const noexcept;
  std::uint64_t total_attempts() const noexcept;
  double throughput_ops_per_kcycle() const noexcept;
  double throughput_mops() const noexcept;
  double mean_latency_cycles() const noexcept;
  double success_rate() const noexcept;
  /// Mean line acquisitions per completed operation (1 unless CAS retried).
  double attempts_per_op() const noexcept;
  double jain_fairness() const;
  double min_max_ratio() const;
  double energy_per_op_nj() const noexcept;
};

}  // namespace am::bench
