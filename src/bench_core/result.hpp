// Backend-independent measurement record.
//
// Both backends (hardware threads and the coherence simulator) reduce a run
// to this structure, expressed in cycles and operation counts, so the model,
// the validation harness and every bench binary treat them identically.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace am::bench {

struct ThreadResult {
  std::uint64_t ops = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t attempts = 0;
  double mean_latency_cycles = 0.0;
  /// Tail latency. Only meaningful when latency_tail_valid is set; writers
  /// must render "n/a" (tables) or null (JSON) otherwise, never the raw 0.
  double p99_latency_cycles = 0.0;
  bool latency_tail_valid = false;  ///< backend sampled latency tails
  /// Per-primitive completion/success counts (indexed by am::Primitive).
  /// Zero-filled on backends/workloads that don't distinguish primitives.
  std::array<std::uint64_t, 7> ops_by_prim{};
  std::array<std::uint64_t, 7> successes_by_prim{};
};

/// Per-line contention profile entry (simulator backend with line
/// profiling enabled; empty otherwise). Mirrors sim::LineProfile without
/// depending on simulator headers.
struct LineHotness {
  std::uint64_t line = 0;
  std::uint64_t accesses = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t invalidations = 0;
  double mean_queue_depth = 0.0;
  std::uint64_t max_queue_depth = 0;
  double mean_hold_cycles = 0.0;
  std::array<std::uint64_t, 4> supply{};  ///< by sim::Supply class
};

/// One window of the run's epoch time-series (simulator backend with epoch
/// sampling enabled).
struct EpochPoint {
  double start_cycle = 0.0;  ///< offset inside the measurement window
  std::uint64_t ops = 0;
  std::uint64_t attempts = 0;
  double throughput_ops_per_kcycle = 0.0;
  double wait_fraction = 0.0;  ///< stalled share of aggregate core-cycles
  std::uint64_t outstanding_max = 0;
};

struct MeasuredRun {
  std::string backend;  ///< "sim" or "hw"
  std::string machine;  ///< machine/preset name
  double duration_cycles = 0.0;  ///< measurement window length
  double freq_ghz = 1.0;
  std::vector<ThreadResult> threads;

  // Coherence-event counters (simulator backend; zero on hardware).
  std::array<std::uint64_t, 4> transfers{};  ///< by sim::Supply class
  std::uint64_t invalidations = 0;
  std::uint64_t memory_fetches = 0;
  std::uint64_t evictions = 0;

  // Observability payloads (simulator backend, when enabled; empty
  // otherwise). hot_lines is sorted hottest-first.
  std::vector<LineHotness> hot_lines;
  double epoch_cycles = 0.0;  ///< epoch window (0 = sampling was off)
  std::vector<EpochPoint> epochs;

  // Energy (RAPL on hardware, event model in the simulator).
  bool energy_valid = false;
  double energy_package_j = 0.0;
  double energy_dram_j = 0.0;

  // Hardware counters (perf_event on the hardware backend; absent on the
  // simulator and on hosts where perf_event_open is not permitted).
  bool perf_valid = false;
  std::uint64_t perf_cycles = 0;        ///< summed over worker threads
  std::uint64_t perf_instructions = 0;  ///< summed over worker threads

  // --- derived metrics ------------------------------------------------------
  std::uint64_t total_ops() const noexcept;
  std::uint64_t total_successes() const noexcept;
  std::uint64_t total_attempts() const noexcept;
  double throughput_ops_per_kcycle() const noexcept;
  double throughput_mops() const noexcept;
  double mean_latency_cycles() const noexcept;
  double success_rate() const noexcept;
  /// Mean line acquisitions per completed operation (1 unless CAS retried).
  double attempts_per_op() const noexcept;
  double jain_fairness() const;
  double min_max_ratio() const;
  double energy_per_op_nj() const noexcept;
};

}  // namespace am::bench
