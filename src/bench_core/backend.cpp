#include "bench_core/backend.hpp"

#include <mutex>
#include <thread>

#include "bench_core/hw_backend.hpp"
#include "bench_core/sim_backend.hpp"

namespace am::bench {

namespace {
std::mutex& run_log_mutex() {
  static std::mutex m;
  return m;
}

std::vector<RecordedRun>& mutable_run_log() {
  static std::vector<RecordedRun> log;
  return log;
}
}  // namespace

const std::vector<RecordedRun>& run_log() { return mutable_run_log(); }

void clear_run_log() {
  const std::lock_guard<std::mutex> lock(run_log_mutex());
  mutable_run_log().clear();
}

void append_run_log(RecordedRun rec) {
  const std::lock_guard<std::mutex> lock(run_log_mutex());
  mutable_run_log().push_back(std::move(rec));
}

MeasuredRun ExecutionBackend::run(const WorkloadConfig& config) {
  MeasuredRun result = do_run(config);
  if (recorder_ != nullptr) {
    recorder_->push_back(RecordedRun{config, result});
  } else {
    append_run_log(RecordedRun{config, result});
  }
  return result;
}

const char* to_string(WorkloadMode m) noexcept {
  switch (m) {
    case WorkloadMode::kHighContention: return "high-contention";
    case WorkloadMode::kLowContention: return "low-contention";
    case WorkloadMode::kZipf: return "zipf";
    case WorkloadMode::kMixedReadWrite: return "mixed-rw";
    case WorkloadMode::kSharded: return "sharded";
    case WorkloadMode::kPrivateWalk: return "private-walk";
  }
  return "?";
}

std::string WorkloadConfig::describe() const {
  std::string s = std::string(am::to_string(prim)) + " " +
                  am::bench::to_string(mode) + " threads=" +
                  std::to_string(threads) + " work=" + std::to_string(work);
  if (mode == WorkloadMode::kZipf) {
    s += " lines=" + std::to_string(zipf_lines) + " s=" + std::to_string(zipf_s);
  }
  if (mode == WorkloadMode::kMixedReadWrite) {
    s += " wr=" + std::to_string(write_fraction);
  }
  return s;
}

std::unique_ptr<ExecutionBackend> make_backend(const std::string& spec,
                                               std::uint64_t seed) {
  if (spec == "hw") return std::make_unique<HardwareBackend>();
  if (spec.rfind("sim:", 0) == 0) {
    // "sim:<preset>" optionally takes a ":tso" suffix selecting the weak
    // memory model; the model rides in MachineConfig::fingerprint(), so
    // sweep/service cache identities split from SC rows automatically.
    std::string preset = spec.substr(4);
    sim::MemoryModel model = sim::MemoryModel::kSc;
    const std::size_t colon = preset.find(':');
    if (colon != std::string::npos) {
      const auto parsed = sim::parse_memory_model(preset.substr(colon + 1));
      if (parsed) {
        model = *parsed;
        preset.resize(colon);
      }
    }
    sim::MachineConfig cfg = sim::preset_by_name(preset);
    cfg.memory_model = model;
    return std::make_unique<SimBackend>(cfg, SimBackendOptions{}, seed);
  }
  if (spec == "sim") {
    return std::make_unique<SimBackend>(sim::xeon_e5_2x18(),
                                        SimBackendOptions{}, seed);
  }
  // "auto": contention experiments need real parallelism to mean anything.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 8) return std::make_unique<HardwareBackend>();
  return std::make_unique<SimBackend>(sim::xeon_e5_2x18(), SimBackendOptions{},
                                      seed);
}

}  // namespace am::bench
