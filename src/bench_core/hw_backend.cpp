#include "bench_core/hw_backend.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "atomics/padded.hpp"
#include "atomics/primitives.hpp"
#include "common/affinity.hpp"
#include "common/barrier.hpp"
#include "common/cacheline.hpp"
#include "common/cpu.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "perfmon/perf_events.hpp"
#include "perfmon/rapl.hpp"

namespace am::bench {

namespace {

/// Busy loop of roughly @p n cycles (one dependent add per iteration).
inline void spin_work(std::uint64_t n) noexcept {
  for (std::uint64_t i = 0; i < n; ++i) compiler_barrier();
}

enum Phase : int { kWarmup = 0, kMeasure = 1, kStop = 2 };

struct alignas(kNoFalseSharingAlign) WorkerSlot {
  std::uint64_t ops = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t attempts = 0;
  std::array<std::uint64_t, 7> ops_by_prim{};
  std::array<std::uint64_t, 7> successes_by_prim{};
  std::vector<double> latency_samples;
  bool counters_reset = false;
  bool pinned = false;
  std::uint64_t perf_cycles = 0;
  std::uint64_t perf_instructions = 0;
  bool perf_valid = false;
};

}  // namespace

HardwareBackend::HardwareBackend(HwBackendOptions options)
    : options_(options), topology_(Topology::discover()) {}

std::uint32_t HardwareBackend::max_threads() const {
  return std::max(1u, std::thread::hardware_concurrency());
}

double HardwareBackend::freq_ghz() const { return tsc_frequency_hz() / 1e9; }

MeasuredRun HardwareBackend::do_run(const WorkloadConfig& config) {
  const std::uint32_t n = config.threads;
  // Shared cells: high contention uses cell 0; low contention cell tid;
  // zipf uses zipf_lines cells.
  std::size_t cell_count = 1;
  switch (config.mode) {
    case WorkloadMode::kZipf: cell_count = config.zipf_lines; break;
    case WorkloadMode::kLowContention: cell_count = n; break;
    case WorkloadMode::kSharded:
      cell_count = std::max<std::size_t>(1, config.shards);
      break;
    case WorkloadMode::kPrivateWalk:
      cell_count = std::max<std::uint64_t>(1, config.lines_per_thread) * n;
      break;
    default: cell_count = 1; break;
  }
  CellArray cells(cell_count);
  cells.fill(0);

  SpinBarrier barrier(n + 1);
  std::atomic<int> phase{kWarmup};
  std::vector<WorkerSlot> slots(n);
  const auto pin_seq = topology_.pin_sequence(config.pin_order);
  const std::uint64_t sample_mask =
      (std::uint64_t{1} << options_.latency_sample_shift) - 1;

  auto worker = [&](std::uint32_t tid) {
    WorkerSlot& slot = slots[tid];
    if (options_.pin_threads && !pin_seq.empty()) {
      slot.pinned = pin_current_thread(
          pin_seq[tid % pin_seq.size()]);
    }
    Xoshiro256 rng(config.seed * 0x9e3779b9ULL + tid);
    OpContext ctx;
    // Per-thread hardware counters around the measurement epoch.
    std::optional<PerfCounterGroup> perf;
    if (options_.collect_perf_counters) {
      perf.emplace(std::vector<PerfEvent>{PerfEvent::kCycles,
                                          PerfEvent::kInstructions});
    }
    // ZipfSampler construction allocates; do it before the barrier.
    ZipfSampler zipf(config.mode == WorkloadMode::kZipf ? config.zipf_lines : 1,
                     config.mode == WorkloadMode::kZipf ? config.zipf_s : 0.0);
    slot.latency_samples.reserve(1 << 16);

    barrier.arrive_and_wait();

    std::uint64_t local_ops = 0;
    std::uint64_t walk_cursor = 0;
    while (true) {
      const int ph = phase.load(std::memory_order_acquire);
      if (ph == kStop) break;
      if (ph == kMeasure && !slot.counters_reset) {
        slot.ops = slot.successes = slot.failures = slot.attempts = 0;
        slot.ops_by_prim.fill(0);
        slot.successes_by_prim.fill(0);
        slot.latency_samples.clear();
        slot.counters_reset = true;
        if (perf && perf->available()) {
          perf->reset();
          perf->enable();
        }
      }

      // Pick the target cell for this op.
      std::size_t idx = 0;
      Primitive prim = config.prim;
      switch (config.mode) {
        case WorkloadMode::kHighContention: idx = 0; break;
        case WorkloadMode::kLowContention: idx = tid % cell_count; break;
        case WorkloadMode::kZipf: idx = zipf.sample(rng); break;
        case WorkloadMode::kMixedReadWrite:
          idx = 0;
          if (rng.next_double() >= config.write_fraction) {
            prim = Primitive::kLoad;
          }
          break;
        case WorkloadMode::kSharded: {
          const std::uint32_t shards = std::max<std::uint32_t>(1, config.shards);
          const std::uint32_t group = (n + shards - 1) / shards;
          idx = tid / group;  // contiguous groups: shard locality
          break;
        }
        case WorkloadMode::kPrivateWalk: {
          const std::uint64_t lines =
              std::max<std::uint64_t>(1, config.lines_per_thread);
          idx = tid * lines + walk_cursor;
          walk_cursor = (walk_cursor + 1) % lines;
          break;
        }
      }

      OpResult r;
      const bool sampled = (local_ops & sample_mask) == 0;
      if (sampled) {
        const std::uint64_t t0 = rdtscp();
        r = execute(prim, cells[idx], ctx);
        const std::uint64_t t1 = rdtscp();
        slot.latency_samples.push_back(static_cast<double>(t1 - t0));
      } else {
        r = execute(prim, cells[idx], ctx);
      }
      ++local_ops;
      ++slot.ops;
      slot.attempts += r.attempts;
      const auto pi = static_cast<std::size_t>(prim);
      ++slot.ops_by_prim[pi];
      if (r.success) {
        ++slot.successes;
        ++slot.successes_by_prim[pi];
      } else {
        ++slot.failures;
      }

      if (config.work > 0) {
        std::uint64_t w = config.work;
        if (config.work_jitter > 0.0) {
          const double lo = static_cast<double>(w) * (1.0 - config.work_jitter);
          const double span =
              2.0 * static_cast<double>(w) * config.work_jitter;
          w = static_cast<std::uint64_t>(lo + rng.next_double() * span);
        }
        spin_work(w);
      }
    }
    if (perf && perf->available()) {
      perf->disable();
      const PerfSample sample = perf->read();
      if (const auto v = sample.get(PerfEvent::kCycles)) {
        slot.perf_cycles = *v;
        slot.perf_valid = true;
      }
      if (const auto v = sample.get(PerfEvent::kInstructions)) {
        slot.perf_instructions = *v;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) threads.emplace_back(worker, t);

  Rapl rapl;
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::duration<double>(options_.warmup_s));
  const EnergyReading e0 = rapl.read();
  const std::uint64_t c0 = rdtscp();
  phase.store(kMeasure, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(options_.measure_s));
  phase.store(kStop, std::memory_order_release);
  const std::uint64_t c1 = rdtscp();
  const EnergyReading e1 = rapl.read();
  for (auto& t : threads) t.join();

  MeasuredRun result;
  result.backend = "hw";
  result.machine = "host";
  result.duration_cycles = static_cast<double>(c1 - c0);
  result.freq_ghz = freq_ghz();
  result.threads.reserve(n);
  for (const auto& slot : slots) {
    if (slot.perf_valid) {
      result.perf_valid = true;
      result.perf_cycles += slot.perf_cycles;
      result.perf_instructions += slot.perf_instructions;
    }
    ThreadResult tr;
    tr.ops = slot.ops;
    tr.successes = slot.successes;
    tr.failures = slot.failures;
    tr.attempts = slot.attempts;
    tr.ops_by_prim = slot.ops_by_prim;
    tr.successes_by_prim = slot.successes_by_prim;
    if (!slot.latency_samples.empty()) {
      const Summary s = summarize(slot.latency_samples);
      tr.mean_latency_cycles = s.mean;
      tr.p99_latency_cycles = s.p99;
      tr.latency_tail_valid = true;
    }
    result.threads.push_back(tr);
  }
  if (rapl.available()) {
    const EnergyReading delta = e1 - e0;
    result.energy_valid = delta.package_valid;
    result.energy_package_j = delta.package_j;
    result.energy_dram_j = delta.dram_j;
  }
  return result;
}

}  // namespace am::bench
