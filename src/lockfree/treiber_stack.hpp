// Treiber stack over a fixed node pool with tagged indices.
//
// The canonical CAS-retry data structure: push/pop are CAS loops on one hot
// head word, so the structure's scalability is *exactly* what the paper's
// CASLOOP analysis predicts — which is why it is the case-study workload of
// bench_e4_lockfree. ABA is prevented by 32-bit tags (tagged.hpp); memory
// is a preallocated pool with a lock-free free list, so no reclamation
// scheme is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/cacheline.hpp"
#include "lockfree/tagged.hpp"

namespace am::lockfree {

template <typename T>
class TreiberStack {
 public:
  /// @param capacity maximum elements ever held at once; the pool is fixed.
  explicit TreiberStack(std::uint32_t capacity)
      : nodes_(std::make_unique<Node[]>(capacity)), capacity_(capacity) {
    // Thread the free list through the pool.
    for (std::uint32_t i = 0; i < capacity; ++i) {
      nodes_[i].next.store(
          i + 1 < capacity ? make_tagged(i + 1, 0) : kNullTagged,
          std::memory_order_relaxed);
    }
    free_.store(capacity > 0 ? make_tagged(0, 0) : kNullTagged,
                std::memory_order_relaxed);
  }

  /// Pushes @p value; returns false when the pool is exhausted.
  bool push(const T& value) {
    const std::uint32_t node = allocate();
    if (node == kNullIndex) return false;
    nodes_[node].value = value;
    TaggedIndex head = head_.load(std::memory_order_acquire);
    while (true) {
      nodes_[node].next.store(head, std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, retag(head, node),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return true;
      }
    }
  }

  /// Pops the most recent element, or nullopt when empty.
  std::optional<T> pop() {
    TaggedIndex head = head_.load(std::memory_order_acquire);
    while (true) {
      if (is_null(head)) return std::nullopt;
      const std::uint32_t node = index_of(head);
      const TaggedIndex next = nodes_[node].next.load(std::memory_order_acquire);
      if (head_.compare_exchange_weak(head, retag(head, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        T out = nodes_[node].value;
        release(node);
        return out;
      }
    }
  }

  bool empty() const noexcept {
    return is_null(head_.load(std::memory_order_acquire));
  }
  std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  struct alignas(kNoFalseSharingAlign) Node {
    std::atomic<TaggedIndex> next{kNullTagged};
    T value{};
  };

  std::uint32_t allocate() {
    TaggedIndex head = free_.load(std::memory_order_acquire);
    while (true) {
      if (is_null(head)) return kNullIndex;
      const std::uint32_t node = index_of(head);
      const TaggedIndex next = nodes_[node].next.load(std::memory_order_acquire);
      if (free_.compare_exchange_weak(head, retag(head, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return node;
      }
    }
  }

  void release(std::uint32_t node) {
    TaggedIndex head = free_.load(std::memory_order_acquire);
    while (true) {
      nodes_[node].next.store(head, std::memory_order_relaxed);
      if (free_.compare_exchange_weak(head, retag(head, node),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  alignas(kNoFalseSharingAlign) std::atomic<TaggedIndex> head_{kNullTagged};
  alignas(kNoFalseSharingAlign) std::atomic<TaggedIndex> free_{kNullTagged};
  std::unique_ptr<Node[]> nodes_;
  std::uint32_t capacity_;
};

}  // namespace am::lockfree
