// Tagged indices: the ABA armour for the lock-free structures.
//
// The classic pre-hazard-pointer technique the original Treiber/Michael-
// Scott implementations used: nodes live in a fixed pool and links carry
// {index, tag} packed into one 64-bit word; every successful CAS bumps the
// tag, so a pointer that was popped and re-pushed never compares equal to
// its stale copy.
#pragma once

#include <cstdint>

namespace am::lockfree {

/// Packed {index:32, tag:32}. Index kNullIndex encodes "null".
using TaggedIndex = std::uint64_t;

inline constexpr std::uint32_t kNullIndex = 0xffffffffu;

constexpr TaggedIndex make_tagged(std::uint32_t index, std::uint32_t tag) noexcept {
  return (static_cast<std::uint64_t>(tag) << 32) | index;
}
constexpr std::uint32_t index_of(TaggedIndex t) noexcept {
  return static_cast<std::uint32_t>(t);
}
constexpr std::uint32_t tag_of(TaggedIndex t) noexcept {
  return static_cast<std::uint32_t>(t >> 32);
}
constexpr bool is_null(TaggedIndex t) noexcept {
  return index_of(t) == kNullIndex;
}
/// Same index, incremented tag — what a successful CAS installs.
constexpr TaggedIndex retag(TaggedIndex t, std::uint32_t new_index) noexcept {
  return make_tagged(new_index, tag_of(t) + 1);
}

inline constexpr TaggedIndex kNullTagged = make_tagged(kNullIndex, 0);

}  // namespace am::lockfree
