#include "lockfree/stack_program.hpp"

namespace am::lockfree {

TreiberStackProgram::Core& TreiberStackProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) {
    const auto old = cores_.size();
    cores_.resize(c + 1);
    for (auto i = old; i < cores_.size(); ++i) {
      cores_[i].my_node = i + 1;  // node indices are 1-based (0 = empty)
    }
  }
  return cores_[c];
}

std::optional<sim::IssueRequest> TreiberStackProgram::next_op(sim::CoreId c,
                                                              Xoshiro256&) {
  Core& st = core(c);
  sim::IssueRequest r;
  r.work_before = st.next_work;
  st.next_work = 0;
  switch (st.state) {
    case St::kPushReadHead:
      r.prim = Primitive::kLoad;
      r.line = kHeadLine;
      return r;
    case St::kPushLinkNode:
      r.prim = Primitive::kStore;
      r.line = kNodeBase + st.my_node;
      r.store_value = st.seen_head;  // next link carries the full head word
      return r;
    case St::kPushCas:
      r.prim = Primitive::kCas;
      r.line = kHeadLine;
      r.cas_expected = st.seen_head;
      r.cas_desired = pack(st.my_node, tag_of(st.seen_head) + 1);
      return r;
    case St::kPopReadHead:
      r.prim = Primitive::kLoad;
      r.line = kHeadLine;
      return r;
    case St::kPopReadNext:
      r.prim = Primitive::kLoad;
      r.line = kNodeBase + index_of(st.seen_head);
      return r;
    case St::kPopCas:
      r.prim = Primitive::kCas;
      r.line = kHeadLine;
      r.cas_expected = st.seen_head;
      r.cas_desired = pack(index_of(st.seen_next), tag_of(st.seen_head) + 1);
      return r;
  }
  return std::nullopt;
}

void TreiberStackProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kPushReadHead:
      st.seen_head = r.observed;
      st.state = St::kPushLinkNode;
      break;
    case St::kPushLinkNode:
      st.state = St::kPushCas;
      break;
    case St::kPushCas:
      if (r.success) {
        // Push complete: do local work, then pop.
        st.state = St::kPopReadHead;
        st.next_work = work_;
      } else {
        st.state = St::kPushReadHead;
        st.next_work = spin_pause_;
      }
      break;
    case St::kPopReadHead:
      st.seen_head = r.observed;
      if (index_of(st.seen_head) == 0) {
        // Empty: someone else will push; retry after a pause.
        st.next_work = spin_pause_;
        break;
      }
      st.state = St::kPopReadNext;
      break;
    case St::kPopReadNext:
      st.seen_next = r.observed;
      st.state = St::kPopCas;
      break;
    case St::kPopCas:
      if (r.success) {
        // Pop complete: this core now owns the unlinked node.
        st.my_node = index_of(st.seen_head);
        st.state = St::kPushReadHead;
        st.next_work = work_;
      } else {
        st.state = St::kPopReadHead;
        st.next_work = spin_pause_;
      }
      break;
  }
}

std::uint64_t TreiberStackProgram::completed_ops(const sim::RunStats& stats) {
  std::uint64_t n = 0;
  for (const auto& t : stats.threads) {
    n += t.successes_by_prim[static_cast<std::size_t>(Primitive::kCas)];
  }
  return n;
}

}  // namespace am::lockfree
