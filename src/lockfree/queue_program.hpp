// The Michael-Scott queue as a simulator program.
//
// Where the Treiber stack funnels every operation through one hot head
// word, the MS queue splits producers onto the tail (+ the last node's
// next link) and consumers onto the head — two mostly independent hot
// lines. Under a balanced enqueue/dequeue mix the queue therefore sustains
// roughly twice the stack's completed operations: a structure-level
// consequence of the bouncing model that bench_e4_lockfree reports.
//
// Line layout: kTailLine, kHeadLine, node i's next-link on kNodeBase + i.
// Words pack {tag:48 | index:16} with 0 == null; every CAS bumps the tag
// (ABA armour). Core 0 initialises head/tail to the dummy node before the
// other cores start (they spin on head != 0).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/program.hpp"
#include "sim/sim_stats.hpp"

namespace am::lockfree {

class MsQueueProgram final : public sim::ThreadProgram {
 public:
  static constexpr sim::LineId kTailLine = 0;
  static constexpr sim::LineId kHeadLine = 1;
  static constexpr sim::LineId kNodeBase = 100;

  /// @param work local work after each completed queue operation
  MsQueueProgram(sim::Cycles work, sim::Cycles spin_pause = 30)
      : work_(work), spin_pause_(spin_pause) {}

  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

  /// Program-side completion counters (enqueues + dequeues per core).
  /// Cover the whole run — pair with warmup == 0.
  std::uint64_t completions(sim::CoreId core) const {
    return core < cores_.size() ? cores_[core].completions : 0;
  }
  std::uint64_t total_completions() const;

  static constexpr std::uint64_t pack(std::uint64_t index, std::uint64_t tag) {
    return (tag << 16) | index;
  }
  static constexpr std::uint64_t index_of(std::uint64_t word) {
    return word & 0xffff;
  }
  static constexpr std::uint64_t tag_of(std::uint64_t word) {
    return word >> 16;
  }

 private:
  // Dummy node index: one past the per-core nodes (core c owns c+1 at
  // start; the dummy rotates through pops like the hardware pool).
  static constexpr std::uint64_t dummy_index(std::uint32_t) { return 0xfff; }

  enum class St : std::uint8_t {
    // init (core 0 only): publish dummy, then everyone waits on head
    kInitNext, kInitTail, kInitHead, kWaitInit,
    // enqueue of my node
    kEnqResetNext,  // next[mine] := 0
    kEnqReadTail,   // t := tail
    kEnqReadNext,   // nx := next[t]
    kEnqLinkCas,    // CAS(next[t], 0 -> mine)
    kEnqSwingCas,   // CAS(tail, t -> mine), result ignored
    kEnqHelpCas,    // CAS(tail, t -> nx), then retry
    // dequeue
    kDeqReadHead,   // h := head
    kDeqReadTail,   // t := tail
    kDeqReadNext,   // nx := next[h]
    kDeqHelpCas,    // CAS(tail, t -> nx) when tail lags, then retry
    kDeqCas,        // CAS(head, h -> nx); success => own old dummy
  };
  struct Core {
    St state = St::kWaitInit;
    sim::Cycles next_work = 0;
    std::uint64_t my_node = 0;
    std::uint64_t seen_tail = 0;
    std::uint64_t seen_head = 0;
    std::uint64_t seen_next = 0;
    std::uint64_t completions = 0;
  };
  Core& core(sim::CoreId c);

  sim::Cycles work_;
  sim::Cycles spin_pause_;
  std::vector<Core> cores_;
};

}  // namespace am::lockfree
