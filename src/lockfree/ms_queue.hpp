// Michael-Scott two-lock-free FIFO queue over a fixed node pool with tagged
// indices (the original 1996 algorithm, pool edition).
//
// Contrast with the Treiber stack: enqueue and dequeue contend on *two*
// different hot words (tail and head), so the queue sustains roughly twice
// the stack's throughput under a balanced producer/consumer mix — a
// structure-level consequence of the paper's one-line bouncing analysis.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/cacheline.hpp"
#include "lockfree/tagged.hpp"

namespace am::lockfree {

template <typename T>
class MichaelScottQueue {
 public:
  /// @param capacity maximum queued elements; one pool node is the dummy.
  explicit MichaelScottQueue(std::uint32_t capacity)
      : nodes_(std::make_unique<Node[]>(capacity + 1)),
        capacity_(capacity + 1) {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      nodes_[i].next.store(
          i + 1 < capacity_ ? make_tagged(i + 1, 0) : kNullTagged,
          std::memory_order_relaxed);
    }
    // Node 0 becomes the initial dummy; the rest form the free list.
    free_.store(capacity_ > 1 ? make_tagged(1, 0) : kNullTagged,
                std::memory_order_relaxed);
    nodes_[0].next.store(kNullTagged, std::memory_order_relaxed);
    head_.store(make_tagged(0, 0), std::memory_order_relaxed);
    tail_.store(make_tagged(0, 0), std::memory_order_relaxed);
  }

  bool enqueue(const T& value) {
    const std::uint32_t node = allocate();
    if (node == kNullIndex) return false;
    nodes_[node].value = value;
    nodes_[node].next.store(kNullTagged, std::memory_order_relaxed);

    while (true) {
      TaggedIndex tail = tail_.load(std::memory_order_acquire);
      const std::uint32_t tail_idx = index_of(tail);
      TaggedIndex next = nodes_[tail_idx].next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (is_null(next)) {
        // Tail really is last: link the new node.
        if (nodes_[tail_idx].next.compare_exchange_weak(
                next, retag(next, node), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          // Swing the tail (may fail — someone else will help).
          tail_.compare_exchange_strong(tail, retag(tail, node),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
          return true;
        }
      } else {
        // Tail lagging: help swing it forward.
        tail_.compare_exchange_strong(tail, retag(tail, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
      }
    }
  }

  std::optional<T> dequeue() {
    while (true) {
      TaggedIndex head = head_.load(std::memory_order_acquire);
      const TaggedIndex tail = tail_.load(std::memory_order_acquire);
      const std::uint32_t head_idx = index_of(head);
      const TaggedIndex next = nodes_[head_idx].next.load(std::memory_order_acquire);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (head_idx == index_of(tail)) {
        if (is_null(next)) return std::nullopt;  // empty
        // Tail lagging behind a completed enqueue: help.
        TaggedIndex expected = tail;
        tail_.compare_exchange_strong(expected, retag(tail, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
        continue;
      }
      // Read the value before the CAS frees the dummy.
      T value = nodes_[index_of(next)].value;
      TaggedIndex expected = head;
      if (head_.compare_exchange_weak(expected, retag(head, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        release(head_idx);  // old dummy returns to the pool
        return value;
      }
    }
  }

  bool empty() const noexcept {
    const TaggedIndex head = head_.load(std::memory_order_acquire);
    return is_null(nodes_[index_of(head)].next.load(std::memory_order_acquire));
  }

 private:
  struct alignas(kNoFalseSharingAlign) Node {
    std::atomic<TaggedIndex> next{kNullTagged};
    T value{};
  };

  std::uint32_t allocate() {
    TaggedIndex head = free_.load(std::memory_order_acquire);
    while (true) {
      if (is_null(head)) return kNullIndex;
      const std::uint32_t node = index_of(head);
      const TaggedIndex next = nodes_[node].next.load(std::memory_order_acquire);
      if (free_.compare_exchange_weak(head, retag(head, index_of(next)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return node;
      }
    }
  }

  void release(std::uint32_t node) {
    TaggedIndex head = free_.load(std::memory_order_acquire);
    while (true) {
      nodes_[node].next.store(head, std::memory_order_relaxed);
      if (free_.compare_exchange_weak(head, retag(head, node),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  alignas(kNoFalseSharingAlign) std::atomic<TaggedIndex> head_{kNullTagged};
  alignas(kNoFalseSharingAlign) std::atomic<TaggedIndex> tail_{kNullTagged};
  alignas(kNoFalseSharingAlign) std::atomic<TaggedIndex> free_{kNullTagged};
  std::unique_ptr<Node[]> nodes_;
  std::uint32_t capacity_;
};

}  // namespace am::lockfree
