#include "lockfree/queue_program.hpp"

namespace am::lockfree {

namespace {
constexpr std::uint64_t kDummy = 0xfff;
}  // namespace

MsQueueProgram::Core& MsQueueProgram::core(sim::CoreId c) {
  if (c >= cores_.size()) {
    const auto old = cores_.size();
    cores_.resize(c + 1);
    for (auto i = old; i < cores_.size(); ++i) {
      cores_[i].my_node = i + 1;
      cores_[i].state = i == 0 ? St::kInitNext : St::kWaitInit;
    }
  }
  return cores_[c];
}

std::uint64_t MsQueueProgram::total_completions() const {
  std::uint64_t n = 0;
  for (const auto& c : cores_) n += c.completions;
  return n;
}

std::optional<sim::IssueRequest> MsQueueProgram::next_op(sim::CoreId c,
                                                         Xoshiro256&) {
  Core& st = core(c);
  sim::IssueRequest r;
  r.work_before = st.next_work;
  st.next_work = 0;
  switch (st.state) {
    case St::kInitNext:
      r.prim = Primitive::kStore;
      r.line = kNodeBase + kDummy;
      r.store_value = 0;
      return r;
    case St::kInitTail:
      r.prim = Primitive::kStore;
      r.line = kTailLine;
      r.store_value = pack(kDummy, 1);
      return r;
    case St::kInitHead:
      r.prim = Primitive::kStore;
      r.line = kHeadLine;
      r.store_value = pack(kDummy, 1);
      return r;
    case St::kWaitInit:
      r.prim = Primitive::kLoad;
      r.line = kHeadLine;
      return r;

    case St::kEnqResetNext:
      r.prim = Primitive::kStore;
      r.line = kNodeBase + st.my_node;
      r.store_value = 0;
      return r;
    case St::kEnqReadTail:
      r.prim = Primitive::kLoad;
      r.line = kTailLine;
      return r;
    case St::kEnqReadNext:
      r.prim = Primitive::kLoad;
      r.line = kNodeBase + index_of(st.seen_tail);
      return r;
    case St::kEnqLinkCas:
      r.prim = Primitive::kCas;
      r.line = kNodeBase + index_of(st.seen_tail);
      r.cas_expected = st.seen_next;  // observed null word (tagged)
      r.cas_desired = pack(st.my_node, tag_of(st.seen_next) + 1);
      return r;
    case St::kEnqSwingCas:
      r.prim = Primitive::kCas;
      r.line = kTailLine;
      r.cas_expected = st.seen_tail;
      r.cas_desired = pack(st.my_node, tag_of(st.seen_tail) + 1);
      return r;
    case St::kEnqHelpCas:
      r.prim = Primitive::kCas;
      r.line = kTailLine;
      r.cas_expected = st.seen_tail;
      r.cas_desired = pack(index_of(st.seen_next), tag_of(st.seen_tail) + 1);
      return r;

    case St::kDeqReadHead:
      r.prim = Primitive::kLoad;
      r.line = kHeadLine;
      return r;
    case St::kDeqReadTail:
      r.prim = Primitive::kLoad;
      r.line = kTailLine;
      return r;
    case St::kDeqReadNext:
      r.prim = Primitive::kLoad;
      r.line = kNodeBase + index_of(st.seen_head);
      return r;
    case St::kDeqHelpCas:
      r.prim = Primitive::kCas;
      r.line = kTailLine;
      r.cas_expected = st.seen_tail;
      r.cas_desired = pack(index_of(st.seen_next), tag_of(st.seen_tail) + 1);
      return r;
    case St::kDeqCas:
      r.prim = Primitive::kCas;
      r.line = kHeadLine;
      r.cas_expected = st.seen_head;
      r.cas_desired = pack(index_of(st.seen_next), tag_of(st.seen_head) + 1);
      return r;
  }
  return std::nullopt;
}

void MsQueueProgram::on_result(sim::CoreId c, const OpResult& r) {
  Core& st = core(c);
  switch (st.state) {
    case St::kInitNext: st.state = St::kInitTail; break;
    case St::kInitTail: st.state = St::kInitHead; break;
    case St::kInitHead: st.state = St::kEnqResetNext; break;
    case St::kWaitInit:
      if (r.observed != 0) {
        st.state = St::kEnqResetNext;
      } else {
        st.next_work = spin_pause_;
      }
      break;

    case St::kEnqResetNext:
      st.state = St::kEnqReadTail;
      break;
    case St::kEnqReadTail:
      st.seen_tail = r.observed;
      st.state = St::kEnqReadNext;
      break;
    case St::kEnqReadNext:
      st.seen_next = r.observed;
      st.state = index_of(st.seen_next) == 0 ? St::kEnqLinkCas
                                             : St::kEnqHelpCas;
      break;
    case St::kEnqLinkCas:
      if (r.success) {
        st.state = St::kEnqSwingCas;
      } else {
        st.state = St::kEnqReadTail;
        st.next_work = spin_pause_;
      }
      break;
    case St::kEnqSwingCas:
      // Success or not, the enqueue is complete (helpers fix a lag).
      ++st.completions;
      st.state = St::kDeqReadHead;
      st.next_work = work_;
      break;
    case St::kEnqHelpCas:
      st.state = St::kEnqReadTail;
      break;

    case St::kDeqReadHead:
      st.seen_head = r.observed;
      st.state = St::kDeqReadTail;
      break;
    case St::kDeqReadTail:
      st.seen_tail = r.observed;
      st.state = St::kDeqReadNext;
      break;
    case St::kDeqReadNext:
      st.seen_next = r.observed;
      if (index_of(st.seen_head) == index_of(st.seen_tail)) {
        if (index_of(st.seen_next) == 0) {
          // Empty: retry after a pause.
          st.state = St::kDeqReadHead;
          st.next_work = spin_pause_;
        } else {
          st.state = St::kDeqHelpCas;  // tail lagging
        }
      } else {
        st.state = St::kDeqCas;
      }
      break;
    case St::kDeqHelpCas:
      st.state = St::kDeqReadHead;
      break;
    case St::kDeqCas:
      if (r.success) {
        // The old dummy becomes this core's next enqueue node.
        st.my_node = index_of(st.seen_head);
        ++st.completions;
        st.state = St::kEnqResetNext;
        st.next_work = work_;
      } else {
        st.state = St::kDeqReadHead;
        st.next_work = spin_pause_;
      }
      break;
  }
}

}  // namespace am::lockfree
