// The Treiber stack as a simulator program: the protocol's coherence
// traffic (head reads, node-link stores, head CAS retries) runs on the
// MESI machine, so stack scalability emerges from line bouncing exactly as
// it does on hardware.
//
// Line layout: head word on kHeadLine; node i's next-link on
// kNodeBase + i. Head values pack {node index:16, tag:16} (0 = empty) and
// every successful CAS bumps the tag — the same ABA armour the hardware
// implementation uses. Each core owns one node at a time: it pushes its
// current node, then pops (acquiring ownership of whatever node it
// unlinked), alternating.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/program.hpp"
#include "sim/sim_stats.hpp"

namespace am::lockfree {

class TreiberStackProgram final : public sim::ThreadProgram {
 public:
  static constexpr sim::LineId kHeadLine = 0;
  static constexpr sim::LineId kNodeBase = 100;

  /// @param work cycles of local work between completed stack operations
  /// @param spin_pause pause before retrying after a lost CAS / empty pop
  TreiberStackProgram(sim::Cycles work, sim::Cycles spin_pause = 30)
      : work_(work), spin_pause_(spin_pause) {}

  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256& rng) override;
  void on_result(sim::CoreId core, const OpResult& r) override;

  /// Completed stack operations (pushes + pops) in @p stats: every
  /// successful CAS on the head is one completed operation.
  static std::uint64_t completed_ops(const sim::RunStats& stats);

  // Head-word packing: {tag:16 | index:16}; index 0 = empty stack.
  static constexpr std::uint64_t pack(std::uint64_t index, std::uint64_t tag) {
    return (tag << 16) | index;
  }
  static constexpr std::uint64_t index_of(std::uint64_t head) {
    return head & 0xffff;
  }
  static constexpr std::uint64_t tag_of(std::uint64_t head) {
    return head >> 16;
  }

 private:
  enum class St : std::uint8_t {
    kPushReadHead,   // LOAD head
    kPushLinkNode,   // STORE next[mine] = head word
    kPushCas,        // CAS(head, observed -> mine, tag+1)
    kPopReadHead,    // LOAD head (empty -> retry)
    kPopReadNext,    // LOAD next[top]
    kPopCas,         // CAS(head, observed -> next, tag+1)
  };
  struct Core {
    St state = St::kPushReadHead;
    sim::Cycles next_work = 0;
    std::uint64_t my_node = 0;       // node index this core currently owns
    std::uint64_t seen_head = 0;     // head word read this round
    std::uint64_t seen_next = 0;     // next word read during pop
  };
  Core& core(sim::CoreId c);

  sim::Cycles work_;
  sim::Cycles spin_pause_;
  std::vector<Core> cores_;
};

}  // namespace am::lockfree
