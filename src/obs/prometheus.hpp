// Prometheus text exposition (format version 0.0.4) for a metrics Registry,
// plus a small parser for the same format.
//
// render_prometheus() walks the registry in family order and emits the
// standard `# HELP` / `# TYPE` headers, counter/gauge sample lines, and
// cumulative `_bucket{le=...}` / `_sum` / `_count` triples for histograms.
// Derived scrape-time values (rolling qps, window percentiles) are appended
// by the caller through PromWriter, which handles escaping and keeps the
// family headers consistent.
//
// parse_prometheus_text() reads sample lines back into (name, labels,
// value) records. It exists for am_top — which is a Prometheus *consumer*
// rendering a terminal dashboard — and for the golden-output tests, which
// round-trip the exposition to prove it stays machine-readable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace am::obs::metrics {

/// Incremental exposition writer. Families must be emitted contiguously;
/// help/type headers are written once per family.
class PromWriter {
 public:
  explicit PromWriter(std::string& out) : out_(out) {}

  /// Starts (or continues) a family; writes HELP/TYPE on first sight.
  void family(std::string_view name, std::string_view help, Type type);
  /// One sample line: name (+ optional suffix like "_bucket"), labels, value.
  void sample(std::string_view name, const Labels& labels, double value,
              std::string_view suffix = "");
  void sample(std::string_view name, const Labels& labels,
              std::uint64_t value, std::string_view suffix = "");

  static std::string escape_label(std::string_view v);

 private:
  std::string& out_;
  std::string current_family_;
};

/// Renders every instrument of @p registry in exposition order.
std::string render_prometheus(const Registry& registry);
/// Same, appending into @p w (for callers mixing in derived families).
void render_prometheus(const Registry& registry, PromWriter& w);

/// One parsed sample line.
struct PromSample {
  std::string name;                          ///< includes _bucket/_sum/_count
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses exposition text; comment/blank lines are skipped, malformed
/// sample lines are dropped (a scraper must survive partial garbage).
std::vector<PromSample> parse_prometheus_text(std::string_view text);

/// First sample matching @p name with every label pair of @p labels present
/// (extra labels on the sample are allowed). nullopt when absent.
std::optional<double> find_sample(
    const std::vector<PromSample>& samples, std::string_view name,
    const std::map<std::string, std::string>& labels = {});

}  // namespace am::obs::metrics
