#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace am::obs::metrics {

namespace {

/// Sample-line value rendering: integers exact, doubles via %.10g.
std::string render_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += PromWriter::escape_label(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string PromWriter::escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void PromWriter::family(std::string_view name, std::string_view help,
                        Type type) {
  if (current_family_ == name) return;
  current_family_ = std::string(name);
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += to_string(type);
  out_ += '\n';
}

void PromWriter::sample(std::string_view name, const Labels& labels,
                        double value, std::string_view suffix) {
  out_ += name;
  out_ += suffix;
  out_ += render_labels(labels);
  out_ += ' ';
  out_ += render_value(value);
  out_ += '\n';
}

void PromWriter::sample(std::string_view name, const Labels& labels,
                        std::uint64_t value, std::string_view suffix) {
  out_ += name;
  out_ += suffix;
  out_ += render_labels(labels);
  out_ += ' ';
  out_ += std::to_string(value);
  out_ += '\n';
}

void render_prometheus(const Registry& registry, PromWriter& w) {
  for (const Instrument* inst : registry.instruments()) {
    w.family(inst->name, inst->help, inst->type);
    switch (inst->type) {
      case Type::kCounter:
        w.sample(inst->name, inst->labels, inst->counter->value());
        break;
      case Type::kGauge:
        w.sample(inst->name, inst->labels, inst->gauge->value());
        break;
      case Type::kHistogram: {
        const auto buckets = inst->histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          // Empty tail buckets are elided (after the last non-zero bucket
          // everything is identical to the +Inf line), which keeps a 48-
          // bucket histogram readable; cumulative semantics stay exact.
          cumulative += buckets[i];
          if (buckets[i] == 0) continue;
          Labels with_le = inst->labels;
          with_le.emplace_back(
              "le", std::to_string(Histogram::bucket_bound(i)));
          w.sample(inst->name, with_le, cumulative, "_bucket");
        }
        Labels inf = inst->labels;
        inf.emplace_back("le", "+Inf");
        w.sample(inst->name, inf, cumulative, "_bucket");
        w.sample(inst->name, inst->labels, inst->histogram->sum(), "_sum");
        w.sample(inst->name, inst->labels, cumulative, "_count");
        break;
      }
    }
  }
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  PromWriter w(out);
  render_prometheus(registry, w);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

std::vector<PromSample> parse_prometheus_text(std::string_view text) {
  std::vector<PromSample> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty() || line.front() == '#') continue;

    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0 || i >= line.size()) continue;
    s.name = std::string(line.substr(0, i));

    if (line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          i = line.size();
          break;
        }
        std::string key(line.substr(i, eq - i));
        std::string value;
        std::size_t j = eq + 2;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < line.size()) {
            ++j;
            value += line[j] == 'n' ? '\n' : line[j];
          } else {
            value += line[j];
          }
          ++j;
        }
        if (j >= line.size()) {
          i = line.size();
          break;
        }
        s.labels.emplace(std::move(key), std::move(value));
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') continue;  // malformed
      ++i;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) continue;
    const std::string value_str(line.substr(i));
    if (value_str == "+Inf") {
      s.value = HUGE_VAL;
    } else if (value_str == "-Inf") {
      s.value = -HUGE_VAL;
    } else if (value_str == "NaN") {
      s.value = NAN;
    } else {
      char* end = nullptr;
      s.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str()) continue;  // no number parsed
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<double> find_sample(
    const std::vector<PromSample>& samples, std::string_view name,
    const std::map<std::string, std::string>& labels) {
  for (const PromSample& s : samples) {
    if (s.name != name) continue;
    bool match = true;
    for (const auto& [k, v] : labels) {
      const auto it = s.labels.find(k);
      if (it == s.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return s.value;
  }
  return std::nullopt;
}

}  // namespace am::obs::metrics
