// Structured event tracing for the coherence simulator.
//
// The simulator's argument is about *seeing* the line hand-off process:
// which core held a line, how long waiters queued, which supply class
// served each transfer. TraceSink is the typed seam that exposes that
// process: the Machine emits one TraceEvent per protocol step and a sink
// renders them — as human-readable text (TextTraceSink, the historical
// `set_trace` format) or as Chrome trace-event JSON (ChromeTraceSink)
// loadable in Perfetto / chrome://tracing, with one track per core, one
// per touched line, and flow arrows linking each request to its grant.
//
// The layer sits below the simulator: it depends only on POD identifiers
// (core/line ids are plain integers here), so am_sim can link against it
// without a dependency cycle. Event emission is guarded by a single
// null-pointer check in the Machine; with no sink attached tracing costs
// nothing on the hot path.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

namespace am::obs {

/// One step of the coherence hand-off process.
enum class TraceEventKind : std::uint8_t {
  kIssue,       ///< a core submits a request for a line
  kGrant,       ///< the directory (or a local fast path) serves the request
  kOpDone,      ///< the primitive completed (success or single-shot failure)
  kRetry,       ///< a CAS-loop attempt failed; the core re-requests the line
  kInvalidate,  ///< a core's copy was invalidated by another core's RFO
  kEvict,       ///< a core's copy left the cache for capacity reasons
  kDrain,       ///< a buffered store left the core's store buffer (TSO only)
};

const char* to_string(TraceEventKind k) noexcept;

/// Structured trace record. Field validity depends on `kind`; unused
/// fields are zero. Identifiers are plain integers so this header needs
/// nothing from the simulator.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kIssue;
  std::uint64_t time = 0;     ///< simulator cycle of the event
  std::uint32_t core = 0;     ///< acting / affected core
  std::uint64_t line = 0;     ///< cache line
  std::uint64_t req_id = 0;   ///< links issue -> grant -> done/retry chains
  std::uint8_t prim = 0;      ///< am::Primitive (issue/done/retry)
  std::uint8_t supply = 0;    ///< sim::Supply of the transfer (grant)
  bool success = false;       ///< op outcome (done)
  std::uint64_t value = 0;    ///< post-op line value (done/retry)
  std::uint64_t xfer_cycles = 0;  ///< transfer latency charged (grant)
  std::uint32_t queue_depth = 0;  ///< waiters left queued at grant time
  std::uint64_t latency = 0;      ///< issue -> completion cycles (done)
  std::uint64_t hold_cycles = 0;  ///< grant -> release cycles (done/retry)
};

/// Context for one Machine::run call; lets a single sink span a sweep of
/// runs (each run is laid out after the previous one on the timeline).
struct TraceRunInfo {
  std::string machine;            ///< machine/preset name
  std::uint32_t active_cores = 0;
  std::uint64_t warmup_cycles = 0;
  std::uint64_t measure_cycles = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_run_begin(const TraceRunInfo& info) { (void)info; }
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void on_run_end() {}
};

/// Human-readable one-line-per-event sink; grant/done lines keep the
/// historical `Machine::set_trace` format so existing tooling and tests
/// continue to match.
class TextTraceSink final : public TraceSink {
 public:
  explicit TextTraceSink(std::ostream& os) : os_(os) {}
  void on_event(const TraceEvent& event) override;

 private:
  std::ostream& os_;
};

/// Chrome trace-event JSON (the "JSON Array Format" chrome://tracing and
/// Perfetto load). Emits:
///   - `X` complete events on per-core tracks (pid 1): one per finished
///     operation, spanning issue -> completion;
///   - `X` complete events on per-line tracks (pid 2): one per line-slot
///     hold, named after the supply class that served the grant;
///   - `s`/`f` flow events linking each request's issue to its grant;
///   - `i` instant events for invalidations, evictions and CAS retries;
///   - `M` metadata events naming processes and tracks.
/// Timestamps are simulator cycles written as microseconds (1 cy == 1 us
/// on the viewer's axis). finish() closes the JSON array; the destructor
/// calls it if the owner did not.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() override;

  void on_run_begin(const TraceRunInfo& info) override;
  void on_event(const TraceEvent& event) override;
  void on_run_end() override;

  /// Writes the closing bracket. Idempotent.
  void finish();

 private:
  void emit_prefix(const char* ph, const char* name, const char* cat,
                   std::uint64_t ts, std::uint32_t pid, std::uint64_t tid);
  void ensure_track(std::uint32_t pid, std::uint64_t tid, const char* prefix);

  std::ostream& os_;
  bool finished_ = false;
  bool first_event_ = true;
  std::uint64_t base_ = 0;      ///< timeline offset of the current run
  std::uint64_t max_ts_ = 0;    ///< largest offset timestamp written
  std::unordered_set<std::uint64_t> named_tracks_;
};

/// Serializes a shared sink behind a mutex. Trace sinks are written for a
/// single simulator thread; a server whose worker pool runs concurrent
/// simulate requests against one trace file wraps the file sink in this so
/// whole run-begin/events/run-end spans interleave at event granularity
/// without corrupting the underlying stream.
class SynchronizedTraceSink final : public TraceSink {
 public:
  explicit SynchronizedTraceSink(TraceSink& inner) : inner_(inner) {}

  void on_run_begin(const TraceRunInfo& info) override;
  void on_event(const TraceEvent& event) override;
  void on_run_end() override;

 private:
  std::mutex mu_;
  TraceSink& inner_;
};

/// ChromeTraceSink bound to a file it owns. `ok()` is false when the file
/// could not be opened.
class ChromeTraceFileSink final : public TraceSink {
 public:
  explicit ChromeTraceFileSink(const std::string& path);
  ~ChromeTraceFileSink() override;

  bool ok() const noexcept { return static_cast<bool>(file_); }
  void on_run_begin(const TraceRunInfo& info) override;
  void on_event(const TraceEvent& event) override;
  void on_run_end() override;

 private:
  std::ofstream file_;
  std::unique_ptr<ChromeTraceSink> sink_;  ///< null when the open failed
};

}  // namespace am::obs
