#include "obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace am::obs::metrics {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_thread{0};

}  // namespace

std::size_t this_thread_shard() noexcept {
  // Round-robin slot assignment beats hashing thread ids: consecutive pool
  // threads land on distinct shards by construction, so a worker pool up to
  // kShards wide never shares a counter line.
  thread_local const std::size_t slot =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double bucket_percentile(
    const std::array<std::uint64_t, Histogram::kBuckets>& buckets,
    double q) noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double target = (q / 100.0) * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t before = seen;
    seen += buckets[i];
    if (static_cast<double>(seen) < target) continue;
    if (i == 0) return 0.0;  // the zero bucket
    // Geometric interpolation across the bucket's [2^(i-1), 2^i) span.
    const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(i));
    const double frac =
        (target - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lo * std::pow(hi / lo, std::min(1.0, std::max(0.0, frac)));
  }
  // Unreachable when total > 0; keep the compiler satisfied.
  return std::ldexp(1.0, static_cast<int>(buckets.size()));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

const char* to_string(Type t) noexcept {
  switch (t) {
    case Type::kCounter: return "counter";
    case Type::kGauge: return "gauge";
    case Type::kHistogram: return "histogram";
  }
  return "?";
}

std::string Instrument::key() const {
  std::string k = name;
  if (labels.empty()) return k;
  k += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) k += ',';
    k += labels[i].first;
    k += "=\"";
    k += labels[i].second;
    k += '"';
  }
  k += '}';
  return k;
}

Instrument& Registry::intern(std::string_view name, std::string_view help,
                             Labels&& labels, Type type) {
  Instrument probe;
  probe.name = std::string(name);
  probe.labels = std::move(labels);
  std::string key = probe.key();

  const std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second->type != type) {
      throw std::logic_error("metric '" + key + "' re-registered as " +
                             std::string(to_string(type)) + ", was " +
                             to_string(it->second->type));
    }
    return *it->second;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = std::move(probe.name);
  inst->labels = std::move(probe.labels);
  inst->help = std::string(help);
  inst->type = type;
  switch (type) {
    case Type::kCounter: inst->counter = std::make_unique<Counter>(); break;
    case Type::kGauge: inst->gauge = std::make_unique<Gauge>(); break;
    case Type::kHistogram:
      inst->histogram = std::make_unique<Histogram>();
      break;
  }
  Instrument& ref = *inst;
  instruments_.emplace(std::move(key), std::move(inst));
  return ref;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *intern(name, help, std::move(labels), Type::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *intern(name, help, std::move(labels), Type::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels) {
  return *intern(name, help, std::move(labels), Type::kHistogram).histogram;
}

std::vector<const Instrument*> Registry::instruments() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Instrument*> out;
  out.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) out.push_back(inst.get());
  return out;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

Registry& default_registry() {
  static Registry* registry = new Registry();  // immortal: no exit-order races
  return *registry;
}

}  // namespace am::obs::metrics
