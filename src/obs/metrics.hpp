// Process-wide telemetry registry: counters, gauges and log2 histograms.
//
// The hot path is itself an application of the source paper's thesis. A
// telemetry counter is the canonical high-contention shared object: every
// worker thread bumps it on every request. The paper shows that on modern
// machines an unconditional fetch-and-add sustains throughput where a
// CAS loop collapses under contention — so Counter::inc() is exactly one
// relaxed fetch_add, never a lock and never a compare-exchange retry. On
// top of that, each instrument stripes its state over cache-line-padded
// per-thread-slot shards (the same Padded discipline the measurement
// harness uses), so concurrent writers usually touch *different* lines and
// the fetch-add mostly runs in the paper's low-contention regime. Reads
// (scrapes) sum the shards; they are allowed to be racy-but-monotonic.
//
// Registration is the cold path: Registry::counter()/gauge()/histogram()
// take a mutex, intern the (name, labels) key and hand back a reference
// that stays valid for the registry's lifetime. Callers cache the
// reference once and never touch the map again.
//
// The layer depends only on am_common, so every other library (sim, sweep,
// service) can publish into the default registry without dependency cycles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/cacheline.hpp"

namespace am::obs::metrics {

/// Shards per instrument. Each live thread is assigned one slot round-robin;
/// with typical worker-pool widths (<= 16) every thread owns a private line.
inline constexpr std::size_t kShards = 16;

/// This thread's shard slot (assigned round-robin at first use).
std::size_t this_thread_shard() noexcept;

/// Process-wide kill switch checked by the *coarse* publication points
/// (per-run flushes, per-point counters); individual inc() calls are cheap
/// enough that instrumented layers do not test it per event. Default on.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonic counter. inc() is one relaxed fetch-add on a padded per-shard
/// slot — wait-free, no CAS loop, no shared line in the common case.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[this_thread_shard()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  /// Racy-but-monotonic sum over shards (scrape path).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(kNoFalseSharingAlign) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kShards> shards_{};
};

/// Point-in-time value (set wins over add; both are single atomic ops).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log2 histogram of non-negative integer observations
/// (latencies in microseconds, sizes, cycle counts). Bucket i counts values
/// v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 counts
/// exactly v == 0. Buckets are monotonic counters, which is what makes
/// rolling-window percentiles a *subtraction* of two snapshots (see
/// rolling.hpp) instead of a lock-protected ring of samples.
class Histogram {
 public:
  /// 0, 1, [2,4), ... [2^46, 2^47): covers ~1.4e14 — weeks in microseconds.
  static constexpr std::size_t kBuckets = 48;

  void observe(std::uint64_t v) noexcept {
    Shard& s = shards_[this_thread_shard()];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket i (2^i - 1); the last bucket is
  /// unbounded and rendered as +Inf.
  static std::uint64_t bucket_bound(std::size_t i) noexcept {
    return i + 1 >= kBuckets ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << i) - 1;
  }

  /// Racy-but-monotonic per-bucket totals (scrape/snapshot path).
  std::array<std::uint64_t, kBuckets> bucket_counts() const noexcept;
  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

 private:
  struct alignas(kNoFalseSharingAlign) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Percentile estimate (q in [0,100]) from a log2 bucket distribution,
/// geometrically interpolated inside the winning bucket. Shared by the
/// exposition layer and the rolling-window views.
double bucket_percentile(const std::array<std::uint64_t, Histogram::kBuckets>&
                             buckets,
                         double q) noexcept;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(Type t) noexcept;

using Labels = std::vector<std::pair<std::string, std::string>>;

/// One registered instrument. Stable address for the registry's lifetime.
struct Instrument {
  std::string name;    ///< metric family name (am_requests_total)
  Labels labels;       ///< label set distinguishing it within the family
  std::string help;    ///< family help text (first registration wins)
  Type type = Type::kCounter;

  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;

  /// `name{k="v",...}` (no suffix when unlabeled) — the exposition and
  /// snapshot identity.
  std::string key() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument for (name, labels), creating it on first use.
  /// Re-registration with a different type throws std::logic_error — a
  /// metric name means one thing per process.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {});

  /// Instruments in exposition order (family name, then label key). The
  /// pointers stay valid forever; the vector is a snapshot of the current
  /// registration set.
  std::vector<const Instrument*> instruments() const;

  std::size_t size() const;

 private:
  Instrument& intern(std::string_view name, std::string_view help,
                     Labels&& labels, Type type);

  mutable std::mutex mu_;
  /// Keyed by Instrument::key(); map order is exposition order.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

/// The process-wide registry every layer publishes into by default.
Registry& default_registry();

}  // namespace am::obs::metrics
