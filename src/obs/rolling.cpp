#include "obs/rolling.hpp"

namespace am::obs::metrics {

RollingWindows::RollingWindows(const Registry& registry, std::size_t capacity)
    : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {}

void RollingWindows::sample(std::uint64_t now_ms) {
  Snapshot snap;
  snap.t_ms = now_ms;
  for (const Instrument* inst : registry_.instruments()) {
    switch (inst->type) {
      case Type::kCounter:
        snap.counters.emplace(inst->counter.get(), inst->counter->value());
        break;
      case Type::kHistogram: {
        HistSnap h;
        h.buckets = inst->histogram->bucket_counts();
        h.sum = inst->histogram->sum();
        snap.histograms.emplace(inst->histogram.get(), std::move(h));
        break;
      }
      case Type::kGauge:
        break;  // gauges are point-in-time; windows do not apply
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (!ring_.empty() && ring_.back().t_ms >= now_ms) return;
  ring_.push_back(std::move(snap));
  while (ring_.size() > capacity_) ring_.pop_front();
}

const RollingWindows::Snapshot* RollingWindows::baseline(
    double window_s, std::uint64_t now_ms) const {
  if (ring_.empty()) return nullptr;
  const auto span = static_cast<std::uint64_t>(window_s * 1000.0);
  const std::uint64_t start = now_ms >= span ? now_ms - span : 0;
  const Snapshot* best = nullptr;
  // Newest snapshot at or before the window start; the ring is tiny (a few
  // hundred entries), a linear scan from the back is cheap and exact.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->t_ms <= start) {
      best = &*it;
      break;
    }
  }
  // Window start predates the ring: use the oldest snapshot we have and let
  // the caller see the honest (shorter) span via `seconds`.
  if (best == nullptr) best = &ring_.front();
  return best->t_ms < now_ms ? best : nullptr;
}

std::optional<RollingWindows::CounterDelta> RollingWindows::delta(
    const Counter& c, double window_s, std::uint64_t now_ms) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Snapshot* base = baseline(window_s, now_ms);
  if (base == nullptr) return std::nullopt;
  // Instruments registered after the baseline snapshot started from zero,
  // so a missing entry contributes a zero baseline — which is exact.
  std::uint64_t then = 0;
  if (const auto it = base->counters.find(&c); it != base->counters.end()) {
    then = it->second;
  }
  const std::uint64_t now_value = c.value();
  CounterDelta out;
  out.count = now_value >= then ? now_value - then : 0;
  out.seconds = static_cast<double>(now_ms - base->t_ms) / 1000.0;
  return out;
}

std::optional<WindowHistogram> RollingWindows::histogram_delta(
    const Histogram& h, double window_s, std::uint64_t now_ms) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Snapshot* base = baseline(window_s, now_ms);
  if (base == nullptr) return std::nullopt;
  static const HistSnap kZero{};
  const HistSnap* then = &kZero;
  if (const auto it = base->histograms.find(&h);
      it != base->histograms.end()) {
    then = &it->second;
  }
  const auto now_buckets = h.bucket_counts();
  const std::uint64_t now_sum = h.sum();
  WindowHistogram out;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t b = then->buckets[i];
    out.buckets[i] = now_buckets[i] >= b ? now_buckets[i] - b : 0;
    out.count += out.buckets[i];
  }
  out.sum = now_sum >= then->sum ? now_sum - then->sum : 0;
  out.seconds = static_cast<double>(now_ms - base->t_ms) / 1000.0;
  return out;
}

std::size_t RollingWindows::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace am::obs::metrics
