// Rolling time-window views over a metrics Registry.
//
// The registry's counters and histogram buckets are monotonic, which turns
// "qps over the last 10 seconds" into pure arithmetic: keep a ring of
// timestamped snapshots (one per epoch) and subtract the snapshot nearest
// the window start from the live value. The hot path stays the registry's
// lock-free fetch-add; this layer only ever *reads*, on a sampler cadence
// (one snapshot per epoch) and at scrape time.
//
// The clock is injected as explicit now_ms arguments so tests can step a
// simulated clock through epoch boundaries and assert exact window math;
// the server drives it from steady_clock.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace am::obs::metrics {

/// Histogram activity inside one window: per-bucket deltas plus the elapsed
/// time they cover. percentile() interpolates inside the winning bucket.
struct WindowHistogram {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double seconds = 0.0;  ///< wall time the delta actually spans

  double percentile(double q) const noexcept {
    return bucket_percentile(buckets, q);
  }
  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class RollingWindows {
 public:
  /// @param registry  instruments to snapshot (instruments registered later
  ///                  join the ring on the next sample()).
  /// @param capacity  ring depth; capacity * sample cadence bounds the
  ///                  longest answerable window (256 @ 500ms = ~128s).
  explicit RollingWindows(const Registry& registry, std::size_t capacity = 256);

  /// Takes one snapshot stamped @p now_ms. Out-of-order stamps are ignored.
  void sample(std::uint64_t now_ms);

  /// Counter delta over (approximately) the last @p window_s seconds:
  /// live value minus the newest snapshot at least window_s old. Returns
  /// nullopt when no snapshot exists yet (caller falls back to lifetime).
  /// The rate denominator is the *actual* span covered, so a ring that is
  /// still warming up reports honest partial-window rates.
  struct CounterDelta {
    std::uint64_t count = 0;
    double seconds = 0.0;
    double rate() const noexcept {
      return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
    }
  };
  std::optional<CounterDelta> delta(const Counter& c, double window_s,
                                    std::uint64_t now_ms) const;

  /// Histogram bucket deltas over the last @p window_s seconds.
  std::optional<WindowHistogram> histogram_delta(const Histogram& h,
                                                 double window_s,
                                                 std::uint64_t now_ms) const;

  std::size_t samples() const;

 private:
  struct HistSnap {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t sum = 0;
  };
  struct Snapshot {
    std::uint64_t t_ms = 0;
    /// Keyed by instrument address — instruments are never destroyed.
    std::unordered_map<const Counter*, std::uint64_t> counters;
    std::unordered_map<const Histogram*, HistSnap> histograms;
  };

  /// Newest snapshot with t_ms <= now_ms - window, else the oldest one.
  const Snapshot* baseline(double window_s, std::uint64_t now_ms) const;

  const Registry& registry_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Snapshot> ring_;  ///< oldest at front
};

}  // namespace am::obs::metrics
