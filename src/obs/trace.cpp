#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace am::obs {

namespace {

// Local name tables: this layer sits below am_sim/am_atomics, so it keeps
// its own copies of the display names (values match to_string(Primitive)
// and to_string(sim::Supply); the trace tests pin them together).
const char* prim_name(std::uint8_t p) noexcept {
  static constexpr const char* kNames[] = {"LOAD", "STORE",   "SWP",  "TAS",
                                           "FAA",  "CAS",     "CASLOOP",
                                           "FENCE"};
  return p < 8 ? kNames[p] : "?";
}

const char* supply_name(std::uint8_t s) noexcept {
  static constexpr const char* kNames[] = {"local-hit", "near", "far",
                                           "memory"};
  return s < 4 ? kNames[s] : "?";
}

}  // namespace

const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kIssue: return "issue";
    case TraceEventKind::kGrant: return "grant";
    case TraceEventKind::kOpDone: return "done";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kInvalidate: return "inval";
    case TraceEventKind::kEvict: return "evict";
    case TraceEventKind::kDrain: return "drain";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TextTraceSink
// ---------------------------------------------------------------------------

void TextTraceSink::on_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kIssue:
      os_ << e.time << " issue core" << e.core << ' ' << prim_name(e.prim)
          << " line=" << e.line << '\n';
      break;
    case TraceEventKind::kGrant:
      // Historical Machine::set_trace format (plus the queue depth).
      os_ << e.time << " grant line=" << e.line << " -> core" << e.core << ' '
          << supply_name(e.supply) << " xfer=" << e.xfer_cycles
          << " q=" << e.queue_depth << '\n';
      break;
    case TraceEventKind::kOpDone:
      os_ << e.time << " done  core" << e.core << ' ' << prim_name(e.prim)
          << " line=" << e.line << " ok=" << (e.success ? 1 : 0)
          << " val=" << e.value << '\n';
      break;
    case TraceEventKind::kRetry:
      os_ << e.time << " retry core" << e.core << ' ' << prim_name(e.prim)
          << " line=" << e.line << " val=" << e.value << '\n';
      break;
    case TraceEventKind::kInvalidate:
      os_ << e.time << " inval line=" << e.line << " core" << e.core << '\n';
      break;
    case TraceEventKind::kEvict:
      os_ << e.time << " evict line=" << e.line << " core" << e.core << '\n';
      break;
    case TraceEventKind::kDrain:
      os_ << e.time << " drain core" << e.core << " line=" << e.line
          << " val=" << e.value << " depth=" << e.queue_depth << '\n';
      break;
  }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kCoresPid = 1;
constexpr std::uint32_t kLinesPid = 2;
}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  os_ << "[";
}

ChromeTraceSink::~ChromeTraceSink() { finish(); }

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]\n";
  os_.flush();
}

void ChromeTraceSink::emit_prefix(const char* ph, const char* name,
                                  const char* cat, std::uint64_t ts,
                                  std::uint32_t pid, std::uint64_t tid) {
  os_ << (first_event_ ? "\n" : ",\n");
  first_event_ = false;
  os_ << "{\"name\":\"" << name << "\",\"cat\":\"" << cat << "\",\"ph\":\""
      << ph << "\",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid;
  max_ts_ = std::max(max_ts_, ts);
}

void ChromeTraceSink::ensure_track(std::uint32_t pid, std::uint64_t tid,
                                   const char* prefix) {
  const std::uint64_t key = (static_cast<std::uint64_t>(pid) << 56) ^ tid;
  if (!named_tracks_.insert(key).second) return;
  emit_prefix("M", "thread_name", "__metadata", 0, pid, tid);
  os_ << ",\"args\":{\"name\":\"" << prefix << ' ' << tid << "\"}}";
}

void ChromeTraceSink::on_run_begin(const TraceRunInfo& info) {
  if (named_tracks_.empty()) {
    emit_prefix("M", "process_name", "__metadata", 0, kCoresPid, 0);
    os_ << ",\"args\":{\"name\":\"cores\"}}";
    emit_prefix("M", "process_name", "__metadata", 0, kLinesPid, 0);
    os_ << ",\"args\":{\"name\":\"lines\"}}";
  }
  // Lay runs out back to back with a visible gap between them.
  base_ = max_ts_ == 0 ? 0 : max_ts_ + 1000;
  emit_prefix("i", "run_begin", "run", base_, kCoresPid, 0);
  os_ << ",\"s\":\"g\",\"args\":{\"machine\":\"" << json_escape(info.machine)
      << "\",\"active_cores\":" << info.active_cores
      << ",\"warmup_cycles\":" << info.warmup_cycles
      << ",\"measure_cycles\":" << info.measure_cycles << "}}";
}

void ChromeTraceSink::on_run_end() {}

void ChromeTraceSink::on_event(const TraceEvent& e) {
  const std::uint64_t ts = base_ + e.time;
  switch (e.kind) {
    case TraceEventKind::kIssue:
    case TraceEventKind::kRetry: {
      // Flow start: an arrow from the request to the grant that serves it.
      ensure_track(kCoresPid, e.core, "core");
      emit_prefix("s", "req", "flow", ts, kCoresPid, e.core);
      os_ << ",\"id\":" << e.req_id << "}";
      if (e.kind == TraceEventKind::kRetry) {
        emit_prefix("i", "CAS retry", "op", ts, kCoresPid, e.core);
        os_ << ",\"s\":\"t\",\"args\":{\"line\":" << e.line
            << ",\"value\":" << e.value << "}}";
        if (e.hold_cycles > 0) {
          // The failed attempt still held the line slot; show the hold.
          ensure_track(kLinesPid, e.line, "line");
          emit_prefix("X", supply_name(e.supply), "hold",
                      ts - std::min(ts, e.hold_cycles), kLinesPid, e.line);
          os_ << ",\"dur\":" << std::max<std::uint64_t>(1, e.hold_cycles)
              << ",\"args\":{\"core\":" << e.core << ",\"ok\":false}}";
        }
      }
      break;
    }
    case TraceEventKind::kGrant: {
      // Flow finish lands on the line's track: request -> line hand-off.
      ensure_track(kLinesPid, e.line, "line");
      emit_prefix("f", "req", "flow", ts, kLinesPid, e.line);
      os_ << ",\"bp\":\"e\",\"id\":" << e.req_id << "}";
      break;
    }
    case TraceEventKind::kOpDone: {
      ensure_track(kCoresPid, e.core, "core");
      const std::uint64_t lat = std::max<std::uint64_t>(1, e.latency);
      emit_prefix("X", prim_name(e.prim), "op", ts - std::min(ts, e.latency),
                  kCoresPid, e.core);
      os_ << ",\"dur\":" << lat << ",\"args\":{\"line\":" << e.line
          << ",\"ok\":" << (e.success ? "true" : "false")
          << ",\"value\":" << e.value << ",\"req_id\":" << e.req_id << "}}";
      if (e.hold_cycles > 0) {
        ensure_track(kLinesPid, e.line, "line");
        emit_prefix("X", supply_name(e.supply), "hold",
                    ts - std::min(ts, e.hold_cycles), kLinesPid, e.line);
        os_ << ",\"dur\":" << std::max<std::uint64_t>(1, e.hold_cycles)
            << ",\"args\":{\"core\":" << e.core << "}}";
      }
      break;
    }
    case TraceEventKind::kInvalidate: {
      ensure_track(kLinesPid, e.line, "line");
      emit_prefix("i", "invalidate", "coherence", ts, kLinesPid, e.line);
      os_ << ",\"s\":\"t\",\"args\":{\"core\":" << e.core << "}}";
      break;
    }
    case TraceEventKind::kEvict: {
      ensure_track(kLinesPid, e.line, "line");
      emit_prefix("i", "evict", "coherence", ts, kLinesPid, e.line);
      os_ << ",\"s\":\"t\",\"args\":{\"core\":" << e.core << "}}";
      break;
    }
    case TraceEventKind::kDrain: {
      ensure_track(kLinesPid, e.line, "line");
      emit_prefix("i", "sbuf drain", "coherence", ts, kLinesPid, e.line);
      os_ << ",\"s\":\"t\",\"args\":{\"core\":" << e.core
          << ",\"value\":" << e.value << ",\"depth\":" << e.queue_depth
          << "}}";
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// SynchronizedTraceSink
// ---------------------------------------------------------------------------

void SynchronizedTraceSink::on_run_begin(const TraceRunInfo& info) {
  const std::lock_guard<std::mutex> lock(mu_);
  inner_.on_run_begin(info);
}

void SynchronizedTraceSink::on_event(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  inner_.on_event(event);
}

void SynchronizedTraceSink::on_run_end() {
  const std::lock_guard<std::mutex> lock(mu_);
  inner_.on_run_end();
}

// ---------------------------------------------------------------------------
// ChromeTraceFileSink
// ---------------------------------------------------------------------------

ChromeTraceFileSink::ChromeTraceFileSink(const std::string& path)
    : file_(path) {
  if (file_) sink_ = std::make_unique<ChromeTraceSink>(file_);
}

ChromeTraceFileSink::~ChromeTraceFileSink() {
  sink_.reset();  // writes the closing bracket before the file closes
}

void ChromeTraceFileSink::on_run_begin(const TraceRunInfo& info) {
  if (sink_) sink_->on_run_begin(info);
}

void ChromeTraceFileSink::on_event(const TraceEvent& event) {
  if (sink_) sink_->on_event(event);
}

void ChromeTraceFileSink::on_run_end() {
  if (sink_) sink_->on_run_end();
}

}  // namespace am::obs
