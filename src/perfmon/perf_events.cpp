#include "perfmon/perf_events.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace am {

const char* to_string(PerfEvent e) noexcept {
  switch (e) {
    case PerfEvent::kCycles: return "cycles";
    case PerfEvent::kInstructions: return "instructions";
    case PerfEvent::kCacheReferences: return "cache-references";
    case PerfEvent::kCacheMisses: return "cache-misses";
    case PerfEvent::kBranchMisses: return "branch-misses";
    case PerfEvent::kTaskClockNs: return "task-clock";
  }
  return "?";
}

std::optional<std::uint64_t> PerfSample::get(PerfEvent e) const noexcept {
  for (const auto& [ev, v] : counts) {
    if (ev == e) return v;
  }
  return std::nullopt;
}

#ifdef __linux__
namespace {

int open_event(PerfEvent e) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (e) {
    case PerfEvent::kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case PerfEvent::kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEvent::kCacheReferences:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_REFERENCES;
      break;
    case PerfEvent::kCacheMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case PerfEvent::kBranchMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_BRANCH_MISSES;
      break;
    case PerfEvent::kTaskClockNs:
      attr.type = PERF_TYPE_SOFTWARE;
      attr.config = PERF_COUNT_SW_TASK_CLOCK;
      break;
  }
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*this thread*/, -1 /*any cpu*/,
              -1 /*no group leader*/, 0));
}

}  // namespace
#endif

PerfCounterGroup::PerfCounterGroup(const std::vector<PerfEvent>& events) {
  for (PerfEvent e : events) {
#ifdef __linux__
    counters_.push_back({e, open_event(e)});
#else
    counters_.push_back({e, -1});
#endif
  }
}

PerfCounterGroup::~PerfCounterGroup() { close_all(); }

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& other) noexcept
    : counters_(std::move(other.counters_)) {
  other.counters_.clear();
}

PerfCounterGroup& PerfCounterGroup::operator=(PerfCounterGroup&& other) noexcept {
  if (this != &other) {
    close_all();
    counters_ = std::move(other.counters_);
    other.counters_.clear();
  }
  return *this;
}

void PerfCounterGroup::close_all() noexcept {
#ifdef __linux__
  for (auto& c : counters_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
#endif
}

bool PerfCounterGroup::available() const noexcept {
  for (const auto& c : counters_) {
    if (c.fd >= 0) return true;
  }
  return false;
}

std::vector<PerfEvent> PerfCounterGroup::live_events() const {
  std::vector<PerfEvent> live;
  for (const auto& c : counters_) {
    if (c.fd >= 0) live.push_back(c.event);
  }
  return live;
}

void PerfCounterGroup::enable() noexcept {
#ifdef __linux__
  for (const auto& c : counters_) {
    if (c.fd >= 0) ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

void PerfCounterGroup::disable() noexcept {
#ifdef __linux__
  for (const auto& c : counters_) {
    if (c.fd >= 0) ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
  }
#endif
}

void PerfCounterGroup::reset() noexcept {
#ifdef __linux__
  for (const auto& c : counters_) {
    if (c.fd >= 0) ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
  }
#endif
}

PerfSample PerfCounterGroup::read() const {
  PerfSample sample;
#ifdef __linux__
  for (const auto& c : counters_) {
    if (c.fd < 0) continue;
    std::uint64_t value = 0;
    if (::read(c.fd, &value, sizeof(value)) == sizeof(value)) {
      sample.counts.emplace_back(c.event, value);
    }
  }
#endif
  return sample;
}

}  // namespace am
