// RAPL (Running Average Power Limit) energy readings via the Linux powercap
// interface.
//
// The paper's energy figures read the package and DRAM RAPL domains before
// and after each measurement epoch and divide by the number of completed
// operations. On machines (or containers) where powercap is not exposed the
// reader reports unavailable and the energy experiments fall back to the
// simulator's event-based energy model (see sim/energy_model.hpp), which is
// the documented hardware substitution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace am {

/// Energy snapshot across RAPL domains, in joules.
struct EnergyReading {
  double package_j = 0.0;  ///< sum over all package domains
  double dram_j = 0.0;     ///< sum over all DRAM subdomains
  bool package_valid = false;
  bool dram_valid = false;

  EnergyReading operator-(const EnergyReading& start) const noexcept;
};

class Rapl {
 public:
  /// Scans /sys/class/powercap for intel-rapl zones.
  /// @param root overrides the sysfs root (used by tests with a fake tree).
  explicit Rapl(std::string root = "/sys/class/powercap");

  bool available() const noexcept { return !package_zones_.empty(); }
  std::size_t package_zone_count() const noexcept { return package_zones_.size(); }
  std::size_t dram_zone_count() const noexcept { return dram_zones_.size(); }

  /// Reads current cumulative counters. Wraparound between two readings is
  /// corrected by the caller-facing delta in EnergyReading::operator- as
  /// long as at most one wrap occurred (counters wrap on the order of hours).
  EnergyReading read() const;

 private:
  struct Zone {
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
  };
  std::vector<Zone> package_zones_;
  std::vector<Zone> dram_zones_;

  static double read_zones(const std::vector<Zone>& zones, bool& valid);
};

}  // namespace am
