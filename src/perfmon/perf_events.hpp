// perf_event_open wrapper for the hardware measurement backend.
//
// The paper's methodology reads hardware counters (cycles, instructions,
// cache misses) around each measurement epoch. Counter access is frequently
// unavailable (perf_event_paranoid, containers, non-x86); every call here
// degrades to "counter absent" instead of failing the experiment, and
// results record which counters were live.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace am {

enum class PerfEvent : std::uint8_t {
  kCycles,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kTaskClockNs,
};

const char* to_string(PerfEvent e) noexcept;

/// One reading: event -> count since enable(). Missing events are absent.
struct PerfSample {
  std::vector<std::pair<PerfEvent, std::uint64_t>> counts;

  std::optional<std::uint64_t> get(PerfEvent e) const noexcept;
};

/// A group of per-thread counters. Usage:
///   PerfCounterGroup g({PerfEvent::kCycles, PerfEvent::kCacheMisses});
///   g.enable();  ...measured region...  auto s = g.read(); g.disable();
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(const std::vector<PerfEvent>& events);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;
  PerfCounterGroup(PerfCounterGroup&&) noexcept;
  PerfCounterGroup& operator=(PerfCounterGroup&&) noexcept;

  /// True when at least one requested event opened successfully.
  bool available() const noexcept;
  /// Events that actually opened.
  std::vector<PerfEvent> live_events() const;

  void enable() noexcept;
  void disable() noexcept;
  void reset() noexcept;
  PerfSample read() const;

 private:
  struct Counter {
    PerfEvent event;
    int fd = -1;
  };
  std::vector<Counter> counters_;
  void close_all() noexcept;
};

}  // namespace am
