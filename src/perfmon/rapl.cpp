#include "perfmon/rapl.hpp"

#include <filesystem>
#include <fstream>

namespace am {

EnergyReading EnergyReading::operator-(const EnergyReading& start) const noexcept {
  EnergyReading d;
  d.package_valid = package_valid && start.package_valid;
  d.dram_valid = dram_valid && start.dram_valid;
  // Counters are cumulative; a negative delta means the counter wrapped
  // within the epoch. That takes hours on real hardware, so clamping to 0 is
  // both safe and honest (the sample is then visibly bogus rather than huge).
  d.package_j = package_j >= start.package_j ? package_j - start.package_j : 0.0;
  d.dram_j = dram_j >= start.dram_j ? dram_j - start.dram_j : 0.0;
  return d;
}

namespace {

std::optional<std::string> read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return std::nullopt;
}

}  // namespace

Rapl::Rapl(std::string root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string dir = entry.path().string();
    const auto name = read_line(dir + "/name");
    if (!name) continue;
    Zone z;
    z.energy_path = dir + "/energy_uj";
    if (const auto range = read_line(dir + "/max_energy_range_uj")) {
      z.max_range_uj = std::strtoull(range->c_str(), nullptr, 10);
    }
    // Top-level package zones are named "package-N"; DRAM subzones "dram".
    if (name->rfind("package", 0) == 0 || *name == "psys") {
      if (read_line(z.energy_path)) package_zones_.push_back(z);
    } else if (*name == "dram") {
      if (read_line(z.energy_path)) dram_zones_.push_back(z);
    }
  }
}

double Rapl::read_zones(const std::vector<Zone>& zones, bool& valid) {
  double total_uj = 0.0;
  valid = false;
  for (const auto& z : zones) {
    const auto line = read_line(z.energy_path);
    if (!line) continue;
    total_uj += static_cast<double>(std::strtoull(line->c_str(), nullptr, 10));
    valid = true;
  }
  return total_uj * 1e-6;
}

EnergyReading Rapl::read() const {
  EnergyReading r;
  r.package_j = read_zones(package_zones_, r.package_valid);
  r.dram_j = read_zones(dram_zones_, r.dram_valid);
  return r;
}

}  // namespace am
