// The fleet's forwarding tier: a service::RequestHandler that relays each
// request to the worker owning its shard.
//
// Routing key = the request's canonical form (the same bytes the prediction
// cache hashes), so every retry of a request — any member order, any
// whitespace — lands on the same worker and its sharded LRU stays hot.
// The original request line is forwarded verbatim: the worker parses,
// canonicalizes and answers exactly as if the client had connected to it
// directly, which is what keeps fleet responses byte-identical to a
// single-worker run (id echo included).
//
// Degradation ladder per request:
//   1. owner up + under cap      -> forward
//   2. owner down/full           -> bounded hand-off to ring successors
//   3. every candidate down      -> stale-while-revalidate: last good
//                                   response from the router's LRU, else
//                                   (simulate) the shared disk cache
//   4. stale miss, all down      -> promotion (simulate + --sweep-cache):
//                                   the front computes the point itself and
//                                   its SweepEngine writes the shared disk
//                                   entry, warming every recovering worker
//   5. stale miss, someone full  -> structured `overloaded` (shed)
//   6. stale miss, all down      -> structured `unavailable`
// Admission is per-worker (Supervisor::try_acquire): a slow worker sheds
// its own shard's load instead of stalling the fleet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/chaos.hpp"
#include "fleet/ring.hpp"
#include "fleet/supervisor.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/lru_cache.hpp"

namespace am::fleet {

struct RouterConfig {
  /// Deadline for one forwarded request (connect + send + receive).
  int request_timeout_ms = 30000;
  /// Sibling workers tried after the owner before degrading (<= workers-1).
  int failover_retries = 1;
  /// Router-level stale-response LRU (full response lines keyed by
  /// canonical request + id). 0 disables memory-stale serving.
  std::size_t stale_capacity = 4096;
  std::size_t stale_shards = 8;
  /// Virtual nodes per worker on the consistent-hash ring.
  std::size_t ring_vnodes = 64;
  bool metrics = true;
  /// Fault injection; not owned, may be null (usually the supervisor's).
  ChaosConfig* chaos = nullptr;
};

class Router final : public service::RequestHandler {
 public:
  Router(Supervisor& supervisor, RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  service::HandleResult handle(const service::Request& r,
                               std::string_view raw,
                               const service::RequestContext* ctx) override;

  /// Writes the "fleet" stats section: per-worker state plus routing
  /// counters.
  void append_stats(JsonWriter& w) const override;

  /// Propagates the front server's drain to the worker fleet.
  void on_drain() override;

  const HashRing& ring() const noexcept { return ring_; }

  // --- counters (tests) ----------------------------------------------------
  std::uint64_t forwarded() const noexcept { return forwarded_.load(); }
  std::uint64_t failovers() const noexcept { return failovers_.load(); }
  std::uint64_t shed() const noexcept { return shed_.load(); }
  std::uint64_t stale_serves() const noexcept { return stale_serves_.load(); }
  std::uint64_t unavailable() const noexcept { return unavailable_.load(); }
  std::uint64_t promoted() const noexcept { return promoted_.load(); }

 private:
  struct PooledConn {
    service::ServiceClient client;
    std::uint64_t epoch = 0;  ///< worker epoch the connection was minted under
  };
  struct WorkerPool {
    std::mutex mu;
    std::vector<PooledConn> idle;
  };
  struct Telemetry;

  /// One forward attempt. Returns the response line (no '\n') or nullopt on
  /// transport failure (connect/send/recv/timeout/chaos drop).
  std::optional<std::string> forward(std::size_t worker, std::string_view raw);

  /// Stale sources in order: router LRU, then (simulate only) the shared
  /// disk cache. Empty when nothing stale exists.
  std::string stale_response(const service::Request& r,
                             const std::string& canonical);

  /// Last-resort compute-at-the-front for simulate when every worker is
  /// down: answers via a lazily-built local ServiceCore whose sim cache dir
  /// is the fleet's shared --sweep-cache, so the computed point is promoted
  /// into the disk tier (write-fsync-rename) and recovering workers get a
  /// warm hit. Serialized — the front is the single writer while the fleet
  /// is dark. Empty response when promotion does not apply.
  service::HandleResult promote(const service::Request& r);

  Supervisor& supervisor_;
  RouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<WorkerPool>> pools_;
  service::ShardedLruCache stale_;
  std::unique_ptr<Telemetry> telemetry_;

  std::mutex promote_mu_;  ///< single-writer gate for promotion compute
  std::unique_ptr<service::ServiceCore> promote_core_;  ///< lazily built

  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> stale_serves_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> promoted_{0};
  std::atomic<std::uint64_t> chaos_drops_{0};
  std::atomic<std::uint64_t> chaos_delays_{0};
};

}  // namespace am::fleet
