// Deterministic fault injection for the serving fleet.
//
// Two surfaces, same injectable style as sim::FaultInjection and
// sweep::IoFaults:
//   - one-shot counters tests arm directly (kill_worker, hang_worker,
//     drop_connection, delay_response): each is consumed once per matching
//     operation, 0 injects nothing, a negative value injects on every
//     operation;
//   - a periodic schedule the am_fleet CLI arms (--chaos-kill-every-ms,
//     --chaos-hang-every-ms) that the supervisor's health thread drives, so
//     a chaos-smoke run needs no external process sending signals.
// The struct is shared by reference between test/CLI and the fleet; all
// fields are safe to poke while the fleet is live.
#pragma once

#include <atomic>
#include <cstdint>

namespace am::fleet {

struct ChaosConfig {
  // --- one-shot injectable counters (tests) --------------------------------
  std::atomic<int> kill_worker{0};      ///< SIGKILL a worker at next tick
  std::atomic<int> hang_worker{0};      ///< SIGSTOP a worker at next tick
  std::atomic<int> drop_connection{0};  ///< router drops the worker conn mid-request
  std::atomic<int> delay_response{0};   ///< router delays a response by delay_ms

  /// Milliseconds each injected delay_response sleeps before answering.
  std::atomic<int> delay_ms{50};

  // --- periodic schedule (CLI chaos driver) --------------------------------
  std::atomic<int> kill_every_ms{0};  ///< 0 = off
  std::atomic<int> hang_every_ms{0};  ///< 0 = off

  /// Seeds the deterministic victim-selection sequence.
  std::atomic<std::uint64_t> seed{1};

  /// Consumes one injection from @p counter; true when the operation must
  /// fail. Negative counters always fire (and are never decremented).
  static bool consume(std::atomic<int>& counter) noexcept {
    int v = counter.load(std::memory_order_relaxed);
    while (v != 0) {
      if (v < 0) return true;
      if (counter.compare_exchange_weak(v, v - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// splitmix64 step over `seed`: the shared deterministic victim picker.
  std::uint64_t next_random() noexcept {
    const std::uint64_t s =
        seed.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed) +
        0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

}  // namespace am::fleet
