// One supervised am_serve worker process.
//
// WorkerProcess owns the fork/exec lifecycle of a single worker: it spawns
// the am_serve binary listening on a per-worker Unix socket, reaps it with
// waitpid(WNOHANG), delivers kill/hang/resume signals, and answers "is it
// serving?" with a deadline-bounded ping probe over the socket. It holds no
// policy — restart backoff, circuit breaking and scheduling live in the
// Supervisor; routing connections live in the Router.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "service/net.hpp"

namespace am::fleet {

/// Health/restart state machine, driven by the Supervisor's tick thread.
enum class WorkerState : std::uint8_t {
  kStarting,     ///< spawned, not yet answered a ping
  kUp,           ///< probe healthy
  kDown,         ///< process dead or hung; restart pending
  kCircuitOpen,  ///< repeated fast failures; restarts paused for a cooloff
  kDraining,     ///< SIGTERM sent; finishing in-flight work
};

const char* to_string(WorkerState s) noexcept;

struct WorkerSpec {
  std::string binary;              ///< am_serve executable path
  std::string socket_path;         ///< unix socket the worker listens on
  std::vector<std::string> args;   ///< extra argv entries (--sweep-cache=...)
};

class WorkerProcess {
 public:
  WorkerProcess() = default;
  ~WorkerProcess();

  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  /// fork+execs the worker per @p spec. The child's stdout goes to
  /// /dev/null (its listening banner is noise under a supervisor); stderr
  /// is inherited so crashes stay visible. False with @p error filled when
  /// the fork or a pre-exec step fails (exec failure surfaces as an
  /// immediate exit the supervisor reaps).
  bool spawn(const WorkerSpec& spec, std::string* error);

  pid_t pid() const noexcept { return pid_; }
  bool running() const noexcept { return pid_ > 0; }

  /// Reaps with WNOHANG. True when the process exited/was killed since the
  /// last call (pid() becomes -1); fills @p status when non-null.
  bool reap(int* status);

  /// Sends @p sig (SIGTERM for drain, SIGKILL for chaos/hang recovery,
  /// SIGSTOP/SIGCONT for hang injection). No-op when not running.
  void deliver(int sig) noexcept;

  /// Blocking waitpid until the process exits (used on teardown after
  /// SIGTERM/SIGKILL). No-op when not running.
  void wait_exit() noexcept;

  /// The worker's serving endpoint (unix socket from the last spawn()).
  const service::Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Connects, sends {"kind":"ping"} and waits for one response line, all
  /// under @p timeout_ms. True only for a well-formed pong.
  bool probe_ping(int timeout_ms) const;

 private:
  pid_t pid_ = -1;
  service::Endpoint endpoint_;
};

}  // namespace am::fleet
