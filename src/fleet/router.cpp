#include "fleet/router.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "bench_core/sweep_journal.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"

namespace am::fleet {

namespace {

/// Stale-LRU key. The cached value is a *full response line*, which embeds
/// the request id echo — two clients asking the same canonical question
/// under different ids must not be served each other's echo, so the id is
/// part of the key ('\x1f' cannot appear in canonical JSON or an id that
/// parsed).
std::string stale_key(const std::string& canonical, const std::string& id) {
  return canonical + '\x1f' + id;
}

}  // namespace

struct Router::Telemetry {
  explicit Telemetry(obs::metrics::Registry& reg) {
    forwarded = &reg.counter("am_fleet_forwarded_total",
                             "Requests forwarded to a worker");
    failovers = &reg.counter(
        "am_fleet_failovers_total",
        "Forwards handed off to a ring successor (owner down or failed)");
    shed = &reg.counter("am_fleet_shed_total",
                        "Requests answered `overloaded` by admission control");
    stale_serves = &reg.counter(
        "am_fleet_stale_serves_total",
        "Requests served stale (router LRU or shared disk cache)");
    unavailable = &reg.counter(
        "am_fleet_unavailable_total",
        "Requests answered `unavailable` (no worker, no stale copy)");
    promoted = &reg.counter(
        "am_fleet_promoted_total",
        "Simulate requests computed at the front and promoted into the "
        "shared sweep disk cache (every worker down)");
    chaos_drops = &reg.counter("am_fleet_chaos_drops_total",
                               "Chaos-injected dropped worker connections");
    chaos_delays = &reg.counter("am_fleet_chaos_delays_total",
                                "Chaos-injected response delays");
  }

  obs::metrics::Counter* forwarded = nullptr;
  obs::metrics::Counter* failovers = nullptr;
  obs::metrics::Counter* shed = nullptr;
  obs::metrics::Counter* stale_serves = nullptr;
  obs::metrics::Counter* unavailable = nullptr;
  obs::metrics::Counter* promoted = nullptr;
  obs::metrics::Counter* chaos_drops = nullptr;
  obs::metrics::Counter* chaos_delays = nullptr;
};

Router::Router(Supervisor& supervisor, RouterConfig config)
    : supervisor_(supervisor),
      config_(std::move(config)),
      ring_(supervisor.worker_count(), config_.ring_vnodes),
      stale_(config_.stale_capacity, config_.stale_shards) {
  pools_.reserve(supervisor.worker_count());
  for (std::size_t i = 0; i < supervisor.worker_count(); ++i) {
    pools_.push_back(std::make_unique<WorkerPool>());
  }
  if (config_.metrics) {
    telemetry_ = std::make_unique<Telemetry>(obs::metrics::default_registry());
  }
}

Router::~Router() = default;

void Router::on_drain() { supervisor_.drain(); }

std::optional<std::string> Router::forward(std::size_t worker,
                                           std::string_view raw) {
  WorkerPool& pool = *pools_[worker];
  const std::uint64_t epoch = supervisor_.epoch(worker);

  PooledConn conn;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      if (pool.idle.empty()) break;
      conn = std::move(pool.idle.back());
      pool.idle.pop_back();
    }
    // A connection minted under an older epoch points at a dead process
    // (its socket at best answers with a hangup); discard, don't reuse.
    if (conn.epoch == epoch && conn.client.connected()) break;
    conn.client.close();
  }
  if (!conn.client.connected()) {
    conn.epoch = epoch;
    conn.client.set_timeout_ms(config_.request_timeout_ms);
    std::string error;
    if (!conn.client.connect(supervisor_.endpoint(worker), &error)) {
      return std::nullopt;
    }
  }

  ChaosConfig* chaos = config_.chaos;
  if (chaos != nullptr && ChaosConfig::consume(chaos->drop_connection)) {
    // Mid-request connection loss: the line may or may not reach the
    // worker; either way this attempt fails and the caller retries a
    // sibling (requests are idempotent).
    conn.client.send_line(std::string(raw));
    conn.client.close();
    chaos_drops_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->chaos_drops->inc();
    return std::nullopt;
  }

  std::string error;
  const auto response = conn.client.roundtrip(std::string(raw), &error);
  if (!response.has_value()) {
    conn.client.close();  // poisoned: mid-stream state is unrecoverable
    return std::nullopt;
  }

  if (chaos != nullptr && ChaosConfig::consume(chaos->delay_response)) {
    chaos_delays_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->chaos_delays->inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        chaos->delay_ms.load(std::memory_order_relaxed)));
  }

  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.idle.push_back(std::move(conn));
  }
  return response;
}

std::string Router::stale_response(const service::Request& r,
                                   const std::string& canonical) {
  if (!r.cacheable()) return "";
  if (auto hit = stale_.get(stale_key(canonical, r.id))) return *hit;

  // Second level: simulate results live in the shared sweep disk cache.
  // Reconstruct the key a worker would have written the point under and
  // render the run through the same serializer — byte-identical to a
  // worker-served cached response.
  if (r.kind != service::RequestKind::kSimulate) return "";
  const std::string& dir = supervisor_.config().sweep_cache_dir;
  if (dir.empty()) return "";
  const service::PointQuery& q = r.point;
  const sim::MachineConfig mc = sim::preset_by_name(q.machine);
  if (q.threads > mc.cores) return "";
  const std::string identity =
      bench::sim_backend_cache_identity(mc, bench::SimBackendOptions{});
  const std::string key = bench::sweep_cache_key(
      identity, service::simulate_workload(q), bench::sweep_point_seed(q.seed, 0));
  std::string bytes;
  if (bench::sweep::read_file_with_retry(dir + "/" + key + ".json", bytes) !=
      bench::sweep::IoResult::kOk) {
    return "";
  }
  const auto run = bench::parse_measured_run(bytes, key);
  if (!run.has_value()) return "";
  return service::make_result_response(
      r, service::render_simulate_result(q, *run));
}

service::HandleResult Router::promote(const service::Request& r) {
  service::HandleResult none;
  if (r.kind != service::RequestKind::kSimulate) return none;
  const std::string& dir = supervisor_.config().sweep_cache_dir;
  if (dir.empty()) return none;

  // Single writer: promotions run one at a time under promote_mu_, so
  // concurrent clients of a dark fleet cannot race the same point, and the
  // SweepEngine inside the core publishes each disk entry atomically
  // (write-fsync-rename) — a recovering worker either sees the whole entry
  // or none of it, never a torn file.
  std::lock_guard<std::mutex> lock(promote_mu_);
  if (promote_core_ == nullptr) {
    service::ServiceConfig cfg;
    cfg.cache_capacity = 0;  // the router's stale LRU is the memory tier
    cfg.sim_cache_dir = dir;
    cfg.metrics = false;  // fleet-level counters belong to the router
    promote_core_ = std::make_unique<service::ServiceCore>(cfg);
  }
  // The core renders through the exact serializer a worker uses, so a
  // promoted response (success or structured error) is byte-identical to a
  // worker-served one.
  return promote_core_->handle(r, nullptr);
}

service::HandleResult Router::handle(const service::Request& r,
                                     std::string_view raw,
                                     const service::RequestContext* ctx) {
  (void)ctx;
  service::HandleResult out;
  if (r.kind == service::RequestKind::kPing) {
    // Answered at the front: liveness of the fleet entrypoint, not of any
    // worker. Bytes match a worker's own pong exactly.
    out.response = service::make_result_response(r, "{\"pong\":true}");
    return out;
  }
  if (r.kind == service::RequestKind::kStats ||
      r.kind == service::RequestKind::kMetrics) {
    // The front Server answers these itself; reaching here means a caller
    // wired the Router without one.
    out.response = service::make_error_response(
        r.id, "kind not handled by fleet router");
    out.ok = false;
    return out;
  }

  const std::string canonical = service::canonical_request(r);
  const std::vector<std::size_t> order = ring_.route_order(canonical);
  const std::size_t candidates = std::min(
      order.size(), static_cast<std::size_t>(1 + std::max(0, config_.failover_retries)));

  bool any_full = false;
  for (std::size_t c = 0; c < candidates; ++c) {
    const std::size_t worker = order[c];
    const Admit verdict = supervisor_.try_acquire(worker);
    if (verdict == Admit::kFull) {
      any_full = true;
      continue;
    }
    if (verdict == Admit::kDown) continue;

    const auto response = forward(worker, raw);
    supervisor_.release(worker);
    if (!response.has_value()) {
      supervisor_.report_transport_failure(worker);
      continue;
    }
    if (c > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr) telemetry_->failovers->inc();
    }
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->forwarded->inc();

    out.response = *response + "\n";
    // Success envelopes always carry the literal `"ok":true`; escaping
    // guarantees no error envelope can contain those exact bytes.
    out.ok = response->find("\"ok\":true") != std::string::npos;
    if (r.cacheable() && out.ok && config_.stale_capacity > 0) {
      stale_.put(stale_key(canonical, r.id), out.response);
    }
    return out;
  }

  // Every candidate refused. Stale beats an error; overloaded beats
  // unavailable (the client should back off, not re-resolve).
  const std::string stale = stale_response(r, canonical);
  if (!stale.empty()) {
    stale_serves_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->stale_serves->inc();
    out.response = stale;
    if (out.response.back() != '\n') out.response += '\n';
    out.cache_hit = true;
    return out;
  }
  // Promotion: every worker is down (not merely full — a full fleet sheds
  // so clients back off) and the shared disk tier is configured, so the
  // front computes the simulate point itself. Answering also writes the
  // disk entry, warming the cache every restarted worker shares.
  if (!any_full) {
    service::HandleResult promoted = promote(r);
    if (!promoted.response.empty()) {
      promoted_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr) telemetry_->promoted->inc();
      if (r.cacheable() && promoted.ok && config_.stale_capacity > 0) {
        stale_.put(stale_key(canonical, r.id), promoted.response);
      }
      return promoted;
    }
  }
  if (any_full) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->shed->inc();
    out.response = service::make_error_response(
        r.id, service::errcode::kOverloaded,
        "fleet at capacity; retry with backoff");
    out.ok = false;
    return out;
  }
  unavailable_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) telemetry_->unavailable->inc();
  out.response = service::make_error_response(
      r.id, service::errcode::kUnavailable,
      "no worker available for this shard and no stale copy exists");
  out.ok = false;
  return out;
}

void Router::append_stats(JsonWriter& w) const {
  const auto status = supervisor_.status();
  w.key("fleet").begin_object();
  w.kv("workers", std::uint64_t{status.size()});
  w.kv("workers_up", std::uint64_t{supervisor_.workers_up()});
  w.kv("restarts", supervisor_.total_restarts());
  w.kv("forwarded", forwarded_.load(std::memory_order_relaxed));
  w.kv("failovers", failovers_.load(std::memory_order_relaxed));
  w.kv("shed", shed_.load(std::memory_order_relaxed));
  w.kv("stale_serves", stale_serves_.load(std::memory_order_relaxed));
  w.kv("unavailable", unavailable_.load(std::memory_order_relaxed));
  w.kv("promoted", promoted_.load(std::memory_order_relaxed));
  w.kv("chaos_drops", chaos_drops_.load(std::memory_order_relaxed));
  w.kv("chaos_delays", chaos_delays_.load(std::memory_order_relaxed));
  w.key("per_worker").begin_array();
  for (const auto& s : status) {
    w.begin_object();
    w.kv("state", to_string(s.state));
    w.kv("pid", static_cast<std::int64_t>(s.pid));
    w.kv("restarts", s.restarts);
    w.kv("epoch", s.epoch);
    w.kv("inflight", static_cast<std::int64_t>(s.inflight));
    w.kv("consecutive_failures",
         static_cast<std::int64_t>(s.consecutive_failures));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace am::fleet
