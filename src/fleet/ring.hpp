// Consistent-hash ring over worker indices.
//
// Each worker owns `vnodes` points on a 64-bit ring; a request key routes
// to the worker owning the first point at or after the key's hash. Workers
// keep their ring slots across restarts (slots are a pure function of
// worker index), so a restarted worker resumes exactly its old shard and
// its repopulating LRU stays hot on the keys it will see again. route_order
// yields the owner followed by the distinct successor workers — the
// bounded-retry hand-off order when the owner is down.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace am::fleet {

class HashRing {
 public:
  /// @p workers >= 1; @p vnodes points per worker (more = smoother shard
  /// balance, linearly more ring memory).
  explicit HashRing(std::size_t workers, std::size_t vnodes = 64);

  std::size_t worker_count() const noexcept { return workers_; }

  /// The worker owning @p key.
  std::size_t owner(std::string_view key) const;

  /// Every worker, owner first, then successors in ring order (each worker
  /// once). Size == worker_count().
  std::vector<std::size_t> route_order(std::string_view key) const;

  /// Fraction of a uniform keyspace each worker owns (diagnostics; sums
  /// to ~1).
  std::vector<double> ownership() const;

 private:
  struct Slot {
    std::uint64_t point;
    std::uint32_t worker;
  };

  std::size_t first_slot(std::string_view key) const;

  std::vector<Slot> slots_;  ///< sorted by point
  std::size_t workers_;
};

}  // namespace am::fleet
