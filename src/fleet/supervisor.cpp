#include "fleet/supervisor.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace am::fleet {

using Clock = std::chrono::steady_clock;

namespace {

std::chrono::milliseconds ms(int v) { return std::chrono::milliseconds(v); }

}  // namespace

std::string find_worker_binary() {
  if (const char* env = std::getenv("AM_SERVE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir(buf);
  const auto slash = dir.find_last_of('/');
  if (slash == std::string::npos) return "";
  dir.resize(slash);
  for (const std::string candidate :
       {dir + "/am_serve", dir + "/../tools/am_serve"}) {
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

/// Fleet-level instruments in the process-wide default registry: they show
/// up in the front server's Prometheus scrape next to the request counters.
struct Supervisor::Telemetry {
  explicit Telemetry(obs::metrics::Registry& reg) {
    restarts = &reg.counter("am_fleet_restarts_total",
                            "Worker respawns after a crash or hang");
    deaths = &reg.counter("am_fleet_worker_deaths_total",
                          "Worker processes that exited or were killed");
    chaos_kills = &reg.counter("am_fleet_chaos_kills_total",
                               "Chaos-injected worker SIGKILLs");
    chaos_hangs = &reg.counter("am_fleet_chaos_hangs_total",
                               "Chaos-injected worker SIGSTOP hangs");
    probe_failures = &reg.counter(
        "am_fleet_probe_failures_total",
        "Health probes that missed the deadline (worker hung or dead)");
    circuit_opens = &reg.counter("am_fleet_circuit_opens_total",
                                 "Circuit-breaker activations");
    workers_up =
        &reg.gauge("am_fleet_workers_up", "Workers currently answering probes");
  }

  obs::metrics::Counter* restarts = nullptr;
  obs::metrics::Counter* deaths = nullptr;
  obs::metrics::Counter* chaos_kills = nullptr;
  obs::metrics::Counter* chaos_hangs = nullptr;
  obs::metrics::Counter* probe_failures = nullptr;
  obs::metrics::Counter* circuit_opens = nullptr;
  obs::metrics::Gauge* workers_up = nullptr;
};

Supervisor::Supervisor(FleetConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.worker_binary.empty()) {
    config_.worker_binary = find_worker_binary();
  }
  if (config_.metrics) {
    telemetry_ = std::make_unique<Telemetry>(obs::metrics::default_registry());
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->socket_path =
        config_.runtime_dir + "/worker-" + std::to_string(i) + ".sock";
    w->backoff_ms = config_.restart_backoff_ms;
    workers_.push_back(std::move(w));
  }
}

Supervisor::~Supervisor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  for (auto& w : workers_) {
    w->proc.deliver(SIGKILL);
    w->proc.wait_exit();
  }
}

bool Supervisor::spawn_worker(std::size_t i, std::string* error) {
  Worker& w = *workers_[i];
  WorkerSpec spec;
  spec.binary = config_.worker_binary;
  spec.socket_path = w.socket_path;
  spec.args.push_back("--service-threads=" +
                      std::to_string(config_.worker_threads));
  // Workers keep their own process-local registries; the fleet's scrape is
  // the front process's, so worker-side samplers are pure overhead.
  spec.args.push_back("--metrics=false");
  if (!config_.sweep_cache_dir.empty()) {
    spec.args.push_back("--sweep-cache=" + config_.sweep_cache_dir);
  }
  for (const std::string& a : config_.worker_args) spec.args.push_back(a);

  if (!w.proc.spawn(spec, error)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.spawned_at = Clock::now();
    if (w.ever_up || w.epoch.load(std::memory_order_relaxed) > 0) {
      ++w.restarts;
      if (telemetry_ != nullptr) telemetry_->restarts->inc();
    }
    w.ever_up = false;
  }
  w.epoch.fetch_add(1, std::memory_order_acq_rel);
  w.state.store(WorkerState::kStarting, std::memory_order_release);
  return true;
}

bool Supervisor::start(std::string* error) {
  if (config_.worker_binary.empty()) {
    if (error != nullptr) {
      *error = "cannot locate the am_serve worker binary (set $AM_SERVE_BIN)";
    }
    return false;
  }
  // exec failure happens post-fork where it only shows up as a crashing
  // worker; check executability here so a bad path fails fast and clearly.
  if (::access(config_.worker_binary.c_str(), X_OK) != 0) {
    if (error != nullptr) {
      *error = "worker binary not executable: " + config_.worker_binary;
    }
    return false;
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!spawn_worker(i, error)) return false;
  }
  last_chaos_kill_ = Clock::now();
  last_chaos_hang_ = last_chaos_kill_;
  ticker_ = std::thread([this] { tick_loop(); });
  started_ = true;
  return true;
}

bool Supervisor::wait_all_up(int timeout_ms) {
  const auto deadline = Clock::now() + ms(timeout_ms);
  for (;;) {
    if (workers_up() == workers_.size()) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(ms(20));
  }
}

void Supervisor::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  for (auto& w : workers_) {
    if (w->proc.running()) {
      w->state.store(WorkerState::kDraining, std::memory_order_release);
      w->proc.deliver(SIGTERM);
      // A SIGSTOPed worker cannot act on SIGTERM; resume it first.
      w->proc.deliver(SIGCONT);
    }
  }
  const auto deadline = Clock::now() + ms(config_.drain_timeout_ms);
  for (auto& w : workers_) {
    while (w->proc.running() && !w->proc.reap(nullptr)) {
      if (Clock::now() >= deadline) {
        w->proc.deliver(SIGKILL);
        w->proc.wait_exit();
        break;
      }
      std::this_thread::sleep_for(ms(10));
    }
    w->state.store(WorkerState::kDown, std::memory_order_release);
  }
}

Admit Supervisor::try_acquire(std::size_t i) {
  Worker& w = *workers_[i];
  if (w.state.load(std::memory_order_acquire) != WorkerState::kUp) {
    return Admit::kDown;
  }
  const int prev = w.inflight.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= config_.max_inflight) {
    w.inflight.fetch_sub(1, std::memory_order_acq_rel);
    return Admit::kFull;
  }
  return Admit::kOk;
}

void Supervisor::release(std::size_t i) {
  workers_[i]->inflight.fetch_sub(1, std::memory_order_acq_rel);
}

void Supervisor::report_transport_failure(std::size_t i) {
  workers_[i]->probe_asap.store(true, std::memory_order_release);
  cv_.notify_all();  // wake the tick thread early
}

std::vector<Supervisor::WorkerStatus> Supervisor::status() const {
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& w : workers_) {
    WorkerStatus s;
    s.state = w->state.load(std::memory_order_acquire);
    s.pid = w->proc.pid();
    s.restarts = w->restarts;
    s.epoch = w->epoch.load(std::memory_order_acquire);
    s.inflight = w->inflight.load(std::memory_order_acquire);
    s.consecutive_failures = w->consecutive_failures;
    out.push_back(s);
  }
  return out;
}

std::uint64_t Supervisor::total_restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->restarts;
  return total;
}

std::size_t Supervisor::workers_up() const {
  std::size_t up = 0;
  for (const auto& w : workers_) {
    if (w->state.load(std::memory_order_acquire) == WorkerState::kUp) ++up;
  }
  return up;
}

void Supervisor::tick_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, ms(config_.health_interval_ms));
    if (stop_) break;
    lock.unlock();
    tick_once();
    lock.lock();
  }
}

void Supervisor::on_worker_death(Worker& w, Clock::time_point now) {
  // Counted toward the breaker until a spawn proves itself with a probe;
  // the first pong after a spawn resets the streak (chaos-killed healthy
  // workers restart forever, only spawn->die->spawn loops open the circuit).
  std::lock_guard<std::mutex> lock(mu_);
  ++w.consecutive_failures;
  if (w.consecutive_failures >= config_.circuit_failures) {
    w.state.store(WorkerState::kCircuitOpen, std::memory_order_release);
    if (telemetry_ != nullptr) telemetry_->circuit_opens->inc();
    w.restart_at = now + ms(config_.circuit_cooloff_ms);
  } else {
    w.state.store(WorkerState::kDown, std::memory_order_release);
    w.restart_at = now + ms(w.backoff_ms);
    w.backoff_ms =
        std::min(config_.restart_backoff_max_ms, w.backoff_ms * 2);
  }
}

void Supervisor::run_chaos(Clock::time_point now) {
  ChaosConfig* chaos = config_.chaos;
  if (chaos == nullptr) return;

  const auto pick_victim = [&]() -> Worker* {
    std::vector<Worker*> alive;
    for (auto& w : workers_) {
      if (w->proc.running()) alive.push_back(w.get());
    }
    if (alive.empty()) return nullptr;
    return alive[chaos->next_random() % alive.size()];
  };

  const int kill_every = chaos->kill_every_ms.load(std::memory_order_relaxed);
  if (kill_every > 0 && now - last_chaos_kill_ >= ms(kill_every)) {
    last_chaos_kill_ = now;
    if (Worker* v = pick_victim()) {
      v->proc.deliver(SIGKILL);
      if (telemetry_ != nullptr) telemetry_->chaos_kills->inc();
    }
  }
  const int hang_every = chaos->hang_every_ms.load(std::memory_order_relaxed);
  if (hang_every > 0 && now - last_chaos_hang_ >= ms(hang_every)) {
    last_chaos_hang_ = now;
    if (Worker* v = pick_victim()) {
      v->proc.deliver(SIGSTOP);
      if (telemetry_ != nullptr) telemetry_->chaos_hangs->inc();
    }
  }
  if (ChaosConfig::consume(chaos->kill_worker)) {
    if (Worker* v = pick_victim()) {
      v->proc.deliver(SIGKILL);
      if (telemetry_ != nullptr) telemetry_->chaos_kills->inc();
    }
  }
  if (ChaosConfig::consume(chaos->hang_worker)) {
    if (Worker* v = pick_victim()) {
      v->proc.deliver(SIGSTOP);
      if (telemetry_ != nullptr) telemetry_->chaos_hangs->inc();
    }
  }
}

void Supervisor::tick_once() {
  const auto now = Clock::now();
  run_chaos(now);

  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    WorkerState st = w.state.load(std::memory_order_acquire);

    // Reap first: a death observed here moves the worker into the restart
    // (or breaker) path unless it was already marked down by a failed probe.
    if (w.proc.running() && w.proc.reap(nullptr)) {
      if (telemetry_ != nullptr) telemetry_->deaths->inc();
      if (st == WorkerState::kUp || st == WorkerState::kStarting) {
        on_worker_death(w, now);
      }
      st = w.state.load(std::memory_order_acquire);
    }

    switch (st) {
      case WorkerState::kDown:
      case WorkerState::kCircuitOpen: {
        bool due = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          due = now >= w.restart_at;
        }
        if (due) {
          std::string error;
          if (!spawn_worker(i, &error)) {
            // Spawn itself failing (fork pressure) is a failure like any
            // other: reschedule with backoff.
            on_worker_death(w, Clock::now());
          }
        }
        break;
      }
      case WorkerState::kStarting: {
        if (w.proc.probe_ping(config_.probe_timeout_ms)) {
          w.probe_asap.store(false, std::memory_order_release);
          w.state.store(WorkerState::kUp, std::memory_order_release);
          std::lock_guard<std::mutex> lock(mu_);
          w.consecutive_failures = 0;
          w.backoff_ms = config_.restart_backoff_ms;
          w.ever_up = true;
        } else {
          bool over_grace = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            over_grace = now - w.spawned_at >= ms(config_.start_grace_ms);
          }
          // Still inside the grace window: keep waiting (binding + cache
          // load take time). Past it: treat as wedged.
          if (over_grace) {
            if (telemetry_ != nullptr) telemetry_->probe_failures->inc();
            w.proc.deliver(SIGKILL);  // reaped (and counted) next tick
          }
        }
        break;
      }
      case WorkerState::kUp: {
        w.probe_asap.store(false, std::memory_order_release);
        if (!w.proc.probe_ping(config_.probe_timeout_ms)) {
          // Hung (SIGSTOP chaos, wedged loop) or died between reap and
          // probe. The deadline is the arbiter: kill and restart.
          if (telemetry_ != nullptr) telemetry_->probe_failures->inc();
          w.proc.deliver(SIGKILL);
          on_worker_death(w, now);
        }
        break;
      }
      case WorkerState::kDraining:
        break;
    }
  }

  if (telemetry_ != nullptr) {
    telemetry_->workers_up->set(static_cast<double>(workers_up()));
  }
}

}  // namespace am::fleet
