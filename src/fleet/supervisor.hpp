// The fleet supervisor: keeps N am_serve workers alive.
//
// One tick thread owns the whole health/restart state machine:
//   probe      every worker answers a deadline-bounded ping each tick; a
//              worker that stops answering (hung, SIGSTOPed, wedged) is
//              SIGKILLed and takes the crash path — the deadline, not the
//              process table, defines "down".
//   restart    crashed workers respawn after an exponential backoff
//              (doubling from restart_backoff_ms, capped); the first
//              successful probe after a spawn resets the backoff.
//   breaker    circuit_failures consecutive spawns that die before ever
//              answering a probe open the circuit: restarts pause for
//              circuit_cooloff_ms, then one half-open spawn retries.
//   chaos      the tick thread is also the chaos driver: it consumes the
//              one-shot ChaosConfig counters and runs the periodic
//              kill/hang schedule, so fault injection is serialized with
//              the state machine it attacks.
// Routing-side admission (bounded per-worker in-flight counts) is exposed
// through try_acquire/release; the Router calls them around each forward.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/chaos.hpp"
#include "fleet/worker.hpp"

namespace am::fleet {

struct FleetConfig {
  std::size_t workers = 4;
  /// am_serve executable; empty = find_worker_binary() discovery.
  std::string worker_binary;
  /// Directory for per-worker unix sockets (worker-<i>.sock).
  std::string runtime_dir = "/tmp";
  /// Shared second-level disk cache (--sweep-cache format), passed to every
  /// worker and consulted by the router's stale-serve path. Empty disables.
  std::string sweep_cache_dir;
  unsigned worker_threads = 2;
  /// Extra argv entries appended to every worker's command line.
  std::vector<std::string> worker_args;

  int health_interval_ms = 250;
  int probe_timeout_ms = 1000;
  /// Spawn-to-first-pong budget before a starting worker is killed.
  int start_grace_ms = 10000;
  int restart_backoff_ms = 200;
  int restart_backoff_max_ms = 5000;
  int circuit_failures = 5;
  int circuit_cooloff_ms = 10000;
  /// SIGTERM-to-exit budget per worker during drain before SIGKILL.
  int drain_timeout_ms = 10000;
  /// Admission cap: in-flight requests per worker before load is shed.
  int max_inflight = 64;

  bool metrics = true;
  /// Fault injection; not owned, may be null. Shared with tests/CLI.
  ChaosConfig* chaos = nullptr;
};

/// Locates the am_serve binary: $AM_SERVE_BIN, then an `am_serve` next to
/// the running executable, then ../tools/am_serve relative to it. Empty
/// string when none exists.
std::string find_worker_binary();

/// Admission verdict for routing one request to one worker.
enum class Admit : std::uint8_t {
  kOk,    ///< acquired; caller must release()
  kDown,  ///< worker not serving (down/starting/circuit-open/draining)
  kFull,  ///< worker at max_inflight; candidate for load shedding
};

class Supervisor {
 public:
  explicit Supervisor(FleetConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every worker and starts the tick thread. False with @p error
  /// filled when the binary is missing or a spawn fails outright.
  bool start(std::string* error);

  /// Blocks until every worker has answered a probe at least once (true)
  /// or @p timeout_ms elapsed (false). Callable after start().
  bool wait_all_up(int timeout_ms);

  /// Graceful shutdown: stop restarting, SIGTERM every worker, wait for
  /// exits (SIGKILL past drain_timeout_ms), join the tick thread.
  /// Idempotent.
  void drain();

  const FleetConfig& config() const noexcept { return config_; }
  std::size_t worker_count() const noexcept { return workers_.size(); }

  WorkerState state(std::size_t i) const {
    return workers_[i]->state.load(std::memory_order_acquire);
  }
  /// Respawn generation of worker @p i: bumped on every spawn. The router
  /// discards pooled connections minted under an older epoch.
  std::uint64_t epoch(std::size_t i) const {
    return workers_[i]->epoch.load(std::memory_order_acquire);
  }
  const service::Endpoint& endpoint(std::size_t i) const {
    return workers_[i]->proc.endpoint();
  }

  /// Bounded-queue admission for one forward to worker @p i.
  Admit try_acquire(std::size_t i);
  void release(std::size_t i);

  /// Router feedback: a forward to worker @p i failed at the transport
  /// level. The next tick re-probes it immediately instead of trusting the
  /// last healthy probe.
  void report_transport_failure(std::size_t i);

  // --- introspection (stats panel / tests) ---------------------------------
  struct WorkerStatus {
    WorkerState state;
    pid_t pid;
    std::uint64_t restarts;
    std::uint64_t epoch;
    int inflight;
    int consecutive_failures;
  };
  std::vector<WorkerStatus> status() const;
  std::uint64_t total_restarts() const;
  std::size_t workers_up() const;

 private:
  struct Worker {
    WorkerProcess proc;
    std::string socket_path;
    std::atomic<WorkerState> state{WorkerState::kDown};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<int> inflight{0};
    std::atomic<bool> probe_asap{false};
    // Tick-thread-owned (reads under mu_ for status()):
    int backoff_ms = 0;
    int consecutive_failures = 0;
    std::uint64_t restarts = 0;
    bool ever_up = false;
    std::chrono::steady_clock::time_point restart_at{};
    std::chrono::steady_clock::time_point spawned_at{};
  };

  struct Telemetry;

  bool spawn_worker(std::size_t i, std::string* error);
  void tick_loop();
  void tick_once();
  void run_chaos(std::chrono::steady_clock::time_point now);
  void on_worker_death(Worker& w, std::chrono::steady_clock::time_point now);

  FleetConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Telemetry> telemetry_;

  std::thread ticker_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool draining_ = false;
  bool started_ = false;

  std::chrono::steady_clock::time_point last_chaos_kill_{};
  std::chrono::steady_clock::time_point last_chaos_hang_{};
};

}  // namespace am::fleet
