#include "fleet/ring.hpp"

#include <algorithm>

#include "service/protocol.hpp"

namespace am::fleet {

namespace {

/// Ring point for worker @p w's virtual node @p v: the same
/// splitmix64-chained mix the request cache keys use, salted so vnode
/// points are independent of request hashes.
std::uint64_t vnode_point(std::size_t w, std::size_t v) {
  const std::string material =
      "vnode|" + std::to_string(w) + "|" + std::to_string(v);
  return service::chain_hash(material, 0x9e3779b97f4a7c15ULL);
}

}  // namespace

HashRing::HashRing(std::size_t workers, std::size_t vnodes)
    : workers_(workers == 0 ? 1 : workers) {
  if (vnodes == 0) vnodes = 1;
  slots_.reserve(workers_ * vnodes);
  for (std::size_t w = 0; w < workers_; ++w) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      slots_.push_back({vnode_point(w, v), static_cast<std::uint32_t>(w)});
    }
  }
  std::sort(slots_.begin(), slots_.end(),
            [](const Slot& a, const Slot& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.worker < b.worker;
            });
}

std::size_t HashRing::first_slot(std::string_view key) const {
  const std::uint64_t h = service::chain_hash(key, 0);
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), h,
      [](const Slot& s, std::uint64_t point) { return s.point < point; });
  return it == slots_.end() ? 0 : static_cast<std::size_t>(it - slots_.begin());
}

std::size_t HashRing::owner(std::string_view key) const {
  return slots_[first_slot(key)].worker;
}

std::vector<std::size_t> HashRing::route_order(std::string_view key) const {
  std::vector<std::size_t> order;
  order.reserve(workers_);
  std::vector<bool> seen(workers_, false);
  const std::size_t start = first_slot(key);
  for (std::size_t i = 0; i < slots_.size() && order.size() < workers_; ++i) {
    const std::uint32_t w = slots_[(start + i) % slots_.size()].worker;
    if (!seen[w]) {
      seen[w] = true;
      order.push_back(w);
    }
  }
  return order;
}

std::vector<double> HashRing::ownership() const {
  std::vector<double> share(workers_, 0.0);
  constexpr double kRange = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t prev =
        i == 0 ? slots_.back().point : slots_[i - 1].point;
    // Arc ending at this slot belongs to its worker; the wrap arc is the
    // i==0 case (prev = last point).
    const std::uint64_t arc = s.point - prev;  // mod 2^64 wraps correctly
    share[s.worker] += static_cast<double>(arc) / kRange;
  }
  return share;
}

}  // namespace am::fleet
