#include "fleet/worker.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/client.hpp"

namespace am::fleet {

const char* to_string(WorkerState s) noexcept {
  switch (s) {
    case WorkerState::kStarting: return "starting";
    case WorkerState::kUp: return "up";
    case WorkerState::kDown: return "down";
    case WorkerState::kCircuitOpen: return "circuit_open";
    case WorkerState::kDraining: return "draining";
  }
  return "unknown";
}

WorkerProcess::~WorkerProcess() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    wait_exit();
  }
}

bool WorkerProcess::spawn(const WorkerSpec& spec, std::string* error) {
  if (pid_ > 0) {
    if (error != nullptr) *error = "worker already running";
    return false;
  }
  endpoint_.kind = service::Endpoint::Kind::kUnix;
  endpoint_.path = spec.socket_path;
  // A stale socket file from a SIGKILLed predecessor would make the new
  // worker's bind succeed but probes race the unlink; clear it up front.
  ::unlink(spec.socket_path.c_str());

  // argv is fully materialized before fork(): the child may only call
  // async-signal-safe functions (we fork from a process with live threads).
  std::vector<std::string> strings;
  strings.push_back(spec.binary);
  // Ephemeral TCP keeps N workers from colliding on the default port; the
  // supervisor only talks over the unix socket.
  strings.push_back("--listen=127.0.0.1:0");
  strings.push_back("--listen-unix=" + spec.socket_path);
  for (const std::string& a : spec.args) strings.push_back(a);
  std::vector<char*> argv;
  argv.reserve(strings.size() + 1);
  for (std::string& s : strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) {
      *error = std::string("fork: ") + std::strerror(errno);
    }
    return false;
  }
  if (pid == 0) {
    // Child: silence the listening banner, reset disposition of the signals
    // the supervisor handles, exec. Only async-signal-safe calls here.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      if (devnull != STDOUT_FILENO) ::close(devnull);
    }
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGPIPE, SIG_DFL);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the supervisor reaps status 127
  }
  pid_ = pid;
  return true;
}

bool WorkerProcess::reap(int* status) {
  if (pid_ <= 0) return false;
  int st = 0;
  const pid_t rc = ::waitpid(pid_, &st, WNOHANG);
  if (rc != pid_) return false;
  if (status != nullptr) *status = st;
  pid_ = -1;
  return true;
}

void WorkerProcess::deliver(int sig) noexcept {
  if (pid_ > 0) ::kill(pid_, sig);
}

void WorkerProcess::wait_exit() noexcept {
  if (pid_ <= 0) return;
  int st = 0;
  while (::waitpid(pid_, &st, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
}

bool WorkerProcess::probe_ping(int timeout_ms) const {
  service::ServiceClient client;
  client.set_timeout_ms(timeout_ms);
  client.set_max_line_bytes(1 << 16);
  std::string error;
  if (!client.connect(endpoint_, &error)) return false;
  const auto response =
      client.roundtrip("{\"kind\":\"ping\",\"id\":\"hc\"}", &error);
  if (!response.has_value()) return false;
  return response->find("\"pong\":true") != std::string::npos;
}

}  // namespace am::fleet
