// Persistence for calibrated model parameters: calibrate a machine once,
// save the parameters, and load them in later runs / on other hosts.
//
// Format: a self-describing line-oriented text file ("amp1" header), stable
// across versions as long as fields are only appended. Matrices are stored
// row-major; exact round-trip is covered by tests/model/params_io_test.cpp.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/params.hpp"

namespace am::model {

/// Serializes @p params into the amp1 text format.
void save_params(const ModelParams& params, std::ostream& out);

/// Parses an amp1 stream; returns nullopt on malformed input (wrong header,
/// truncated matrices, non-numeric fields).
std::optional<ModelParams> load_params(std::istream& in);

/// Convenience file wrappers; false/nullopt on I/O failure.
bool save_params_file(const ModelParams& params, const std::string& path);
std::optional<ModelParams> load_params_file(const std::string& path);

}  // namespace am::model
