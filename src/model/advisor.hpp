// Algorithmic-design advisor: the "facilitates design decisions" use of the
// model the paper's abstract promises.
//
// Given a workload sketch (thread count, work between shared accesses) the
// advisor prices the standard implementation options with the bouncing
// model and recommends one:
//   * shared counters — FAA vs CAS retry loop vs lock-protected increment;
//   * spinlocks       — TAS vs TTAS vs ticket vs MCS (closed-form hand-off
//     costs per lock algorithm, documented inline);
//   * backoff         — the work a CAS loop should insert between retries
//     to leave the high-contention regime (w* from the model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/bouncing_model.hpp"

namespace am::model {

struct Option {
  std::string name;
  double throughput_mops = 0.0;
  std::string note;
};

struct Advice {
  std::string scenario;
  std::vector<Option> options;  ///< sorted best-first
  std::string recommended;      ///< == options.front().name
  std::string rationale;
};

/// Shared counter incremented by @p threads threads every @p work cycles.
Advice advise_counter(const BouncingModel& model, std::uint32_t threads,
                      double work);

/// Sharded-counter throughput estimate: k independent shards, each shared
/// by ceil(threads/k) threads, priced with the bouncing model. The read
/// side pays k line fetches, which is why k stops helping past ~threads.
double predict_sharded_counter_mops(const BouncingModel& model,
                                    std::uint32_t threads, double work,
                                    std::uint32_t shards);

/// Spinlock with @p critical_cycles inside and @p outside_cycles between
/// acquisitions, across @p threads threads.
Advice advise_lock(const BouncingModel& model, std::uint32_t threads,
                   double critical_cycles, double outside_cycles);

/// Backoff a CAS loop should apply between retries so the line leaves the
/// saturated regime: 3 * w* = 3 * (N-1) * h — 2x for the loop's ~2
/// acquisitions per completed op plus drain headroom (0 for <= 1 thread).
double recommended_backoff_cycles(const BouncingModel& model,
                                  std::uint32_t threads);

}  // namespace am::model
