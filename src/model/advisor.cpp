#include "model/advisor.hpp"

#include <algorithm>
#include <sstream>

namespace am::model {

namespace {

void finalize(Advice& advice) {
  std::sort(advice.options.begin(), advice.options.end(),
            [](const Option& a, const Option& b) {
              return a.throughput_mops > b.throughput_mops;
            });
  advice.recommended = advice.options.front().name;
}

double mops_from_cycles_per_op(const ModelParams& p, double cycles_per_op,
                               double concurrency = 1.0) {
  if (cycles_per_op <= 0.0) return 0.0;
  return concurrency * p.freq_ghz * 1e3 / cycles_per_op;
}

}  // namespace

Advice advise_counter(const BouncingModel& model, std::uint32_t threads,
                      double work) {
  Advice advice;
  advice.scenario = "shared counter, " + std::to_string(threads) +
                    " threads, work=" + std::to_string(static_cast<long>(work));

  const Prediction faa = model.predict(Primitive::kFaa, threads, work);
  const Prediction casloop = model.predict(Primitive::kCasLoop, threads, work);
  advice.options.push_back(
      {"FAA", faa.throughput_mops, "one line acquisition per increment"});
  advice.options.push_back(
      {"CAS-loop", casloop.throughput_mops,
       "~" + std::to_string(static_cast<int>(casloop.attempts_per_op + 0.5)) +
           " acquisitions per increment under this contention"});

  // Lock-protected increment, priced like advise_lock's TAS formula: the
  // critical section is one FAA bounce on the data line, the release store
  // queues behind ~n/2 failed exchanges on the lock line.
  const double n = static_cast<double>(std::max(1u, threads));
  const double T = model.mean_transfer(threads);
  const double h_rmw = T + model.params().local_op_cycles(Primitive::kSwap);
  const double h_store = T + model.params().local_op_cycles(Primitive::kStore);
  const double cs = (threads >= 2 ? T : 0.0) +
                    model.params().local_op_cycles(Primitive::kFaa);
  const double lock_cycles =
      threads >= 2 ? cs + h_store + (n / 2.0) * h_rmw
                   : cs + 2.0 * model.params().local_op_cycles(Primitive::kSwap);
  const double x_lock =
      std::min(mops_from_cycles_per_op(model.params(), lock_cycles),
               mops_from_cycles_per_op(model.params(), work + lock_cycles,
                                       static_cast<double>(threads)));
  advice.options.push_back(
      {"lock+inc", x_lock, "serializes two lines instead of one"});

  // Sharding sidesteps the bounce entirely once shards ~ threads.
  const std::uint32_t k = std::max(1u, threads);
  advice.options.push_back(
      {"sharded", predict_sharded_counter_mops(model, threads, work, k),
       "per-thread shards; reads must sum " + std::to_string(k) + " lines"});

  finalize(advice);
  std::ostringstream why;
  why.precision(1);
  why << std::fixed << "FAA completes one increment per line hand-off; a CAS "
      << "loop needs ~" << casloop.attempts_per_op
      << " hand-offs per increment at " << threads
      << " threads (crossover work w* = " << faa.crossover_work
      << " cycles).";
  advice.rationale = why.str();
  return advice;
}

Advice advise_lock(const BouncingModel& model, std::uint32_t threads,
                   double critical_cycles, double outside_cycles) {
  Advice advice;
  advice.scenario = "spinlock, " + std::to_string(threads) + " threads, cs=" +
                    std::to_string(static_cast<long>(critical_cycles));

  const ModelParams& p = model.params();
  const double n = static_cast<double>(std::max(1u, threads));
  const double T = model.mean_transfer(threads);
  const double h_rmw = T + p.local_op_cycles(Primitive::kSwap);
  const double h_store = T + p.local_op_cycles(Primitive::kStore);

  // Cost per lock hand-off (acquisition-to-acquisition), derived from the
  // bouncing model; each formula states which line transfers it prices.
  //
  // TAS: while the lock is held, every contender keeps bouncing the lock
  // line with failed exchanges, delaying the release store behind ~n/2
  // queued exchanges on average.
  const double tas = critical_cycles + h_store + (n / 2.0) * h_rmw;
  // TTAS: contenders spin on Shared copies (local reads, no bouncing); a
  // release triggers an invalidation burst — every spinner re-fetches a
  // shared copy (serialized at the directory) and about half race an
  // exchange before the winner's store is visible.
  const double ttas = critical_cycles + h_store + h_rmw +
                      (n / 2.0) * p.shared_supply;
  // Ticket: one FAA on the ticket line per acquisition plus the release
  // store and the next waiter's refill of the serving line. Perfectly fair.
  const double ticket =
      critical_cycles + (T + p.local_op_cycles(Primitive::kFaa)) + h_store +
      p.shared_supply;
  // MCS: one SWP on the tail plus a point-to-point store to the successor's
  // node; spinning is entirely local.
  const double mcs = critical_cycles + h_rmw + h_store;

  const double total_demand = outside_cycles + critical_cycles;
  auto price = [&](double handoff_cycles, const char* name, const char* note) {
    // Saturated: one critical section per hand-off. Unsaturated: each
    // thread loops at its own pace.
    const double x = std::min(
        mops_from_cycles_per_op(p, handoff_cycles),
        mops_from_cycles_per_op(p, total_demand + handoff_cycles, n));
    advice.options.push_back({name, x, note});
  };
  price(tas, "TAS", "lock line bounces on every failed attempt");
  price(ttas, "TTAS", "spin on shared copies; burst on release");
  price(ticket, "ticket", "fair; two lines but bounded hand-off");
  price(mcs, "MCS", "local spinning; point-to-point hand-off");

  finalize(advice);
  std::ostringstream why;
  why << "hand-off cost per acquisition at " << threads
      << " threads: TAS=" << tas << " TTAS=" << ttas << " ticket=" << ticket
      << " MCS=" << mcs << " cycles (T=" << T << ").";
  advice.rationale = why.str();
  return advice;
}

double predict_sharded_counter_mops(const BouncingModel& model,
                                    std::uint32_t threads, double work,
                                    std::uint32_t shards) {
  if (threads == 0) return 0.0;
  shards = std::max(1u, std::min(shards, threads));
  // Threads per shard (ceil); each shard behaves like an independent
  // high-contention cell with that many threads.
  const std::uint32_t per_shard = (threads + shards - 1) / shards;
  const Prediction p = model.predict(Primitive::kFaa, per_shard, work);
  // Shards with fewer threads only raise the total; the floor is tight.
  const double full_shards = static_cast<double>(threads) / per_shard;
  return p.throughput_mops * full_shards;
}

double recommended_backoff_cycles(const BouncingModel& model,
                                  std::uint32_t threads) {
  // A paced CAS loop still needs ~2 acquisitions per op (stale first
  // attempt + held retry), so leaving the saturated regime needs 2x the
  // single-acquisition crossover, plus headroom — at exactly the boundary
  // the queue never drains. 3x maximizes completed-op throughput in the
  // backoff ablation (bench_a1_ablations).
  return 3.0 * model.crossover_work(Primitive::kCasLoop, threads);
}

}  // namespace am::model
