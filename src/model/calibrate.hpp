// Model calibration: instantiating the bouncing model from measurements.
//
// The paper's point is that the model is "very simple to be used in
// practice": a handful of probe runs determine every parameter.
//   1. One single-threaded run per primitive on a private line measures the
//      local cost c_p (cache access + execute).
//   2. A FAA thread sweep under high contention measures the hand-off time
//      h(N) = 1/X(N); subtracting c_FAA leaves the mean transfer cost
//      T(N), which is a known mixture of the near- and far-class transfer
//      costs for the machine's topology — a least-squares fit over the
//      sweep recovers t_near and t_far.
// The same procedure runs unchanged against the simulator or real hardware
// through the ExecutionBackend seam.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"
#include "model/params.hpp"

namespace am::model {

struct CalibrationOptions {
  /// Thread counts for the transfer-cost sweep; empty = derived from the
  /// backend's maximum (a spread of ~8 points).
  std::vector<std::uint32_t> sweep_threads;
  /// Repetitions per probe point (medians are taken); >1 only matters on
  /// noisy hardware.
  std::uint32_t repetitions = 1;
};

struct Calibration {
  bool ok = false;
  /// Measured local cost per primitive (l1 + exec combined), cycles.
  std::array<double, 7> local_cost{};
  double t_near = 0.0;
  double t_far = 0.0;
  double fit_r_squared = 0.0;
  /// Distance-aware fit t(i,j) = t_base + t_per_hop * hops(i,j), used when
  /// the topology's hop counts vary (the KNL mesh). Strictly better than
  /// the two-class fit there; absent on two-class machines.
  bool hop_fit = false;
  double t_base = 0.0;
  double t_per_hop = 0.0;
  double hop_fit_r_squared = 0.0;
  std::string backend;
  std::string log;  ///< human-readable account of every probe

  /// Returns @p skeleton with its cost parameters replaced by the calibrated
  /// ones: every near-class pair gets t_near, far-class pairs t_far, and the
  /// per-primitive exec costs are local_cost - skeleton.l1_hit. The skeleton
  /// supplies structure only (which pairs are near/far, arbitration).
  ModelParams apply_to(ModelParams skeleton) const;
};

/// Runs the probe suite on @p backend. @p skeleton provides the machine's
/// structure (topology classes); its cost values are ignored.
Calibration calibrate(bench::ExecutionBackend& backend,
                      const ModelParams& skeleton,
                      const CalibrationOptions& options = {});

}  // namespace am::model
