#include "model/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.hpp"
#include "model/handoff.hpp"

namespace am::model {

namespace {

/// Median of a few repeated probe measurements.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::vector<std::uint32_t> default_sweep(std::uint32_t max_threads) {
  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    if (n <= max_threads) sweep.push_back(n);
  }
  if (sweep.empty()) sweep.push_back(std::max(2u, max_threads));
  return sweep;
}

}  // namespace

ModelParams Calibration::apply_to(ModelParams skeleton) const {
  for (std::size_t p = 0; p < local_cost.size(); ++p) {
    skeleton.exec_cost[p] = std::max(0.0, local_cost[p] - skeleton.l1_hit);
  }
  const std::uint32_t n = skeleton.cores;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t idx = static_cast<std::size_t>(i) * n + j;
      skeleton.transfer[idx] =
          hop_fit ? std::max(0.0, t_base + t_per_hop * skeleton.hops[idx])
                  : (skeleton.is_far[idx] ? t_far : t_near);
    }
  }
  return skeleton;
}

Calibration calibrate(bench::ExecutionBackend& backend,
                      const ModelParams& skeleton,
                      const CalibrationOptions& options) {
  Calibration cal;
  cal.backend = backend.name() + ":" + backend.machine_name();
  std::ostringstream log;

  // --- Probe 1: local cost per primitive (1 thread, private line) ----------
  for (Primitive p : all_primitives()) {
    std::vector<double> samples;
    for (std::uint32_t rep = 0; rep < std::max(1u, options.repetitions); ++rep) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kLowContention;
      w.prim = p;
      w.threads = 1;
      w.work = 0;
      w.seed = 17 + rep;
      const auto run = backend.run(w);
      // Throughput is the robust estimator here (latency sampling has
      // timer overhead on hardware): c = cycles per op.
      if (run.total_ops() > 0) {
        samples.push_back(run.duration_cycles /
                          static_cast<double>(run.total_ops()));
      }
    }
    const double c = median_of(std::move(samples));
    cal.local_cost[static_cast<std::size_t>(p)] = c;
    log << "local cost " << to_string(p) << " = " << c << " cy\n";
  }

  // --- Probe 2: transfer costs from a FAA high-contention sweep ------------
  auto sweep = options.sweep_threads.empty()
                   ? default_sweep(std::min(backend.max_threads(),
                                            skeleton.cores))
                   : options.sweep_threads;

  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> hop_rows;
  std::vector<double> y;
  const double c_faa = cal.local_cost[static_cast<std::size_t>(Primitive::kFaa)];
  for (std::uint32_t n : sweep) {
    if (n < 2 || n > backend.max_threads() || n > skeleton.cores) continue;
    std::vector<double> samples;
    for (std::uint32_t rep = 0; rep < std::max(1u, options.repetitions); ++rep) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = Primitive::kFaa;
      w.threads = n;
      w.work = 0;
      w.seed = 23 + rep;
      const auto run = backend.run(w);
      const double x = run.throughput_ops_per_kcycle();
      if (x > 0.0) samples.push_back(1000.0 / x);  // h(N), cycles
    }
    const double h = median_of(std::move(samples));
    const double t = std::max(0.0, h - c_faa);

    // The near/far mixture of the hand-off chain is structural: it depends
    // on which pairs are far, not on the unknown costs.
    const HandoffEstimate ho = estimate_handoff(skeleton, n, c_faa);
    rows.push_back({1.0 - ho.far_fraction, ho.far_fraction});
    hop_rows.push_back({1.0, ho.mean_hops});
    y.push_back(t);
    log << "h(" << n << ") = " << h << " cy -> T = " << t
        << " cy (far fraction " << ho.far_fraction << ")\n";
  }

  if (rows.empty()) {
    cal.log = log.str() + "no usable sweep points\n";
    return cal;
  }

  bool any_far = false;
  for (const auto& r : rows) any_far |= r[1] > 0.0;

  if (!any_far) {
    // Single-class machine (uniform/one socket): t_near is the mean, t_far
    // is unidentifiable and copied from t_near.
    double sum = 0.0;
    for (double v : y) sum += v;
    cal.t_near = sum / static_cast<double>(y.size());
    cal.t_far = cal.t_near;
    cal.fit_r_squared = 1.0;
    cal.ok = true;
    log << "single transfer class: t = " << cal.t_near << " cy\n";
  } else {
    const LeastSquaresFit fit = least_squares(rows, y);
    if (fit.ok && fit.coefficients.size() == 2) {
      cal.t_near = std::max(0.0, fit.coefficients[0]);
      cal.t_far = std::max(0.0, fit.coefficients[1]);
      cal.fit_r_squared = fit.r_squared;
      cal.ok = true;
      log << "fit: t_near = " << cal.t_near << " cy, t_far = " << cal.t_far
          << " cy (r^2 = " << fit.r_squared << ")\n";
    } else {
      log << "least-squares fit failed\n";
    }
  }

  // Distance-aware refinement for topologies whose hop counts vary (the
  // mesh): t(n) = t_base + t_per_hop * mean_hops(n).
  double min_hops = 1e300;
  double max_hops = -1e300;
  for (const auto& r : hop_rows) {
    min_hops = std::min(min_hops, r[1]);
    max_hops = std::max(max_hops, r[1]);
  }
  if (cal.ok && hop_rows.size() >= 2 && max_hops - min_hops > 0.05) {
    const LeastSquaresFit fit = least_squares(hop_rows, y);
    if (fit.ok && fit.coefficients.size() == 2 &&
        fit.r_squared > cal.fit_r_squared) {
      cal.hop_fit = true;
      cal.t_base = std::max(0.0, fit.coefficients[0]);
      cal.t_per_hop = std::max(0.0, fit.coefficients[1]);
      cal.hop_fit_r_squared = fit.r_squared;
      log << "hop fit: t = " << cal.t_base << " + " << cal.t_per_hop
          << " * hops (r^2 = " << fit.r_squared
          << ") — used instead of the two-class fit\n";
    }
  }

  cal.log = log.str();
  return cal;
}

}  // namespace am::model
