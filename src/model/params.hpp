// Parameters of the cache-line-bouncing performance model.
//
// The model (Section "The model" in DESIGN.md) is parameterized by
//   * c_p   — execution cost of primitive p with the line already held,
//   * t_ij  — cache-line transfer cost between cores i and j,
//   * memory/shared-supply fill costs, and
//   * the arbitration policy of the coherence fabric.
// Parameters come either from a MachineConfig (analytic mode — we know the
// simulated machine's constants) or from calibration probes run against an
// ExecutionBackend (calibrated mode — how the model would be instantiated on
// real hardware; see calibrate.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "atomics/primitives.hpp"
#include "sim/config.hpp"
#include "sim/energy_model.hpp"
#include "sim/types.hpp"

namespace am::model {

struct ModelParams {
  std::string machine = "unknown";
  double freq_ghz = 1.0;
  std::uint32_t cores = 0;

  double l1_hit = 4.0;  ///< cycles to operate on a held line (cache access)
  /// Execution cost per primitive (indexed by Primitive), excludes l1_hit.
  std::array<double, 7> exec_cost{};
  double memory_fill = 200.0;
  double shared_supply = 40.0;

  sim::Arbitration arbitration = sim::Arbitration::kFifo;
  double aging_limit = 1500.0;
  double arbitration_bias = 1.0;  ///< kProximityBiased temperature

  /// Pairwise cache-to-cache transfer cost, row-major cores x cores.
  std::vector<double> transfer;
  /// Pairwise hop counts (energy model) and far-class flags.
  std::vector<double> hops;
  std::vector<std::uint8_t> is_far;
  /// Pairwise arbitration distance (the fabric's proximity metric).
  std::vector<double> distance;

  sim::EnergyParams energy{};

  double transfer_between(std::uint32_t from, std::uint32_t to) const {
    return transfer.at(static_cast<std::size_t>(from) * cores + to);
  }
  double hops_between(std::uint32_t from, std::uint32_t to) const {
    return hops.at(static_cast<std::size_t>(from) * cores + to);
  }
  bool far_between(std::uint32_t from, std::uint32_t to) const {
    return is_far.at(static_cast<std::size_t>(from) * cores + to) != 0;
  }
  double distance_between(std::uint32_t from, std::uint32_t to) const {
    return distance.at(static_cast<std::size_t>(from) * cores + to);
  }

  double exec_of(Primitive p) const {
    return exec_cost[static_cast<std::size_t>(p)];
  }
  /// Cost of one completed primitive on a held line: cache access + execute.
  double local_op_cycles(Primitive p) const { return l1_hit + exec_of(p); }

  /// Builds analytic-mode parameters from a simulator machine description.
  static ModelParams from_machine(const sim::MachineConfig& config);
};

}  // namespace am::model
