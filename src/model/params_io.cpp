#include "model/params_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace am::model {

namespace {

constexpr const char* kMagic = "amp1";

void write_vector(std::ostream& out, const char* name,
                  const std::vector<double>& v) {
  out << name << ' ' << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

bool read_vector(std::istream& in, const std::string& expected_name,
                 std::vector<double>& v) {
  std::string name;
  std::size_t count = 0;
  if (!(in >> name >> count) || name != expected_name) return false;
  v.resize(count);
  for (auto& x : v) {
    if (!(in >> x)) return false;
  }
  return true;
}

}  // namespace

void save_params(const ModelParams& p, std::ostream& out) {
  out << kMagic << '\n';
  out << std::setprecision(17);
  out << "machine " << p.machine << '\n';
  out << "freq_ghz " << p.freq_ghz << '\n';
  out << "cores " << p.cores << '\n';
  out << "l1_hit " << p.l1_hit << '\n';
  out << "exec_cost";
  for (double c : p.exec_cost) out << ' ' << c;
  out << '\n';
  out << "memory_fill " << p.memory_fill << '\n';
  out << "shared_supply " << p.shared_supply << '\n';
  out << "arbitration " << static_cast<int>(p.arbitration) << '\n';
  out << "aging_limit " << p.aging_limit << '\n';
  out << "arbitration_bias " << p.arbitration_bias << '\n';
  write_vector(out, "transfer", p.transfer);
  write_vector(out, "hops", p.hops);
  out << "is_far " << p.is_far.size();
  for (auto b : p.is_far) out << ' ' << static_cast<int>(b);
  out << '\n';
  write_vector(out, "distance", p.distance);
  out << "energy " << p.energy.core_active_watts << ' '
      << p.energy.core_spin_watts << ' ' << p.energy.uncore_base_watts << ' '
      << p.energy.transfer_nj_per_hop << ' ' << p.energy.transfer_nj_base
      << ' ' << p.energy.cross_link_nj << ' ' << p.energy.directory_nj << ' '
      << p.energy.memory_nj << ' ' << p.energy.freq_ghz << '\n';
}

std::optional<ModelParams> load_params(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) return std::nullopt;

  ModelParams p;
  std::string key;
  if (!(in >> key >> p.machine) || key != "machine") return std::nullopt;
  if (!(in >> key >> p.freq_ghz) || key != "freq_ghz") return std::nullopt;
  if (!(in >> key >> p.cores) || key != "cores") return std::nullopt;
  if (!(in >> key >> p.l1_hit) || key != "l1_hit") return std::nullopt;
  if (!(in >> key) || key != "exec_cost") return std::nullopt;
  for (auto& c : p.exec_cost) {
    if (!(in >> c)) return std::nullopt;
  }
  if (!(in >> key >> p.memory_fill) || key != "memory_fill") {
    return std::nullopt;
  }
  if (!(in >> key >> p.shared_supply) || key != "shared_supply") {
    return std::nullopt;
  }
  int arb = 0;
  if (!(in >> key >> arb) || key != "arbitration" || arb < 0 || arb > 2) {
    return std::nullopt;
  }
  p.arbitration = static_cast<sim::Arbitration>(arb);
  if (!(in >> key >> p.aging_limit) || key != "aging_limit") {
    return std::nullopt;
  }
  if (!(in >> key >> p.arbitration_bias) || key != "arbitration_bias") {
    return std::nullopt;
  }
  if (!read_vector(in, "transfer", p.transfer)) return std::nullopt;
  if (!read_vector(in, "hops", p.hops)) return std::nullopt;
  std::size_t count = 0;
  if (!(in >> key >> count) || key != "is_far") return std::nullopt;
  p.is_far.resize(count);
  for (auto& b : p.is_far) {
    int v = 0;
    if (!(in >> v)) return std::nullopt;
    b = static_cast<std::uint8_t>(v != 0);
  }
  if (!read_vector(in, "distance", p.distance)) return std::nullopt;
  if (!(in >> key) || key != "energy") return std::nullopt;
  auto& e = p.energy;
  if (!(in >> e.core_active_watts >> e.core_spin_watts >>
        e.uncore_base_watts >> e.transfer_nj_per_hop >> e.transfer_nj_base >>
        e.cross_link_nj >> e.directory_nj >> e.memory_nj >> e.freq_ghz)) {
    return std::nullopt;
  }

  // Structural consistency: every matrix is cores x cores.
  const std::size_t expect = static_cast<std::size_t>(p.cores) * p.cores;
  if (p.transfer.size() != expect || p.hops.size() != expect ||
      p.is_far.size() != expect || p.distance.size() != expect) {
    return std::nullopt;
  }
  return p;
}

bool save_params_file(const ModelParams& params, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_params(params, out);
  return static_cast<bool>(out);
}

std::optional<ModelParams> load_params_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_params(in);
}

}  // namespace am::model
