// Analytical treatment of CAS success/failure under contention.
//
// A failed CAS is not free: `lock cmpxchg` issues a read-for-ownership and
// drags the whole cache line to the failing core, so a CAS attempt costs the
// same line acquisition a successful one does. The model below quantifies
// how often attempts fail and what that does to the useful throughput of
// the canonical CAS retry loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace am::model {

/// Success probability of a CAS attempt under maximal contention when the
/// hand-off order is deterministic (a fair queue visits all N requesters in
/// a fixed rotation): exactly one requester per rotation holds a fresh
/// expectation, so the aggregate success rate is 1/N.
double cas_success_deterministic(std::uint32_t threads);

/// Success probability when attempt interleavings are randomized (timing
/// jitter on real hardware): an attempt succeeds iff no other success landed
/// between its expectation refresh and its execution. Modelling intervening
/// successes as Poisson with mean s*(N-1) gives the fixed point
///     s = exp(-s * (N - 1)),
/// solved here by iteration. s ~ ln(N)/N for large N — slightly better than
/// the deterministic 1/N but the same shape.
double cas_success_poisson(std::uint32_t threads);

/// Share-aware success model: when arbitration skews grant shares q_i
/// (proximity bias), frequent winners see fewer intervening grants between
/// their attempts and succeed more often. With mean success rate s, core i
/// sees ~(1/q_i - 1) intervening grants, so
///     s_i = (1 - s)^(1/q_i - 1),   s = sum_i q_i * s_i,
/// solved by bisection (the right side is decreasing in s). For uniform
/// shares this reduces to (1-s)^(N-1) = s — the discrete analogue of the
/// Poisson fixed point.
struct SharesSuccess {
  double mean_success = 1.0;           ///< attempt-weighted success rate
  std::vector<double> per_core_success;///< s_i per core (same order as q)
};
SharesSuccess cas_success_from_shares(std::span<const double> grant_shares);

/// Expected line acquisitions per *completed* operation of a CAS retry loop
/// (geometric in the success rate): N under maximal contention. This is the
/// model's headline design signal — FAA completes one operation per
/// acquisition, a CAS loop needs ~N, so FAA wins by ~N x.
double casloop_attempts_per_op(std::uint32_t threads);

}  // namespace am::model
