// The cache-line-bouncing performance model — the paper's contribution.
//
// The model views a contended atomic as a token (the cache line in M state)
// handed between cores. With N threads issuing a primitive of local cost c
// on one line, separated by w cycles of private work, and a mean hand-off
// transfer cost T(N) given by the topology and arbitration policy:
//
//   hold            h      = T(N) + c
//   crossover       w*     = (N-1) * h
//   throughput      X(N,w) = min( 1/h , N/(w + h) )          [ops/cycle]
//   latency         L(N,w) = max( h , N*h - w )              [cycles]
//
// For w < w* the line is saturated: adding threads adds latency, not
// throughput (the high-contention plateau of the paper's figures). For
// w > w* requests no longer queue and throughput scales with N until the
// next crossover. LOAD never bounces once every reader holds a Shared copy,
// which is why loads scale where RMWs plateau.
//
// CAS refines this with a success model (see cas_model.hpp); fairness comes
// from the hand-off process's grant shares; energy from pricing each
// component of L (see energy predictor below).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "atomics/primitives.hpp"
#include "model/handoff.hpp"
#include "model/params.hpp"

namespace am::model {

enum class Regime : std::uint8_t { kHighContention, kLowContention };

const char* to_string(Regime r) noexcept;

/// All model outputs for one (primitive, threads, work) point.
struct Prediction {
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  double work = 0.0;

  Regime regime = Regime::kLowContention;
  double crossover_work = 0.0;       ///< w*, cycles
  double mean_transfer_cycles = 0.0; ///< T(N)
  double hold_cycles = 0.0;          ///< h = T(N) + c

  double throughput_ops_per_kcycle = 0.0;  ///< completed ops per 1000 cycles
  double throughput_mops = 0.0;            ///< completed ops per second / 1e6
  double latency_cycles = 0.0;             ///< per completed op
  double success_rate = 1.0;               ///< per completed op (CAS only <1)
  double attempts_per_op = 1.0;            ///< line acquisitions per op
  double fairness_jain = 1.0;              ///< over per-thread completed ops
  double energy_per_op_nj = 0.0;
};

class BouncingModel {
 public:
  explicit BouncingModel(ModelParams params);

  /// Prediction for the paper's high-contention setting (shared line).
  /// Valid for any w — the regime falls out of the crossover test.
  Prediction predict(Primitive prim, std::uint32_t threads, double work) const;

  /// Prediction for the paper's low-contention setting (private lines):
  /// no transfers in steady state, pure local cost.
  Prediction predict_private(Primitive prim, std::uint32_t threads,
                             double work) const;

  /// Read-mostly mix on one shared line: each thread issues @p write_prim
  /// with probability f and LOAD otherwise. Writers invalidate all reader
  /// copies; each reader's next load refetches (serialized shared supply).
  /// Aggregate op throughput:
  ///   reads between writes per reader are local (c_load) except the first;
  ///   every write costs a full acquisition h_w plus R refetches behind it.
  Prediction predict_mixed(Primitive write_prim, double write_fraction,
                           std::uint32_t threads, double work) const;

  /// Skewed sharing over @p n_lines lines with Zipf exponent @p s: each op
  /// picks line l with probability p_l. A closed queueing network of N
  /// customers over n_lines hand-off channels of service time h, solved
  /// with the Schweitzer mean-value approximation:
  ///     R_l = h · (1 + (N−1)·u_l),   u_l = p_l·R_l / (w + R),
  ///     R   = Σ_l p_l·R_l,           X  = N / (w + R).
  /// Exact in the single-hot-line limit (reduces to 1/h) and tight for the
  /// uniform case; E5 rows in tests/model quantify the skewed middle.
  Prediction predict_zipf(Primitive prim, std::uint32_t threads, double work,
                          std::size_t n_lines, double s) const;

  /// Crossover work w* for a shared-line workload.
  double crossover_work(Primitive prim, std::uint32_t threads) const;

  /// Expected hand-off transfer cost T(N) under the configured arbitration.
  double mean_transfer(std::uint32_t threads) const;

  /// Latency of a single op whose line is in a given supply situation —
  /// the low-contention state-conditioned latency table (Table 2).
  ///   local-hit: c;  near/far: t + c;  memory: fill + c.
  double single_op_latency(Primitive prim, sim::Supply supply,
                           double transfer_cycles) const;

  const ModelParams& params() const noexcept { return params_; }

 private:
  const HandoffEstimate& handoff_for(std::uint32_t threads) const;
  double energy_per_op(Primitive prim, std::uint32_t threads, double work,
                       double latency, double attempts,
                       const HandoffEstimate& h) const;

  ModelParams params_;
  mutable std::map<std::uint32_t, HandoffEstimate> handoff_cache_;
};

}  // namespace am::model
