// Model validation: predicted vs measured across the experiment grid
// (Table 3 of the reproduction).
#pragma once

#include <cstdint>
#include <vector>

#include "bench_core/backend.hpp"
#include "model/bouncing_model.hpp"

namespace am::model {

struct ValidationPoint {
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  double work = 0.0;

  double measured_tput = 0.0;   ///< ops per kcycle
  double predicted_tput = 0.0;
  double measured_latency = 0.0;  ///< cycles
  double predicted_latency = 0.0;

  double tput_error() const;     ///< |pred-meas|/meas, fraction
  double latency_error() const;
};

struct ValidationOptions {
  std::vector<Primitive> primitives = {Primitive::kFaa, Primitive::kSwap,
                                       Primitive::kCas, Primitive::kCasLoop,
                                       Primitive::kLoad};
  std::vector<std::uint32_t> thread_counts = {1, 2, 4, 8, 16, 32};
  std::vector<double> work_values = {0.0, 200.0, 1000.0, 4000.0};
};

struct ValidationReport {
  std::vector<ValidationPoint> points;
  double mape_throughput = 0.0;
  double mape_latency = 0.0;
  double max_rel_err_throughput = 0.0;
};

/// Measures every grid point on @p backend, predicts it with @p model, and
/// aggregates the error metrics.
ValidationReport validate(bench::ExecutionBackend& backend,
                          const BouncingModel& model,
                          const ValidationOptions& options = {});

}  // namespace am::model
