#include "model/params.hpp"

namespace am::model {

ModelParams ModelParams::from_machine(const sim::MachineConfig& config) {
  ModelParams p;
  p.machine = config.name;
  p.freq_ghz = config.freq_ghz;
  p.cores = config.core_count();
  p.l1_hit = static_cast<double>(config.l1_hit);
  for (std::size_t i = 0; i < p.exec_cost.size(); ++i) {
    p.exec_cost[i] = static_cast<double>(config.exec_cost[i]);
  }
  p.memory_fill = static_cast<double>(config.memory_fill);
  p.shared_supply = static_cast<double>(config.shared_supply);
  p.arbitration = config.arbitration;
  p.aging_limit = static_cast<double>(config.arbitration_age_limit);
  p.arbitration_bias = config.arbitration_bias;
  p.energy = config.energy;

  const auto ic = config.make_interconnect();
  const std::uint32_t n = p.cores;
  p.transfer.resize(static_cast<std::size_t>(n) * n);
  p.hops.resize(static_cast<std::size_t>(n) * n);
  p.is_far.resize(static_cast<std::size_t>(n) * n);
  p.distance.resize(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * n + j;
      p.transfer[idx] = static_cast<double>(ic->transfer_cycles(i, j));
      p.hops[idx] = static_cast<double>(ic->hops(i, j));
      p.is_far[idx] = ic->supply_class(i, j) == sim::Supply::kFar ? 1 : 0;
      p.distance[idx] = static_cast<double>(ic->distance(i, j));
    }
  }
  return p;
}

}  // namespace am::model
