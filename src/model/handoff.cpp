#include "model/handoff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/random.hpp"

namespace am::model {

namespace {
// Proximity bias is anchored at the line's home agent (core 0 for the
// canonical single-line workload), matching Machine::arbitrate.
double bias_weight(const ModelParams& p, std::uint32_t home, std::uint32_t c) {
  return std::exp(-p.distance_between(home, c) / p.arbitration_bias);
}
constexpr std::uint32_t kHome = 0;
}  // namespace

HandoffEstimate round_robin_handoff(const ModelParams& p, std::uint32_t n) {
  HandoffEstimate e;
  e.grant_shares.assign(n, n > 0 ? 1.0 / n : 0.0);
  if (n < 2) return e;  // a single core never transfers
  double t = 0.0;
  double h = 0.0;
  double far = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = (i + 1) % n;
    t += p.transfer_between(i, j);
    h += p.hops_between(i, j);
    far += p.far_between(i, j) ? 1.0 : 0.0;
  }
  e.mean_transfer_cycles = t / n;
  e.mean_hops = h / n;
  e.far_fraction = far / n;
  return e;
}

HandoffEstimate simulate_handoff(const ModelParams& p, std::uint32_t n,
                                 double hold_cycles, std::size_t steps) {
  if (n == 0 || n > p.cores) {
    throw std::invalid_argument("simulate_handoff: bad core count");
  }
  HandoffEstimate e;
  e.grant_shares.assign(n, 0.0);
  if (n < 2) {
    e.grant_shares.assign(n, 1.0);
    return e;
  }

  // State: token owner + each core's request arrival time (all always
  // re-request immediately after their grant completes).
  Xoshiro256 rng(0x9d2c5680);  // same arbitration seed family as the machine
  std::uint32_t owner = 0;
  double now = 0.0;
  std::vector<double> arrival(n, 0.0);
  std::vector<bool> waiting(n, true);
  waiting[0] = false;

  double sum_t = 0.0;
  double sum_hops = 0.0;
  double far = 0.0;
  std::size_t counted = 0;
  const std::size_t warmup = n;  // one full pass before counting

  for (std::size_t step = 0; step < steps + warmup; ++step) {
    // Pick the next grantee among waiters.
    std::uint32_t next = n;
    double oldest = std::numeric_limits<double>::infinity();
    std::uint32_t oldest_core = n;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (waiting[c] && arrival[c] < oldest) {
        oldest = arrival[c];
        oldest_core = c;
      }
    }
    if (oldest_core == n) break;  // nobody waiting (cannot happen for n >= 2)

    if (p.arbitration == sim::Arbitration::kFifo) {
      next = oldest_core;
    } else if (p.arbitration == sim::Arbitration::kNearestFirst) {
      if (p.aging_limit > 0 && now - oldest > p.aging_limit) {
        next = oldest_core;
      } else {
        next = oldest_core;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::uint32_t c = 0; c < n; ++c) {
          if (!waiting[c]) continue;
          const double d = p.distance_between(owner, c);
          // Tie-break by age so equal-distance cores rotate.
          if (d < best_d || (d == best_d && arrival[c] < arrival[next])) {
            best_d = d;
            next = c;
          }
        }
      }
    } else {
      // Proximity-biased race anchored at the home agent, mirroring
      // Machine::arbitrate.
      double total = 0.0;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (waiting[c]) total += bias_weight(p, kHome, c);
      }
      double pick = rng.next_double() * total;
      next = oldest_core;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (!waiting[c]) continue;
        pick -= bias_weight(p, kHome, c);
        if (pick <= 0.0) {
          next = c;
          break;
        }
      }
    }

    const double t = p.transfer_between(owner, next);
    if (step >= warmup) {
      sum_t += t;
      sum_hops += p.hops_between(owner, next);
      far += p.far_between(owner, next) ? 1.0 : 0.0;
      e.grant_shares[next] += 1.0;
      ++counted;
    }
    now += t + hold_cycles;
    waiting[next] = false;
    waiting[owner] = true;
    arrival[owner] = now;  // previous owner re-requests after its grant
    owner = next;
  }

  if (counted > 0) {
    e.mean_transfer_cycles = sum_t / static_cast<double>(counted);
    e.mean_hops = sum_hops / static_cast<double>(counted);
    e.far_fraction = far / static_cast<double>(counted);
    for (auto& s : e.grant_shares) s /= static_cast<double>(counted);
  }
  return e;
}

HandoffEstimate estimate_handoff(const ModelParams& p, std::uint32_t n,
                                 double hold_cycles) {
  if (p.arbitration == sim::Arbitration::kFifo) {
    return round_robin_handoff(p, n);
  }
  return simulate_handoff(p, n, hold_cycles);
}

}  // namespace am::model
