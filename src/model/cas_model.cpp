#include "model/cas_model.hpp"

#include <cmath>

namespace am::model {

double cas_success_deterministic(std::uint32_t threads) {
  if (threads <= 1) return 1.0;
  return 1.0 / static_cast<double>(threads);
}

double cas_success_poisson(std::uint32_t threads) {
  if (threads <= 1) return 1.0;
  const double k = static_cast<double>(threads - 1);
  // Root of f(s) = s - exp(-s k); f is strictly increasing with f(0) < 0
  // and f(1) > 0, so bisection always converges.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid - std::exp(-mid * k) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

SharesSuccess cas_success_from_shares(std::span<const double> grant_shares) {
  SharesSuccess out;
  out.per_core_success.assign(grant_shares.size(), 1.0);
  double total = 0.0;
  for (double q : grant_shares) total += q;
  if (total <= 0.0 || grant_shares.size() < 2) return out;

  auto mean_for = [&](double s) {
    double acc = 0.0;
    for (double q : grant_shares) {
      if (q <= 0.0) continue;
      const double intervening = total / q - 1.0;
      acc += q / total * std::pow(1.0 - s, intervening);
    }
    return acc;
  };
  // f(s) = s - mean_for(s) is increasing (mean_for decreases in s); bisect.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid - mean_for(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double s = 0.5 * (lo + hi);
  out.mean_success = s;
  for (std::size_t i = 0; i < grant_shares.size(); ++i) {
    const double q = grant_shares[i];
    out.per_core_success[i] =
        q > 0.0 ? std::pow(1.0 - s, total / q - 1.0) : 0.0;
  }
  return out;
}

double casloop_attempts_per_op(std::uint32_t threads) {
  if (threads <= 1) return 1.0;
  return 1.0 / cas_success_deterministic(threads);
}

}  // namespace am::model
