// The hand-off process: the abstract heart of the bouncing model.
//
// Under high contention the shared cache line behaves like a token handed
// from core to core; everything the paper models (throughput, latency,
// fairness, the effect of arbitration) is a property of that hand-off
// sequence. This module provides
//   * a closed form for the FIFO round-robin hand-off cost, and
//   * a tiny token-passing evaluation (no events, no values, no caches —
//     just the hand-off order) that predicts the mean transfer cost and the
//     per-core grant shares under any arbitration policy.
// The token-passing evaluation is still "the model", not the simulator: it
// abstracts away the coherence protocol, op semantics and timing jitter and
// costs microseconds to evaluate.
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.hpp"

namespace am::model {

struct HandoffEstimate {
  double mean_transfer_cycles = 0.0;  ///< expected t over the hand-off chain
  double mean_hops = 0.0;
  double far_fraction = 0.0;          ///< fraction of cross-socket hand-offs
  std::vector<double> grant_shares;   ///< per-core fraction of grants
};

/// Closed form: with FIFO arbitration and all N cores always requesting,
/// grants rotate in arrival order, so hand-offs follow the fixed cycle
/// 0 -> 1 -> ... -> N-1 -> 0 and the expected transfer cost is the mean
/// over that cycle's edges. Shares are exactly 1/N.
HandoffEstimate round_robin_handoff(const ModelParams& p, std::uint32_t n);

/// Token-passing evaluation for an arbitrary arbitration policy: N always-
/// ready requesters, each grant costs (transfer + hold) cycles, aged
/// requests bypass the distance heuristic exactly as in the fabric.
/// @param hold_cycles cycles the grantee holds the line (l1 + exec)
/// @param steps       number of hand-offs to evaluate (after 1 warmup pass)
HandoffEstimate simulate_handoff(const ModelParams& p, std::uint32_t n,
                                 double hold_cycles, std::size_t steps = 20000);

/// Dispatches on p.arbitration: closed form for FIFO, token-passing
/// evaluation for nearest-first.
HandoffEstimate estimate_handoff(const ModelParams& p, std::uint32_t n,
                                 double hold_cycles);

}  // namespace am::model
