#include "model/bouncing_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "model/cas_model.hpp"

namespace am::model {

const char* to_string(Regime r) noexcept {
  switch (r) {
    case Regime::kHighContention: return "high-contention";
    case Regime::kLowContention: return "low-contention";
  }
  return "?";
}

BouncingModel::BouncingModel(ModelParams params) : params_(std::move(params)) {}

const HandoffEstimate& BouncingModel::handoff_for(std::uint32_t threads) const {
  auto it = handoff_cache_.find(threads);
  if (it == handoff_cache_.end()) {
    // Hold time barely affects the hand-off chain's geometry; use the FAA
    // local cost as the representative hold.
    const double hold = params_.local_op_cycles(Primitive::kFaa);
    it = handoff_cache_
             .emplace(threads, estimate_handoff(params_, threads, hold))
             .first;
  }
  return it->second;
}

double BouncingModel::mean_transfer(std::uint32_t threads) const {
  return handoff_for(threads).mean_transfer_cycles;
}

double BouncingModel::crossover_work(Primitive prim,
                                     std::uint32_t threads) const {
  if (threads < 2) return 0.0;
  const double h = mean_transfer(threads) + params_.local_op_cycles(prim);
  return static_cast<double>(threads - 1) * h;
}

double BouncingModel::single_op_latency(Primitive prim, sim::Supply supply,
                                        double transfer_cycles) const {
  const double c = params_.local_op_cycles(prim);
  switch (supply) {
    case sim::Supply::kLocalHit: return c;
    case sim::Supply::kNear:
    case sim::Supply::kFar: return transfer_cycles + c;
    case sim::Supply::kMemory: return params_.memory_fill + c;
  }
  return c;
}

double BouncingModel::energy_per_op(Primitive prim, std::uint32_t threads,
                                    double work, double latency,
                                    double attempts,
                                    const HandoffEstimate& h) const {
  const auto& e = params_.energy;
  const double f_hz = params_.freq_ghz * 1e9;
  const double c = params_.local_op_cycles(prim);
  // Cycles the issuing core is genuinely busy vs. stalled per completed op.
  const double active_cycles = attempts * c + work;
  const double spin_cycles = std::max(0.0, latency - attempts * c);
  double joules = (active_cycles * e.core_active_watts +
                   spin_cycles * e.core_spin_watts) / f_hz;
  // Uncore events: each line acquisition is one directory lookup plus one
  // transfer (for threads >= 2 on a shared line).
  const bool transfers = threads >= 2 && needs_exclusive(prim);
  if (transfers) {
    joules += attempts *
              (e.directory_nj + e.transfer_nj_base +
               e.transfer_nj_per_hop * h.mean_hops +
               e.cross_link_nj * h.far_fraction) * 1e-9;
  }
  return joules * 1e9;  // nJ
}

Prediction BouncingModel::predict(Primitive prim, std::uint32_t threads,
                                  double work) const {
  Prediction out;
  out.prim = prim;
  out.threads = threads;
  out.work = work;

  const double c = params_.local_op_cycles(prim);
  const double n = static_cast<double>(threads);

  // LOAD (or one thread): no ownership changes in steady state.
  if (!needs_exclusive(prim) || threads < 2) {
    out.regime = Regime::kLowContention;
    out.hold_cycles = c;
    out.latency_cycles = c;
    out.throughput_ops_per_kcycle = n * 1000.0 / (work + c);
    out.throughput_mops =
        out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
    out.energy_per_op_nj =
        energy_per_op(prim, threads, work, out.latency_cycles, 1.0,
                      handoff_for(threads));
    return out;
  }

  const HandoffEstimate& ho = handoff_for(threads);
  const double T = ho.mean_transfer_cycles;
  const double h = T + c;
  out.mean_transfer_cycles = T;
  out.hold_cycles = h;
  out.crossover_work = (n - 1.0) * h;
  out.regime = work < out.crossover_work ? Regime::kHighContention
                                         : Regime::kLowContention;

  const double lat_acq = std::max(h, n * h - work);

  // Success model. Under randomized (proximity-biased) arbitration the
  // grant shares feed the share-aware fixed point: frequent winners see
  // fewer intervening modifications and succeed more often. Under FIFO the
  // rotation is deterministic and exactly one requester per pass succeeds.
  const bool randomized = params_.arbitration != sim::Arbitration::kFifo;
  const SharesSuccess shares_success =
      randomized ? cas_success_from_shares(ho.grant_shares) : SharesSuccess{};
  double success = 1.0;
  double attempts = 1.0;
  if (prim == Primitive::kCas) {
    success = randomized ? shares_success.mean_success
                         : cas_success_deterministic(threads);
  } else if (prim == Primitive::kCasLoop) {
    const double s = randomized ? shares_success.mean_success
                                : cas_success_deterministic(threads);
    // Saturated: the line is stolen between attempts, so each completion
    // costs ~1/s acquisitions. Fully drained (w >= 3*w*, the same headroom
    // the backoff ablation measures): the refreshed retry holds the line
    // -> <= 2 acquisitions. The queue drains gradually in between, so the
    // attempts interpolate linearly across [w*, 3*w*].
    const double saturated_attempts = 1.0 / s;
    const double drained_attempts = std::min(1.0 / s, 2.0);
    if (work <= out.crossover_work) {
      attempts = saturated_attempts;
    } else if (work >= 3.0 * out.crossover_work) {
      attempts = drained_attempts;
    } else {
      const double frac =
          (work - out.crossover_work) / (2.0 * out.crossover_work);
      attempts =
          saturated_attempts + frac * (drained_attempts - saturated_attempts);
    }
  }

  out.success_rate = success;
  out.attempts_per_op = attempts;
  // Completed-op throughput: each op costs `attempts` serialized
  // acquisitions when saturated, and a closed-loop period of
  // work + attempts*h otherwise.
  out.throughput_ops_per_kcycle =
      std::min(1.0 / (attempts * h), n / (work + attempts * h)) * 1000.0;
  out.throughput_mops =
      out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
  out.latency_cycles = attempts > 1.0 ? attempts * h : lat_acq;

  // Fairness: FIFO divides acquisitions evenly; proximity bias skews them.
  // A CAS loop additionally concentrates *completions* on frequent winners
  // (completion share ~ q_i * s_i; total monopoly under FIFO).
  if (prim == Primitive::kCasLoop) {
    if (randomized) {
      std::vector<double> completion_shares(ho.grant_shares.size(), 0.0);
      for (std::size_t i = 0; i < completion_shares.size(); ++i) {
        completion_shares[i] =
            ho.grant_shares[i] * shares_success.per_core_success[i];
      }
      out.fairness_jain = jain_fairness(completion_shares);
    } else {
      out.fairness_jain = 1.0 / n;
    }
  } else if (params_.arbitration == sim::Arbitration::kFifo) {
    out.fairness_jain = 1.0;
  } else {
    out.fairness_jain = jain_fairness(ho.grant_shares);
  }

  // Energy is a *system* quantity: while one op's acquisitions serialize,
  // every other core burns spin power. Total core-cycles per completed op
  // is N * attempts * h in the saturated regime (for attempts == 1 this is
  // exactly the N*h - w latency the plain formula already uses).
  const double energy_cycles =
      std::max(out.latency_cycles, n * attempts * h - work);
  out.energy_per_op_nj =
      energy_per_op(prim, threads, work, energy_cycles, attempts, ho);
  return out;
}

Prediction BouncingModel::predict_mixed(Primitive write_prim,
                                        double write_fraction,
                                        std::uint32_t threads,
                                        double work) const {
  Prediction out;
  out.prim = write_prim;
  out.threads = threads;
  out.work = work;
  write_fraction = std::clamp(write_fraction, 0.0, 1.0);

  const double n = static_cast<double>(std::max(1u, threads));
  const double c_load = params_.local_op_cycles(Primitive::kLoad);
  const double c_write = params_.local_op_cycles(write_prim);
  if (threads < 2 || write_fraction <= 0.0) {
    // Pure reads (or one thread): local cost only.
    const double c = write_fraction > 0.0
                         ? write_fraction * c_write +
                               (1.0 - write_fraction) * c_load
                         : c_load;
    out.regime = Regime::kLowContention;
    out.hold_cycles = c;
    out.latency_cycles = c;
    out.throughput_ops_per_kcycle = n * 1000.0 / (work + c);
    out.throughput_mops =
        out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
    return out;
  }

  const HandoffEstimate& ho = handoff_for(threads);
  const double T = ho.mean_transfer_cycles;
  const double h_write = T + c_write;                     // writer acquisition
  const double refetch = params_.shared_supply + c_load;  // reader refill

  // Per write period: one write acquisition, r = (1-f)/f reads, of which
  // at most one per reader (and at most r) pays a serialized refetch; the
  // rest are local L1 hits. This is a conservative (lower) throughput
  // bound: on the real fabric a subsequent write often overtakes pending
  // refetches, cancelling part of the burst (E3 records measured above
  // model at intermediate f for exactly this reason).
  const double f = write_fraction;
  const double r = (1.0 - f) / f;  // reads per write
  const double refetches = std::min(n - 1.0, r);
  const double slot_per_period = h_write + refetches * refetch;
  const double ops_per_period = 1.0 + r;
  const double x_saturated = ops_per_period / slot_per_period;

  // Work-bound alternative when local work dominates.
  const double mean_op =
      (h_write + refetches * refetch + (r - refetches) * c_load) /
      ops_per_period;
  const double x = std::min(x_saturated, n / (work + mean_op));

  out.regime = x >= 0.999 * x_saturated ? Regime::kHighContention
                                        : Regime::kLowContention;
  out.mean_transfer_cycles = T;
  out.hold_cycles = mean_op;
  out.latency_cycles = mean_op;
  out.throughput_ops_per_kcycle = x * 1000.0;
  out.throughput_mops =
      out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
  return out;
}

Prediction BouncingModel::predict_zipf(Primitive prim, std::uint32_t threads,
                                       double work, std::size_t n_lines,
                                       double s) const {
  Prediction out;
  out.prim = prim;
  out.threads = threads;
  out.work = work;
  if (n_lines == 0) n_lines = 1;

  const double n = static_cast<double>(std::max(1u, threads));
  const double c = params_.local_op_cycles(prim);
  if (!needs_exclusive(prim) || threads < 2) {
    return predict(prim, threads, work);
  }

  const HandoffEstimate& ho = handoff_for(threads);
  const double h = ho.mean_transfer_cycles + c;
  out.mean_transfer_cycles = ho.mean_transfer_cycles;
  out.hold_cycles = h;

  // Zipf popularity weights.
  std::vector<double> p(n_lines);
  double z = 0.0;
  for (std::size_t l = 0; l < n_lines; ++l) {
    p[l] = 1.0 / std::pow(static_cast<double>(l + 1), s);
    z += p[l];
  }
  for (auto& v : p) v /= z;

  // Closed-network mean value analysis (Schweitzer approximation): each
  // line is a service channel of time h; a core's cycle is w + R where R
  // is the popularity-weighted response time. Iterate to the fixed point.
  std::vector<double> resp(n_lines, h);
  double mean_resp = h;
  for (int iter = 0; iter < 200; ++iter) {
    double next_mean = 0.0;
    for (std::size_t l = 0; l < n_lines; ++l) {
      const double util = p[l] * resp[l] / (work + mean_resp);
      resp[l] = h * (1.0 + (n - 1.0) * std::min(1.0, util));
      next_mean += p[l] * resp[l];
    }
    if (std::fabs(next_mean - mean_resp) < 1e-9) {
      mean_resp = next_mean;
      break;
    }
    mean_resp = next_mean;
  }
  const double x = n / (work + mean_resp);
  out.regime = x * h >= 0.95 ? Regime::kHighContention
                             : Regime::kLowContention;
  out.throughput_ops_per_kcycle = x * 1000.0;
  out.throughput_mops =
      out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
  out.latency_cycles = mean_resp;
  return out;
}

Prediction BouncingModel::predict_private(Primitive prim,
                                          std::uint32_t threads,
                                          double work) const {
  Prediction out;
  out.prim = prim;
  out.threads = threads;
  out.work = work;
  out.regime = Regime::kLowContention;
  const double c = params_.local_op_cycles(prim);
  out.hold_cycles = c;
  out.latency_cycles = c;
  out.throughput_ops_per_kcycle =
      static_cast<double>(threads) * 1000.0 / (work + c);
  out.throughput_mops =
      out.throughput_ops_per_kcycle / 1000.0 * params_.freq_ghz * 1e3;
  // Private lines: the core is never stalled, only busy.
  const auto& e = params_.energy;
  out.energy_per_op_nj =
      (c + work) * e.core_active_watts / (params_.freq_ghz * 1e9) * 1e9;
  return out;
}

}  // namespace am::model
