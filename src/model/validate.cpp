#include "model/validate.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace am::model {

double ValidationPoint::tput_error() const {
  if (measured_tput == 0.0) return 0.0;
  return std::fabs(predicted_tput - measured_tput) / measured_tput;
}

double ValidationPoint::latency_error() const {
  if (measured_latency == 0.0) return 0.0;
  return std::fabs(predicted_latency - measured_latency) / measured_latency;
}

ValidationReport validate(bench::ExecutionBackend& backend,
                          const BouncingModel& model,
                          const ValidationOptions& options) {
  ValidationReport report;
  for (Primitive prim : options.primitives) {
    for (std::uint32_t n : options.thread_counts) {
      if (n > backend.max_threads()) continue;
      for (double w : options.work_values) {
        bench::WorkloadConfig cfg;
        cfg.mode = bench::WorkloadMode::kHighContention;
        cfg.prim = prim;
        cfg.threads = n;
        cfg.work = static_cast<bench::Cycles>(w);
        cfg.seed = 29;
        const auto run = backend.run(cfg);

        const Prediction pred = model.predict(prim, n, w);

        ValidationPoint pt;
        pt.prim = prim;
        pt.threads = n;
        pt.work = w;
        pt.measured_tput = run.throughput_ops_per_kcycle();
        pt.predicted_tput = pred.throughput_ops_per_kcycle;
        pt.measured_latency = run.mean_latency_cycles();
        pt.predicted_latency = pred.latency_cycles;
        report.points.push_back(pt);
      }
    }
  }

  std::vector<double> mt;
  std::vector<double> pt;
  std::vector<double> ml;
  std::vector<double> pl;
  for (const auto& p : report.points) {
    mt.push_back(p.measured_tput);
    pt.push_back(p.predicted_tput);
    ml.push_back(p.measured_latency);
    pl.push_back(p.predicted_latency);
  }
  report.mape_throughput = mape(pt, mt);
  report.mape_latency = mape(pl, ml);
  report.max_rel_err_throughput = max_relative_error(pt, mt);
  return report;
}

}  // namespace am::model
