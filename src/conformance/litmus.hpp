// TSO litmus tests for the weak-memory simulator mode.
//
// The random-program oracle checks structure; litmus tests check *values*
// against exact allowed-outcome sets, the way hardware memory models are
// validated (Owens et al.'s x86-TSO test suite). Each test is a tiny fixed
// multi-core program whose observable outcome is the tuple of values its
// LOADs returned (core-major, program order per core). The corpus declares,
// per memory model, the complete set of tuples the model permits:
//
//   SB   (store buffering):   Wx1; Ry || Wy1; Rx   — (0,0) is the TSO
//        signature outcome, forbidden under SC.
//   SB+F (fenced SB):         Wx1; F; Ry || Wy1; F; Rx — the fence drains
//        the buffer, restoring the SC outcome set under TSO.
//   MP   (message passing):   Wx1; Wy1 || Ry; Rx  — (1,0) forbidden under
//        both models (TSO store buffers drain FIFO).
//   LB   (load buffering):    Rx; Wy1 || Ry; Wx1  — (1,1) forbidden under
//        both models (TSO never hoists stores above earlier loads).
//   IRIW (independent reads): Wx1 || Wy1 || Rx; Ry || Ry; Rx — the two
//        readers disagreeing on the store order is forbidden under both
//        models (TSO is multi-copy atomic).
//
// A run sweeps machine/schedule seeds (optionally under PCT), collects every
// outcome observed, and fails if any lies outside the model's allowed set.
// Golden copies of the allowed sets live in tests/conformance/litmus/ and
// are pinned against this corpus by litmus_test.cpp, so a semantic change
// must be re-blessed in a reviewable file diff.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "conformance/generator.hpp"
#include "sim/config.hpp"

namespace am::conformance {

/// One observable outcome: the LOAD-result tuple, core-major program order.
using LitmusOutcome = std::vector<std::uint64_t>;

struct LitmusTest {
  std::string name;
  GeneratedProgram program;
  /// Complete allowed outcome sets per model. TSO is always a superset of SC
  /// (any SC execution is a TSO execution with eager drains).
  std::set<LitmusOutcome> allowed_sc;
  std::set<LitmusOutcome> allowed_tso;
  /// An outcome TSO permits and SC forbids (empty when the sets coincide).
  /// run_litmus under TSO reports whether it was reached — the CI smoke job
  /// requires PCT to find it for SB within its seed budget.
  LitmusOutcome tso_signature;
};

/// The fixed corpus: SB, SB+fence, MP, LB, IRIW.
std::vector<LitmusTest> litmus_corpus();

/// Formats an outcome as "r0=0 r1=1".
std::string format_outcome(const LitmusOutcome& o);

struct LitmusRunResult {
  std::string name;
  bool ok = true;
  std::size_t runs = 0;
  std::set<LitmusOutcome> seen;
  bool signature_seen = false;  ///< tso_signature reached (TSO runs only)
  std::vector<std::string> violations;  ///< outcomes outside the allowed set

  std::string summary() const;
};

struct LitmusRunOptions {
  sim::MemoryModel model = sim::MemoryModel::kSc;
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 64;   ///< machine/schedule seeds swept
  bool use_pct = true;        ///< attach a PctScheduler per seed
  std::uint32_t pct_depth = 3;
};

/// Executes @p test on machines built from @p config (memory model
/// overridden per @p opts) across the seed sweep and validates every
/// observed outcome against the model's allowed set. Violation messages
/// embed a one-line conformance_fuzz replay command (schedule included).
LitmusRunResult run_litmus(const LitmusTest& test,
                           const sim::MachineConfig& config,
                           const std::string& preset_name,
                           const LitmusRunOptions& opts);

}  // namespace am::conformance
