#include "conformance/litmus.hpp"

#include <sstream>
#include <stdexcept>

#include "conformance/pct.hpp"
#include "sim/machine.hpp"

namespace am::conformance {

namespace {

// Same open-ended window the differ uses: long enough that every finite
// script (and every end-of-stream store-buffer drain) completes.
constexpr sim::Cycles kOpenWindow = sim::Cycles{1} << 40;

constexpr sim::LineId kX = 0;
constexpr sim::LineId kY = 1;

sim::IssueRequest st(sim::LineId line, std::uint64_t v) {
  sim::IssueRequest r;
  r.prim = Primitive::kStore;
  r.line = line;
  r.store_value = v;
  return r;
}

sim::IssueRequest ld(sim::LineId line) {
  sim::IssueRequest r;
  r.prim = Primitive::kLoad;
  r.line = line;
  return r;
}

sim::IssueRequest fence() {
  sim::IssueRequest r;
  r.prim = Primitive::kFence;
  return r;
}

/// All 0/1 tuples of length n except those in @p forbidden.
std::set<LitmusOutcome> all_binary_except(
    std::size_t n, const std::set<LitmusOutcome>& forbidden) {
  std::set<LitmusOutcome> out;
  for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
    LitmusOutcome o(n);
    for (std::size_t i = 0; i < n; ++i) o[i] = (bits >> i) & 1u;
    if (forbidden.count(o) == 0) out.insert(o);
  }
  return out;
}

}  // namespace

std::vector<LitmusTest> litmus_corpus() {
  std::vector<LitmusTest> tests;

  {
    // SB: the x86-TSO signature. Each writer's store sits in its buffer
    // while its read runs ahead to the directory, so both reads can miss
    // both writes — the (0,0) SC forbids.
    LitmusTest t;
    t.name = "sb";
    t.program.per_core = {{st(kX, 1), ld(kY)}, {st(kY, 1), ld(kX)}};
    t.allowed_sc = all_binary_except(2, {{0, 0}});
    t.allowed_tso = all_binary_except(2, {});
    t.tso_signature = {0, 0};
    tests.push_back(std::move(t));
  }
  {
    // SB with fences: the fence drains the store buffer before the read
    // issues, restoring the SC outcome set under TSO.
    LitmusTest t;
    t.name = "sb_fenced";
    t.program.per_core = {{st(kX, 1), fence(), ld(kY)},
                          {st(kY, 1), fence(), ld(kX)}};
    t.allowed_sc = all_binary_except(2, {{0, 0}});
    t.allowed_tso = t.allowed_sc;
    tests.push_back(std::move(t));
  }
  {
    // MP: store buffers drain FIFO under TSO, so a reader that saw the flag
    // (y==1) must also see the data (x==1): (1,0) forbidden in both models.
    LitmusTest t;
    t.name = "mp";
    t.program.per_core = {{st(kX, 1), st(kY, 1)}, {ld(kY), ld(kX)}};
    t.allowed_sc = all_binary_except(2, {{1, 0}});
    t.allowed_tso = t.allowed_sc;
    tests.push_back(std::move(t));
  }
  {
    // LB: TSO never hoists a store above an earlier load of the same core,
    // so both loads observing the other core's later store is impossible.
    LitmusTest t;
    t.name = "lb";
    t.program.per_core = {{ld(kX), st(kY, 1)}, {ld(kY), st(kX, 1)}};
    t.allowed_sc = all_binary_except(2, {{1, 1}});
    t.allowed_tso = t.allowed_sc;
    tests.push_back(std::move(t));
  }
  {
    // IRIW: TSO is multi-copy atomic (a drained store becomes visible to
    // every other core at once), so the two readers can never disagree on
    // the order of the two independent writes.
    LitmusTest t;
    t.name = "iriw";
    t.program.per_core = {{st(kX, 1)},
                          {st(kY, 1)},
                          {ld(kX), ld(kY)},
                          {ld(kY), ld(kX)}};
    // regs: (c2.Rx, c2.Ry, c3.Ry, c3.Rx); the contradiction is c2 seeing
    // x-before-y while c3 sees y-before-x.
    t.allowed_sc = all_binary_except(4, {{1, 0, 1, 0}});
    t.allowed_tso = t.allowed_sc;
    tests.push_back(std::move(t));
  }
  return tests;
}

std::string format_outcome(const LitmusOutcome& o) {
  std::ostringstream os;
  for (std::size_t i = 0; i < o.size(); ++i) {
    if (i > 0) os << ' ';
    os << 'r' << i << '=' << o[i];
  }
  return os.str();
}

std::string LitmusRunResult::summary() const {
  std::ostringstream os;
  os << "litmus " << name << ": " << runs << " runs, " << seen.size()
     << " distinct outcome(s)";
  if (signature_seen) os << ", weak outcome reached";
  os << (ok ? ", all within the allowed set" : ", VIOLATIONS:");
  if (!ok) {
    os << '\n';
    for (const auto& v : violations) os << "  " << v << '\n';
  }
  return os.str();
}

LitmusRunResult run_litmus(const LitmusTest& test,
                           const sim::MachineConfig& config,
                           const std::string& preset_name,
                           const LitmusRunOptions& opts) {
  LitmusRunResult result;
  result.name = test.name;

  const std::set<LitmusOutcome>& allowed =
      opts.model == sim::MemoryModel::kTso ? test.allowed_tso
                                           : test.allowed_sc;
  sim::MachineConfig cfg = config;
  cfg.memory_model = opts.model;
  cfg.paranoid_checks = true;
  const sim::CoreId cores = test.program.cores();
  if (cores > cfg.core_count()) {
    result.ok = false;
    result.violations.push_back("preset has fewer cores than the test needs");
    return result;
  }

  for (std::uint64_t s = opts.first_seed;
       s < opts.first_seed + opts.seeds; ++s) {
    sim::Machine machine(cfg, s);
    MultiScriptProgram script(test.program);
    PctScheduler pct(cores, PctConfig{s, opts.pct_depth,
                                      test.program.total_ops()});
    if (opts.use_pct) machine.set_schedule_hook(&pct);
    try {
      machine.run(script, cores, /*warmup=*/0, kOpenWindow);
    } catch (const std::logic_error& e) {
      result.ok = false;
      result.violations.push_back(std::string("seed ") + std::to_string(s) +
                                  ": protocol invariant violated: " +
                                  e.what());
      continue;
    }
    ++result.runs;

    // The outcome is the tuple of LOAD results, core-major program order.
    LitmusOutcome outcome;
    bool complete = true;
    const auto& res = script.results();
    for (std::size_t c = 0; c < test.program.per_core.size(); ++c) {
      const auto& ops = test.program.per_core[c];
      if (res[c].size() != ops.size()) {
        complete = false;
        break;
      }
      for (std::size_t k = 0; k < ops.size(); ++k) {
        if (ops[k].prim == Primitive::kLoad) {
          outcome.push_back(res[c][k].observed);
        }
      }
    }
    std::ostringstream replay;
    replay << "replay: conformance_fuzz --litmus --litmus-filter=" << test.name
           << " --preset=" << preset_name
           << " --memory-model=" << to_string(opts.model)
           << " --litmus-first-seed=" << s << " --litmus-seeds=1"
           << " --sched=" << (opts.use_pct ? "pct" : "none")
           << " --pct-depth=" << opts.pct_depth
           << " --sched-version=" << kScheduleVersion;
    if (!complete) {
      result.ok = false;
      result.violations.push_back("seed " + std::to_string(s) +
                                  ": run retired fewer ops than scripted\n  " +
                                  replay.str());
      continue;
    }
    result.seen.insert(outcome);
    if (!test.tso_signature.empty() && outcome == test.tso_signature) {
      result.signature_seen = true;
    }
    if (allowed.count(outcome) == 0) {
      result.ok = false;
      result.violations.push_back(
          "seed " + std::to_string(s) + ": outcome {" +
          format_outcome(outcome) + "} outside the " +
          to_string(opts.model) + " allowed set\n  " + replay.str());
    }
  }
  return result;
}

}  // namespace am::conformance
