#include "conformance/model_gate.hpp"

#include <cmath>
#include <sstream>

#include "bench_core/sim_backend.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "model/bouncing_model.hpp"
#include "model/params.hpp"
#include "sim/config.hpp"

namespace am::conformance {

double default_mape_bound(const std::string& preset) {
  // EXPERIMENTS.md grid MAPE: 3.74% (xeon), 2.31% (knl). A random batch of
  // a few points has higher variance than the full grid, so the bounds
  // leave ~3x headroom; a real model or protocol regression blows well
  // past them.
  if (preset == "xeon") return 0.12;
  if (preset == "knl") return 0.10;
  return 0.12;  // test machine
}

std::string ModelGateResult::summary() const {
  std::ostringstream os;
  os << (ok ? "model gate ok" : "model gate FAILED") << ": MAPE "
     << mape * 100.0 << "% over " << points.size() << " points (bound "
     << bound * 100.0 << "%)";
  if (!ok) {
    for (const auto& p : points) {
      const double err =
          p.measured_tput > 0.0
              ? std::fabs(p.predicted_tput - p.measured_tput) / p.measured_tput
              : 0.0;
      os << "\n  " << to_string(p.prim) << " n=" << p.threads
         << " w=" << p.work << ": measured=" << p.measured_tput
         << " predicted=" << p.predicted_tput << " err=" << err * 100.0
         << '%';
    }
  }
  return os.str();
}

ModelGateResult run_model_gate(const std::string& preset, std::uint64_t seed,
                               const ModelGateOptions& options) {
  ModelGateResult res;
  res.bound =
      options.max_mape > 0.0 ? options.max_mape : default_mape_bound(preset);

  const sim::MachineConfig cfg = sim::preset_by_name(preset);
  bench::SimBackend backend(cfg, {}, seed);
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));

  // The model's validated domain: single-shot primitives on one shared
  // line. CASLOOP is excluded (EXPERIMENTS.md documents its ~35% error).
  static constexpr Primitive kPrims[] = {Primitive::kFaa, Primitive::kSwap,
                                         Primitive::kTas, Primitive::kCas,
                                         Primitive::kLoad};
  static constexpr double kWorks[] = {0.0, 100.0, 400.0, 1600.0};

  Xoshiro256 rng(seed ^ 0xc0f0c0f0ULL);
  std::vector<double> measured;
  std::vector<double> predicted;
  for (std::uint32_t i = 0; i < options.points; ++i) {
    ModelGatePoint p;
    p.prim = kPrims[rng.next_below(std::size(kPrims))];
    const std::uint32_t max_n = backend.max_threads();
    p.threads = static_cast<std::uint32_t>(2 + rng.next_below(max_n - 1));
    p.work = kWorks[rng.next_below(std::size(kWorks))];

    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = p.prim;
    w.threads = p.threads;
    w.work = static_cast<bench::Cycles>(p.work);
    w.seed = seed + i;
    const bench::MeasuredRun run = backend.run(w);
    p.measured_tput = run.throughput_ops_per_kcycle();
    p.predicted_tput =
        model.predict(p.prim, p.threads, p.work).throughput_ops_per_kcycle;

    measured.push_back(p.measured_tput);
    predicted.push_back(p.predicted_tput);
    res.points.push_back(p);
  }
  res.mape = mape(predicted, measured);
  res.ok = res.mape <= res.bound;
  return res;
}

}  // namespace am::conformance
