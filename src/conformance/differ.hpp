// Differential run + replay + shrink driver of the conformance harness.
//
// One fuzz case is: generate a program from a seed, execute it on a fresh
// Machine (paranoid protocol checks on, completion order recorded), and hand
// everything to the sequential oracle. A failing case is re-run repeatedly
// by the greedy shrinker, which keeps deleting ops, cores and lines while
// the failure persists — turning a 200-op counterexample into the few ops
// that actually disagree with sequential consistency. Every failure is
// replayable from `--replay-seed=<seed>` alone because generation, machine
// seeding and event ordering are all deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "conformance/generator.hpp"
#include "conformance/oracle.hpp"
#include "sim/config.hpp"

namespace am::conformance {

/// Result of executing one explicit program against the oracle.
struct RunOutcome {
  ConformanceReport report;
  sim::RunStats stats;
};

/// Controlled-schedule request for a run. When use_pct is set, a fresh
/// PctScheduler (seeded from `seed`, or from the machine seed when 0)
/// steers every directory arbitration of the run, making the interleaving
/// itself part of the one-line repro: replaying the same
/// (program seed, schedule seed, depth) triple reproduces the schedule.
struct ScheduleSpec {
  bool use_pct = false;
  std::uint64_t seed = 0;  ///< 0 = derive from the machine seed
  std::uint32_t depth = 3;
};

/// Runs @p program on a fresh Machine built from @p config (paranoid MESI
/// checks forced on; a mid-run protocol violation is reported as a
/// conformance failure, not an exception) and oracle-checks the run: the
/// full sequential replay under SC, the structural TSO checker when the
/// config selects MemoryModel::kTso (value-level TSO checking is the litmus
/// corpus's job). @p machine_seed drives the machine's arbitration rng.
RunOutcome run_program(const sim::MachineConfig& config,
                       const GeneratedProgram& program,
                       std::uint64_t machine_seed,
                       const ScheduleSpec& sched = {});

/// Greedily shrinks @p failing while it keeps failing: whole cores, then
/// op spans of halving sizes, then merging distinct lines, then zeroing
/// local work. @p budget bounds the number of candidate re-executions.
/// The schedule spec is held fixed so the shrinker chases the same
/// interleaving the original failure ran under.
GeneratedProgram shrink(const sim::MachineConfig& config,
                        GeneratedProgram failing, std::uint64_t machine_seed,
                        std::size_t budget = 500,
                        const ScheduleSpec& sched = {});

/// One complete fuzz case: generate, run, shrink on failure.
struct FuzzCase {
  std::uint64_t seed = 0;
  bool ok = true;
  ConformanceReport report;       ///< report of the original program
  GeneratedProgram program;       ///< as generated
  GeneratedProgram shrunk;        ///< minimized repro (valid iff !ok)
  ConformanceReport shrunk_report;
  sim::MemoryModel model = sim::MemoryModel::kSc;  ///< model the run used
  ScheduleSpec sched;             ///< schedule the run (and shrink) used

  /// Multi-line human report: repro flag (memory model, schedule and
  /// generator/schedule versions included), mismatches, shrunk program.
  std::string describe(const std::string& preset,
                       const GenConfig& gen) const;
};

FuzzCase fuzz_one(std::uint64_t seed, const GenConfig& gen,
                  const sim::MachineConfig& machine_config,
                  bool do_shrink = true, const ScheduleSpec& sched = {});

}  // namespace am::conformance
