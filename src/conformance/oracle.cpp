#include "conformance/oracle.hpp"

#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>

namespace am::conformance {

std::string ConformanceReport::summary() const {
  if (ok) {
    return "ok (" + std::to_string(ops_checked) + " ops checked)";
  }
  std::ostringstream os;
  os << mismatch_count << " mismatch(es) over " << ops_checked
     << " ops checked:\n";
  for (const auto& m : mismatches) os << "  - " << m << '\n';
  if (mismatch_count > mismatches.size()) {
    os << "  - ... " << (mismatch_count - mismatches.size()) << " more\n";
  }
  return os.str();
}

ConformanceReport check_conformance(
    const GeneratedProgram& program, const std::vector<ObservedOp>& order,
    const std::vector<std::vector<OpResult>>& core_results,
    const sim::Machine& machine, const sim::RunStats& stats) {
  ConformanceReport rep;
  const std::size_t cores = program.per_core.size();

  // Sequential-consistency replay state: one memory cell per line plus a
  // replica of each core's OpContext, mutated exactly as the machine mutates
  // it at completion time (store/cas overrides come from the IssueRequest).
  std::map<sim::LineId, std::uint64_t> memory;
  std::vector<OpContext> ctx(cores);
  std::vector<std::size_t> next(cores, 0);
  std::vector<std::uint64_t> oracle_successes(cores, 0);

  for (std::size_t i = 0; i < order.size(); ++i) {
    const ObservedOp& obs = order[i];
    std::ostringstream at;
    at << "op[" << i << "] core" << obs.core << ' ' << to_string(obs.prim)
       << " line=" << obs.line;

    if (obs.core >= cores) {
      rep.fail(at.str() + ": core outside the program");
      continue;
    }
    const auto& script = program.per_core[obs.core];
    if (next[obs.core] >= script.size()) {
      rep.fail(at.str() + ": more completions than the core's script length");
      continue;
    }
    const sim::IssueRequest& req = script[next[obs.core]];
    const std::size_t k = next[obs.core]++;

    // The completion order must be an interleaving of per-core program
    // orders: the i-th completion for a core is that core's k-th op.
    if (req.prim != obs.prim || req.line != obs.line) {
      std::ostringstream os;
      os << at.str() << ": program order violated, expected "
         << to_string(req.prim) << " line=" << req.line << " at core index "
         << k;
      rep.fail(os.str());
      continue;
    }

    // Reference execution through the hardware executor.
    if (req.store_value) ctx[obs.core].store_value = *req.store_value;
    if (req.cas_expected) ctx[obs.core].expected = *req.cas_expected;
    ctx[obs.core].cas_desired = req.cas_desired;
    std::atomic<std::uint64_t> cell(memory[obs.line]);
    const OpResult ref = execute(req.prim, cell, ctx[obs.core]);
    memory[obs.line] = cell.load();
    if (ref.success) ++oracle_successes[obs.core];

    if (ref.success != obs.success) {
      std::ostringstream os;
      os << at.str() << ": success=" << obs.success << ", oracle says "
         << ref.success;
      rep.fail(os.str());
    }
    if (memory[obs.line] != obs.value_after) {
      std::ostringstream os;
      os << at.str() << ": post-op line value " << obs.value_after
         << ", oracle says " << memory[obs.line];
      rep.fail(os.str());
    }
    // Cross-check the result the program saw against the reference
    // (the trace does not carry `observed`; on_result does).
    if (obs.core < core_results.size() &&
        k < core_results[obs.core].size()) {
      const OpResult& got = core_results[obs.core][k];
      if (got.observed != ref.observed || got.success != ref.success) {
        std::ostringstream os;
        os << at.str() << ": returned observed=" << got.observed
           << " success=" << got.success << ", oracle says observed="
           << ref.observed << " success=" << ref.success;
        rep.fail(os.str());
      }
    }
    ++rep.ops_checked;
  }

  // Completion counts: every scripted op must have completed exactly once.
  for (std::size_t c = 0; c < cores; ++c) {
    if (next[c] != program.per_core[c].size()) {
      std::ostringstream os;
      os << "core" << c << ": " << next[c] << " completions for a script of "
         << program.per_core[c].size() << " ops";
      rep.fail(os.str());
    }
    if (c < core_results.size() &&
        core_results[c].size() != program.per_core[c].size()) {
      std::ostringstream os;
      os << "core" << c << ": " << core_results[c].size()
         << " recorded results for a script of "
         << program.per_core[c].size() << " ops";
      rep.fail(os.str());
    }
  }

  // Per-core statistics must agree with the replay.
  for (std::size_t c = 0; c < cores && c < stats.threads.size(); ++c) {
    const auto& ts = stats.threads[c];
    if (ts.ops != program.per_core[c].size()) {
      std::ostringstream os;
      os << "core" << c << ": stats report " << ts.ops << " ops, script has "
         << program.per_core[c].size();
      rep.fail(os.str());
    }
    if (ts.successes != oracle_successes[c]) {
      std::ostringstream os;
      os << "core" << c << ": stats report " << ts.successes
         << " successes, oracle counted " << oracle_successes[c];
      rep.fail(os.str());
    }
  }

  // Final memory state: the directory's value for every line the program
  // touched must equal the sequential replay's.
  for (const sim::LineId id : program.lines()) {
    const std::uint64_t want = memory.count(id) ? memory[id] : 0;
    const std::uint64_t got = machine.line_value(id);
    if (got != want) {
      std::ostringstream os;
      os << "final state line=" << id << ": machine holds " << got
         << ", oracle says " << want;
      rep.fail(os.str());
    }
  }

  // Final protocol state: single writer, consistent sharer sets.
  try {
    machine.verify_invariants();
  } catch (const std::logic_error& e) {
    rep.fail(std::string("final MESI state: ") + e.what());
  }
  for (const sim::LineId id : machine.touched_lines()) {
    const auto snap = machine.snapshot_line(id);
    if (snap.busy || snap.queued != 0) {
      std::ostringstream os;
      os << "final state line=" << id
         << ": transaction still in flight (busy=" << snap.busy
         << " queued=" << snap.queued << ")";
      rep.fail(os.str());
    }
  }

  return rep;
}

ConformanceReport check_tso_conformance(
    const GeneratedProgram& program, const std::vector<ObservedOp>& order,
    const std::vector<std::vector<OpResult>>& core_results,
    const sim::Machine& machine, const sim::RunStats& stats) {
  ConformanceReport rep;
  const std::size_t cores = program.per_core.size();
  std::vector<std::size_t> next(cores, 0);

  // Program-order interleaving: loads may have forwarded from the store
  // buffer and stores may have retired long before their drain, but every
  // core still *completes* its ops in program order.
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ObservedOp& obs = order[i];
    std::ostringstream at;
    at << "op[" << i << "] core" << obs.core << ' ' << to_string(obs.prim)
       << " line=" << obs.line;
    if (obs.core >= cores) {
      rep.fail(at.str() + ": core outside the program");
      continue;
    }
    const auto& script = program.per_core[obs.core];
    if (next[obs.core] >= script.size()) {
      rep.fail(at.str() + ": more completions than the core's script length");
      continue;
    }
    const sim::IssueRequest& req = script[next[obs.core]];
    const std::size_t k = next[obs.core]++;
    if (req.prim != obs.prim ||
        (req.prim != Primitive::kFence && req.line != obs.line)) {
      std::ostringstream os;
      os << at.str() << ": program order violated, expected "
         << to_string(req.prim) << " line=" << req.line << " at core index "
         << k;
      rep.fail(os.str());
      continue;
    }
    if (req.prim != Primitive::kCas && req.prim != Primitive::kTas &&
        !obs.success) {
      rep.fail(at.str() + ": op that cannot fail reported failure");
    }
    ++rep.ops_checked;
  }

  std::uint64_t stores = 0;
  std::uint64_t fences = 0;
  for (std::size_t c = 0; c < cores; ++c) {
    std::uint64_t fallible_ops = 0;  // CAS and TAS: success depends on values
    for (const auto& op : program.per_core[c]) {
      stores += op.prim == Primitive::kStore;
      fences += op.prim == Primitive::kFence;
      fallible_ops +=
          op.prim == Primitive::kCas || op.prim == Primitive::kTas;
    }
    if (next[c] != program.per_core[c].size()) {
      std::ostringstream os;
      os << "core" << c << ": " << next[c] << " completions for a script of "
         << program.per_core[c].size() << " ops";
      rep.fail(os.str());
    }
    if (c < core_results.size() &&
        core_results[c].size() != program.per_core[c].size()) {
      std::ostringstream os;
      os << "core" << c << ": " << core_results[c].size()
         << " recorded results for a script of "
         << program.per_core[c].size() << " ops";
      rep.fail(os.str());
    }
    if (c < stats.threads.size()) {
      const auto& ts = stats.threads[c];
      if (ts.ops != program.per_core[c].size()) {
        std::ostringstream os;
        os << "core" << c << ": stats report " << ts.ops
           << " ops, script has " << program.per_core[c].size();
        rep.fail(os.str());
      }
      // Only CAS and TAS can fail; everything else retires successfully.
      if (ts.successes > ts.ops || ts.successes + fallible_ops < ts.ops) {
        std::ostringstream os;
        os << "core" << c << ": stats report " << ts.successes
           << " successes over " << ts.ops << " ops with " << fallible_ops
           << " CAS/TAS ops";
        rep.fail(os.str());
      }
    }
  }

  // Every buffered store must have drained before the run could finish, and
  // every fence must have been accounted.
  if (stats.store_buffer_drains != stores) {
    std::ostringstream os;
    os << "store buffer: " << stats.store_buffer_drains
       << " drains for " << stores << " STOREs";
    rep.fail(os.str());
  }
  if (stats.fences != fences) {
    std::ostringstream os;
    os << "fences: stats report " << stats.fences << ", script has "
       << fences;
    rep.fail(os.str());
  }

  try {
    machine.verify_invariants();
  } catch (const std::logic_error& e) {
    rep.fail(std::string("final MESI state: ") + e.what());
  }
  for (const sim::LineId id : machine.touched_lines()) {
    const auto snap = machine.snapshot_line(id);
    if (snap.busy || snap.queued != 0) {
      std::ostringstream os;
      os << "final state line=" << id
         << ": transaction still in flight (busy=" << snap.busy
         << " queued=" << snap.queued << ")";
      rep.fail(os.str());
    }
  }
  return rep;
}

}  // namespace am::conformance
