// Cross-layer tolerance gate: model vs simulator on fuzz-drawn workloads.
//
// The paper's validation (Table 3, EXPERIMENTS.md) reports low single-digit
// throughput MAPE between the bouncing model and the machine presets. This
// gate re-derives that as an enforced property: a seed draws a random batch
// of model-domain workload points (single-shot primitives, shared line,
// varying thread counts and local work), each point is simulated and
// predicted, and the batch MAPE must stay under a per-preset bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atomics/primitives.hpp"

namespace am::conformance {

struct ModelGateOptions {
  std::uint32_t points = 8;   ///< sampled (prim, threads, work) points
  /// Batch throughput-MAPE bound; <= 0 picks the per-preset default
  /// (see default_mape_bound).
  double max_mape = 0.0;
};

struct ModelGatePoint {
  Primitive prim = Primitive::kFaa;
  std::uint32_t threads = 1;
  double work = 0.0;
  double measured_tput = 0.0;   ///< ops per kcycle, simulated
  double predicted_tput = 0.0;  ///< ops per kcycle, model
};

struct ModelGateResult {
  bool ok = true;
  double mape = 0.0;
  double bound = 0.0;
  std::vector<ModelGatePoint> points;

  std::string summary() const;
};

/// Per-preset throughput-MAPE bound ("xeon" | "knl" | anything else =
/// test machine). Roughly 3x the grid MAPE EXPERIMENTS.md reports, so the
/// gate trips on regressions, not on sampling noise.
double default_mape_bound(const std::string& preset);

/// Runs the gate for @p preset ("xeon" | "knl" | "test"); @p seed draws the
/// workload batch and seeds the simulations.
ModelGateResult run_model_gate(const std::string& preset, std::uint64_t seed,
                               const ModelGateOptions& options = {});

}  // namespace am::conformance
