#include "conformance/generator.hpp"

#include <algorithm>
#include <sstream>

#include "common/random.hpp"

namespace am::conformance {

namespace {

/// Base id of the per-core private lines; far above any shared-pool id so
/// the two ranges never collide.
constexpr sim::LineId kPrivateBase = 1u << 16;

Primitive pick_prim(Xoshiro256& rng, const GenConfig& cfg) {
  const double roll = rng.next_double();
  if (roll < cfg.load_fraction) return Primitive::kLoad;
  if (roll < cfg.load_fraction + cfg.store_fraction) return Primitive::kStore;
  // Remaining mass split evenly over the single-shot RMWs.
  static constexpr Primitive kRmws[] = {Primitive::kSwap, Primitive::kTas,
                                        Primitive::kFaa, Primitive::kCas};
  return kRmws[rng.next_below(4)];
}

}  // namespace

const char* to_string(SharingPattern p) noexcept {
  switch (p) {
    case SharingPattern::kSingleLine: return "single";
    case SharingPattern::kPrivate: return "private";
    case SharingPattern::kUniform: return "uniform";
    case SharingPattern::kZipf: return "zipf";
    case SharingPattern::kMixed: return "mixed";
  }
  return "?";
}

std::optional<SharingPattern> parse_pattern(const std::string& name) noexcept {
  if (name == "single") return SharingPattern::kSingleLine;
  if (name == "private") return SharingPattern::kPrivate;
  if (name == "uniform") return SharingPattern::kUniform;
  if (name == "zipf") return SharingPattern::kZipf;
  if (name == "mixed") return SharingPattern::kMixed;
  return std::nullopt;
}

std::string GenConfig::describe() const {
  std::ostringstream os;
  os << "cores=" << cores << " ops=" << ops_per_core << " lines=" << lines
     << " pattern=" << to_string(pattern) << " zipf=" << zipf_s
     << " load=" << load_fraction << " store=" << store_fraction
     << " max-work=" << max_work;
  return os.str();
}

std::size_t GeneratedProgram::total_ops() const noexcept {
  std::size_t n = 0;
  for (const auto& script : per_core) n += script.size();
  return n;
}

std::vector<sim::LineId> GeneratedProgram::lines() const {
  std::vector<sim::LineId> ids;
  for (const auto& script : per_core) {
    for (const auto& op : script) ids.push_back(op.line);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::string GeneratedProgram::describe() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    os << "core" << c << ":";
    for (const auto& op : per_core[c]) {
      os << ' ' << to_string(op.prim) << '@' << op.line;
      if (op.work_before > 0) os << "/w" << op.work_before;
      if (op.store_value) os << "/v" << *op.store_value;
      if (op.cas_expected) os << "/e" << *op.cas_expected;
      if (op.cas_desired) os << "/d" << *op.cas_desired;
    }
    os << '\n';
  }
  return os.str();
}

GeneratedProgram generate(std::uint64_t seed, const GenConfig& cfg) {
  GeneratedProgram prog;
  const sim::CoreId cores = std::max<sim::CoreId>(1, cfg.cores);
  const std::uint32_t pool = std::max<std::uint32_t>(1, cfg.lines);
  prog.per_core.resize(cores);

  // One independent stream per core (derived splitmix64-style like the sweep
  // engine's per-point seeds) so dropping a core during shrinking does not
  // reshuffle the others.
  SplitMix64 sm(seed);
  const std::uint64_t zipf_seed = sm.next();
  for (sim::CoreId c = 0; c < cores; ++c) {
    Xoshiro256 rng(sm.next());
    ZipfSampler zipf(pool, cfg.zipf_s);
    Xoshiro256 zipf_rng(zipf_seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
    auto& script = prog.per_core[c];
    script.reserve(cfg.ops_per_core);
    for (std::uint32_t i = 0; i < cfg.ops_per_core; ++i) {
      sim::IssueRequest op;
      op.prim = pick_prim(rng, cfg);
      switch (cfg.pattern) {
        case SharingPattern::kSingleLine:
          op.line = 0;
          break;
        case SharingPattern::kPrivate:
          op.line = kPrivateBase + c;
          break;
        case SharingPattern::kUniform:
          op.line = rng.next_below(pool);
          break;
        case SharingPattern::kZipf:
          op.line = zipf.sample(zipf_rng);
          break;
        case SharingPattern::kMixed: {
          const double where = rng.next_double();
          if (where < 0.5) {
            op.line = 0;  // hot line
          } else if (where < 0.8) {
            op.line = zipf.sample(zipf_rng);
          } else {
            op.line = kPrivateBase + c;
          }
          break;
        }
      }
      if (cfg.max_work > 0) op.work_before = rng.next_below(cfg.max_work + 1);
      const bool explicit_vals =
          rng.next_double() < cfg.explicit_value_fraction;
      if (explicit_vals) {
        switch (op.prim) {
          case Primitive::kStore:
          case Primitive::kSwap:
            op.store_value = rng.next_below(1u << 16);
            break;
          case Primitive::kCas:
            op.cas_expected = rng.next_below(8);  // small: some succeed
            op.cas_desired = rng.next_below(1u << 16);
            break;
          default:
            break;
        }
      }
      script.push_back(op);
    }
  }
  return prog;
}

}  // namespace am::conformance
