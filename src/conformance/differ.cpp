#include "conformance/differ.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "conformance/pct.hpp"
#include "sim/machine.hpp"

namespace am::conformance {

namespace {

/// Measurement window long enough that every finite script drains; the
/// machine stops fetching at the window's end, so this must exceed any
/// program's total runtime (it does by ~6 orders of magnitude).
constexpr sim::Cycles kOpenWindow = sim::Cycles{1} << 40;

}  // namespace

RunOutcome run_program(const sim::MachineConfig& config,
                       const GeneratedProgram& program,
                       std::uint64_t machine_seed,
                       const ScheduleSpec& sched) {
  RunOutcome out;
  sim::MachineConfig cfg = config;
  cfg.paranoid_checks = true;  // transient MESI violations abort the run
  const sim::CoreId cores =
      std::min<sim::CoreId>(program.cores(), cfg.core_count());
  if (cores == 0) return out;

  sim::Machine machine(cfg, machine_seed);
  MultiScriptProgram script(program);
  CompletionRecorder recorder;
  machine.set_sink(&recorder);
  PctScheduler pct(cores,
                   PctConfig{sched.seed != 0 ? sched.seed : machine_seed,
                             sched.depth, program.total_ops()});
  if (sched.use_pct) machine.set_schedule_hook(&pct);
  try {
    out.stats = machine.run(script, cores, /*warmup=*/0, kOpenWindow);
  } catch (const std::logic_error& e) {
    // Paranoid checker fired mid-run: a protocol-level conformance failure.
    out.report.fail(std::string("protocol invariant violated mid-run: ") +
                    e.what());
    return out;
  }
  machine.set_sink(nullptr);
  out.report =
      cfg.memory_model == sim::MemoryModel::kTso
          ? check_tso_conformance(program, recorder.ops(), script.results(),
                                  machine, out.stats)
          : check_conformance(program, recorder.ops(), script.results(),
                              machine, out.stats);
  return out;
}

namespace {

/// Does @p candidate still fail? Decrements the shared budget; once it is
/// exhausted every candidate counts as "fixed" so shrinking stops cheaply.
bool still_fails(const sim::MachineConfig& config,
                 const GeneratedProgram& candidate, std::uint64_t seed,
                 std::size_t& budget, const ScheduleSpec& sched) {
  if (candidate.total_ops() == 0) return false;
  if (budget == 0) return false;
  --budget;
  return !run_program(config, candidate, seed, sched).report.ok;
}

}  // namespace

GeneratedProgram shrink(const sim::MachineConfig& config,
                        GeneratedProgram failing, std::uint64_t machine_seed,
                        std::size_t budget, const ScheduleSpec& sched) {
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // Pass 1: drop whole cores (scan from the back so indices stay stable).
    for (std::size_t c = failing.per_core.size(); c-- > 0;) {
      if (failing.per_core.size() <= 1) break;
      GeneratedProgram candidate = failing;
      candidate.per_core.erase(candidate.per_core.begin() +
                               static_cast<std::ptrdiff_t>(c));
      if (still_fails(config, candidate, machine_seed, budget, sched)) {
        failing = std::move(candidate);
        progress = true;
      }
    }

    // Pass 2: delete op spans, halving the span size down to single ops.
    for (std::size_t c = 0; c < failing.per_core.size(); ++c) {
      std::size_t span = std::max<std::size_t>(1, failing.per_core[c].size() / 2);
      while (span >= 1) {
        bool removed_any = false;
        for (std::size_t i = 0; i + span <= failing.per_core[c].size();) {
          GeneratedProgram candidate = failing;
          auto& ops = candidate.per_core[c];
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i),
                    ops.begin() + static_cast<std::ptrdiff_t>(i + span));
          if (still_fails(config, candidate, machine_seed, budget, sched)) {
            failing = std::move(candidate);
            removed_any = true;
            progress = true;
            // Do not advance i: the next span slid into place.
          } else {
            ++i;
          }
        }
        if (span == 1) break;
        span = removed_any ? span : span / 2;
      }
    }

    // Pass 3: merge distinct lines into the smallest one still referenced.
    const auto lines = failing.lines();
    if (lines.size() > 1) {
      for (std::size_t li = 1; li < lines.size(); ++li) {
        GeneratedProgram candidate = failing;
        for (auto& script : candidate.per_core) {
          for (auto& op : script) {
            if (op.line == lines[li]) op.line = lines[0];
          }
        }
        if (still_fails(config, candidate, machine_seed, budget, sched)) {
          failing = std::move(candidate);
          progress = true;
        }
      }
    }

    // Pass 4: strip local work (one candidate; pure simplification).
    {
      GeneratedProgram candidate = failing;
      bool had_work = false;
      for (auto& script : candidate.per_core) {
        for (auto& op : script) {
          had_work = had_work || op.work_before > 0;
          op.work_before = 0;
        }
      }
      if (had_work &&
          still_fails(config, candidate, machine_seed, budget, sched)) {
        failing = std::move(candidate);
        progress = true;
      }
    }
  }
  return failing;
}

std::string FuzzCase::describe(const std::string& preset,
                               const GenConfig& gen) const {
  std::ostringstream os;
  if (ok) {
    os << "seed=" << seed << " ok, " << report.ops_checked << " ops checked";
    return os.str();
  }
  os << "conformance FAILURE seed=" << seed << " preset=" << preset << '\n'
     << "replay: conformance_fuzz --preset=" << preset
     << " --replay-seed=" << seed << " --cores=" << gen.cores
     << " --ops=" << gen.ops_per_core << " --lines=" << gen.lines
     << " --pattern=" << to_string(gen.pattern);
  if (model != sim::MemoryModel::kSc) {
    os << " --memory-model=" << to_string(model);
  }
  // The replay line is only a faithful repro under the derivations that
  // found the failure, so it pins the generator (and, for controlled
  // schedules, the schedule) version; a mismatched replayer hard-errors.
  os << " --gen-version=" << kGeneratorVersion;
  if (sched.use_pct) {
    os << " --sched=pct --sched-seed=" << (sched.seed != 0 ? sched.seed : seed)
       << " --pct-depth=" << sched.depth
       << " --sched-version=" << kScheduleVersion;
  }
  os << '\n'
     << "original (" << program.total_ops() << " ops): " << report.summary()
     << "shrunk to " << shrunk.total_ops() << " ops:\n"
     << shrunk.describe() << "shrunk run: " << shrunk_report.summary();
  return os.str();
}

FuzzCase fuzz_one(std::uint64_t seed, const GenConfig& gen,
                  const sim::MachineConfig& machine_config, bool do_shrink,
                  const ScheduleSpec& sched) {
  FuzzCase c;
  c.seed = seed;
  c.model = machine_config.memory_model;
  c.sched = sched;
  c.program = generate(seed, gen);
  RunOutcome out = run_program(machine_config, c.program, seed, sched);
  c.report = out.report;
  c.ok = out.report.ok;
  if (!c.ok) {
    c.shrunk = do_shrink
                   ? shrink(machine_config, c.program, seed, 500, sched)
                   : c.program;
    c.shrunk_report =
        run_program(machine_config, c.shrunk, seed, sched).report;
  }
  return c;
}

}  // namespace am::conformance
