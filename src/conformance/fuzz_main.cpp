// conformance_fuzz — differential fuzzing of the coherence simulator
// against the sequential reference oracle.
//
// Typical uses:
//   conformance_fuzz --seeds=100                    # fuzz both presets
//   conformance_fuzz --preset=knl --seeds=500 --start-seed=12000
//   conformance_fuzz --preset=xeon --replay-seed=42 # re-run one repro
//   conformance_fuzz --memory-model=tso --sched=pct --seeds=100
//                                                   # TSO + controlled schedules
//   conformance_fuzz --litmus --memory-model=tso    # litmus allowed-set check
//   conformance_fuzz --inject-bug=lost-upgrade-write --seeds=20
//                                                   # harness self-test: must fail
//
// Exit status: 0 when every seed conforms (and the model gate holds),
// 1 on any conformance failure, 2 on bad usage — including a
// --gen-version/--sched-version mismatch, which means the replay line came
// from an incompatible harness build and re-running it here would silently
// explore a different program or schedule.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "conformance/differ.hpp"
#include "conformance/litmus.hpp"
#include "conformance/model_gate.hpp"
#include "conformance/pct.hpp"
#include "sim/config.hpp"

namespace {

using namespace am;
using namespace am::conformance;

struct PresetRun {
  std::string name;
  sim::MachineConfig config;
};

int run_seed_range(const std::vector<PresetRun>& presets, const GenConfig& gen,
                   std::uint64_t start_seed, std::uint64_t count,
                   bool do_shrink, const std::string& out_dir,
                   const ScheduleSpec& sched) {
  int failures = 0;
  for (const auto& preset : presets) {
    GenConfig g = gen;
    g.cores = std::min<sim::CoreId>(g.cores, preset.config.core_count());
    std::size_t checked = 0;
    for (std::uint64_t s = start_seed; s < start_seed + count; ++s) {
      const FuzzCase c = fuzz_one(s, g, preset.config, do_shrink, sched);
      checked += c.report.ops_checked;
      if (c.ok) continue;
      ++failures;
      std::cout << c.describe(preset.name, g) << "\n";
      if (!out_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        const std::string path =
            out_dir + "/" + preset.name + "-seed-" + std::to_string(s) + ".txt";
        std::ofstream f(path);
        f << c.describe(preset.name, g) << "\n";
        std::cout << "(repro written to " << path << ")\n";
      }
    }
    std::cout << "preset " << preset.name << ": " << count << " seeds, "
              << checked << " ops oracle-checked, "
              << (failures == 0 ? "all conformant" :
                  std::to_string(failures) + " failure(s)")
              << "\n";
  }
  return failures;
}

/// Litmus mode: run the fixed SB/MP/LB/IRIW corpus against each preset and
/// check every observed outcome against the model's allowed set. Under TSO
/// the scheduler must also *reach* each test's weak signature outcome within
/// the seed budget — that is the CI smoke's proof that the store buffers
/// (and PCT's steering) actually reorder anything.
int run_litmus_mode(const std::vector<PresetRun>& presets,
                    const std::string& filter,
                    const LitmusRunOptions& opts) {
  int failures = 0;
  for (const auto& preset : presets) {
    for (const LitmusTest& test : litmus_corpus()) {
      if (!filter.empty() &&
          test.name.find(filter) == std::string::npos) {
        continue;
      }
      const LitmusRunResult r =
          run_litmus(test, preset.config, preset.name, opts);
      bool ok = r.ok;
      std::cout << "preset " << preset.name << ": " << r.summary() << "\n";
      if (opts.model == sim::MemoryModel::kTso &&
          !test.tso_signature.empty() && !r.signature_seen) {
        std::cout << "preset " << preset.name << ": litmus " << test.name
                  << ": weak outcome {" << format_outcome(test.tso_signature)
                  << "} never reached in " << r.runs
                  << " runs — TSO reordering is not observable\n";
        ok = false;
      }
      if (!ok) ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Differential conformance fuzzer: random atomic programs executed on "
      "the coherence simulator and checked against a sequential oracle "
      "(see docs/testing.md)");
  cli.add_flag("preset", "machine preset: xeon | knl | test | both", "both");
  cli.add_flag("seeds", "number of consecutive seeds to fuzz", "20",
               CliParser::FlagKind::kInt);
  cli.add_flag("start-seed", "first seed of the range", "1",
               CliParser::FlagKind::kUint64);
  cli.add_flag("replay-seed",
               "re-run exactly one seed (prints the full report); overrides "
               "--seeds/--start-seed",
               "", CliParser::FlagKind::kUint64);
  cli.add_flag("cores", "cores per generated program (capped to the preset)",
               "6", CliParser::FlagKind::kInt);
  cli.add_flag("ops", "ops per core", "48", CliParser::FlagKind::kInt);
  cli.add_flag("lines", "shared line pool size", "6",
               CliParser::FlagKind::kInt);
  cli.add_flag("pattern",
               "line sharing pattern: single | private | uniform | zipf | "
               "mixed",
               "mixed");
  cli.add_flag("zipf", "Zipf exponent of the pool draw", "1.1",
               CliParser::FlagKind::kDouble);
  cli.add_flag("load-fraction", "probability an op is a LOAD", "0.35",
               CliParser::FlagKind::kDouble);
  cli.add_flag("max-work", "max local work cycles between ops", "32",
               CliParser::FlagKind::kInt);
  cli.add_flag("memory-model", "memory model the machine runs under: sc | tso",
               "sc");
  cli.add_flag("sched",
               "schedule control: none (configured arbitration policy) | pct "
               "(prioritized controlled scheduling)",
               "none");
  cli.add_flag("sched-seed",
               "PCT schedule seed; 0 derives it from the program seed", "0",
               CliParser::FlagKind::kUint64);
  cli.add_flag("pct-depth", "PCT bug depth d (d-1 priority change points)",
               "3", CliParser::FlagKind::kInt);
  cli.add_flag("gen-version",
               "expected program-generator version from a replay line; "
               "mismatch is a hard error (0 = skip the check)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("sched-version",
               "expected PCT schedule version from a replay line; mismatch "
               "is a hard error (0 = skip the check)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("litmus",
               "run the litmus corpus (SB, SB+fence, MP, LB, IRIW) instead "
               "of random fuzzing",
               "false", CliParser::FlagKind::kBool);
  cli.add_flag("litmus-filter",
               "only run litmus tests whose name contains this substring",
               "");
  cli.add_flag("litmus-seeds", "machine/schedule seeds per litmus test", "64",
               CliParser::FlagKind::kInt);
  cli.add_flag("litmus-first-seed", "first litmus seed", "1",
               CliParser::FlagKind::kUint64);
  cli.add_flag("inject-bug",
               "deliberate sim defect for harness self-tests: none | "
               "lost-upgrade-write | skip-shared-invalidate",
               "none");
  cli.add_flag("no-shrink", "skip minimizing failing programs", "false",
               CliParser::FlagKind::kBool);
  cli.add_flag("model-gate",
               "also check model-vs-sim throughput MAPE per preset", "true",
               CliParser::FlagKind::kBool);
  cli.add_flag("max-mape",
               "model gate MAPE bound (fraction); 0 = per-preset default",
               "0", CliParser::FlagKind::kDouble);
  cli.add_flag("gate-points", "workload points per model gate batch", "8",
               CliParser::FlagKind::kInt);
  cli.add_flag("out",
               "directory for failing-seed repro files (CI artifacts)", "");
  if (!cli.parse(argc, argv)) return 2;

  GenConfig gen;
  gen.cores = static_cast<sim::CoreId>(std::max<std::int64_t>(1, cli.get_int("cores")));
  gen.ops_per_core = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("ops")));
  gen.lines = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("lines")));
  gen.zipf_s = cli.get_double("zipf");
  gen.load_fraction = cli.get_double("load-fraction");
  gen.max_work = static_cast<sim::Cycles>(
      std::max<std::int64_t>(0, cli.get_int("max-work")));
  if (const auto p = parse_pattern(cli.get("pattern"))) {
    gen.pattern = *p;
  } else {
    std::cerr << "unknown --pattern=" << cli.get("pattern")
              << " (want single | private | uniform | zipf | mixed)\n";
    return 2;
  }

  // Version pins from replay lines: refuse to "replay" with a harness whose
  // seed expansion differs from the one that found the failure.
  const std::int64_t want_gen = cli.get_int("gen-version");
  if (want_gen != 0 && want_gen != kGeneratorVersion) {
    std::cerr << "replay line was produced by generator version " << want_gen
              << " but this binary implements version " << kGeneratorVersion
              << "; the seed would expand to a different program. Rebuild "
                 "the matching harness instead of replaying here.\n";
    return 2;
  }
  const std::int64_t want_sched = cli.get_int("sched-version");
  if (want_sched != 0 && want_sched != kScheduleVersion) {
    std::cerr << "replay line was produced by schedule version " << want_sched
              << " but this binary implements version " << kScheduleVersion
              << "; the seed would expand to a different schedule. Rebuild "
                 "the matching harness instead of replaying here.\n";
    return 2;
  }

  const auto model = sim::parse_memory_model(cli.get("memory-model"));
  if (!model) {
    std::cerr << "unknown --memory-model=" << cli.get("memory-model")
              << " (want sc | tso)\n";
    return 2;
  }

  ScheduleSpec sched;
  const std::string sched_name = cli.get("sched");
  if (sched_name == "pct") {
    sched.use_pct = true;
  } else if (sched_name != "none") {
    std::cerr << "unknown --sched=" << sched_name << " (want none | pct)\n";
    return 2;
  }
  sched.seed = cli.get_uint64("sched-seed");
  sched.depth = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("pct-depth")));

  sim::FaultInjection fault = sim::FaultInjection::kNone;
  const std::string bug = cli.get("inject-bug");
  if (bug == "lost-upgrade-write") {
    fault = sim::FaultInjection::kLostUpgradeWrite;
  } else if (bug == "skip-shared-invalidate") {
    fault = sim::FaultInjection::kSkipSharedInvalidate;
  } else if (bug != "none") {
    std::cerr << "unknown --inject-bug=" << bug
              << " (want none | lost-upgrade-write | skip-shared-invalidate)\n";
    return 2;
  }

  std::vector<PresetRun> presets;
  const std::string preset = cli.get("preset");
  if (preset == "both") {
    presets.push_back({"xeon", sim::xeon_e5_2x18()});
    presets.push_back({"knl", sim::knl_64()});
  } else if (preset == "xeon" || preset == "knl" || preset == "test") {
    presets.push_back({preset, sim::preset_by_name(preset)});
  } else {
    std::cerr << "unknown --preset=" << preset
              << " (want xeon | knl | test | both)\n";
    return 2;
  }
  for (auto& p : presets) {
    p.config.fault = fault;
    p.config.memory_model = *model;
  }

  if (cli.get_bool("litmus")) {
    LitmusRunOptions opts;
    opts.model = *model;
    opts.first_seed = cli.get_uint64("litmus-first-seed");
    opts.seeds = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, cli.get_int("litmus-seeds")));
    // Litmus sweeps default to PCT steering (that is what reaches the weak
    // outcomes); --sched=none opts out explicitly.
    opts.use_pct = sched_name != "none" || !cli.has("sched");
    opts.pct_depth = sched.depth;
    const int failures =
        run_litmus_mode(presets, cli.get("litmus-filter"), opts);
    return failures == 0 ? 0 : 1;
  }

  std::uint64_t start_seed = cli.get_uint64("start-seed");
  std::uint64_t count = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, cli.get_int("seeds")));
  if (cli.has("replay-seed")) {
    start_seed = cli.get_uint64("replay-seed");
    count = 1;
  }

  int failures =
      run_seed_range(presets, gen, start_seed, count,
                     !cli.get_bool("no-shrink"), cli.get("out"), sched);

  // The model gate calibrates against SC sweeps with the configured
  // arbitration policy; a TSO or PCT-steered run measures something else.
  if (cli.get_bool("model-gate") && fault == sim::FaultInjection::kNone &&
      *model == sim::MemoryModel::kSc && !sched.use_pct) {
    ModelGateOptions opts;
    opts.max_mape = cli.get_double("max-mape");
    opts.points = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, cli.get_int("gate-points")));
    for (const auto& p : presets) {
      if (p.name == "both") continue;
      const ModelGateResult gate = run_model_gate(p.name, start_seed, opts);
      std::cout << "preset " << p.name << ": " << gate.summary() << "\n";
      if (!gate.ok) ++failures;
    }
  }

  return failures == 0 ? 0 : 1;
}
