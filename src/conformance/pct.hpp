// PCT-style prioritized controlled scheduling for the conformance harness.
//
// Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010) finds
// bugs of depth d with probability >= 1/(n * k^(d-1)) by running a strict
// priority scheduler: n threads get random distinct priorities, and at d-1
// random change points the running thread is demoted below everyone else.
// The adaptation here steers the *simulator's* nondeterminism instead of an
// OS scheduler: a PctScheduler is a sim::ScheduleHook that resolves every
// directory arbitration race in favour of the highest-priority waiting core
// and counts op retirements as scheduling steps. Attached to a Machine it
// replaces the configured arbitration policy for the run, which is why
// hooks live outside cache_identity — a PCT run must never populate the
// sweep/service caches as if it were a policy run.
//
// Everything is derived from (seed, depth, expected_steps), so a schedule is
// replayable from the `--sched-seed`/`--pct-depth` pair alone; bump
// kScheduleVersion whenever the priority assignment or change-point draw
// changes so stale replay lines hard-error instead of silently exploring a
// different interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace am::conformance {

/// Version of the schedule derivation (priority assignment + change-point
/// draws). Replay lines carry it; conformance_fuzz --sched-version hard-
/// errors on mismatch instead of silently regenerating a different schedule.
inline constexpr int kScheduleVersion = 1;

struct PctConfig {
  std::uint64_t seed = 1;
  /// Bug depth d: the scheduler places d-1 priority change points. depth <= 1
  /// means pure random-priority scheduling with no change points.
  std::uint32_t depth = 3;
  /// Expected run length k in scheduling steps (op retirements); change
  /// points are drawn uniformly from [1, k].
  std::uint64_t expected_steps = 256;
};

class PctScheduler final : public sim::ScheduleHook {
 public:
  PctScheduler(sim::CoreId cores, const PctConfig& cfg);

  /// Highest-priority waiter wins every arbitration race.
  std::size_t pick(sim::LineId line,
                   const std::vector<sim::CoreId>& waiters) override;

  /// Counts one scheduling step; at a change point the retiring core is
  /// demoted below every initial priority (and every earlier demotion).
  void on_step(sim::CoreId core) override;

  std::uint64_t steps() const noexcept { return step_; }
  std::uint32_t change_points_applied() const noexcept { return next_cp_; }
  const std::vector<std::uint32_t>& priorities() const noexcept {
    return prio_;
  }

 private:
  std::vector<std::uint32_t> prio_;          ///< per-core priority, higher wins
  std::vector<std::uint64_t> change_points_; ///< sorted step indices, d-1 of them
  std::uint32_t depth_ = 1;
  std::uint64_t step_ = 0;
  std::uint32_t next_cp_ = 0;
};

}  // namespace am::conformance
