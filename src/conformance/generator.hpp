// Random atomic-program generation for the differential conformance harness.
//
// A generated program is an explicit per-core script of single-shot
// operations over LOAD/STORE/SWP/TAS/FAA/CAS — the six primitives whose
// one-acquisition semantics the sequential oracle can replay from the sim's
// completion order (CASLOOP is excluded on purpose: its hidden retries make
// the observed order under-determined). Generation is pure: the same
// (seed, GenConfig) pair always yields the same program, which is what makes
// `--replay-seed=<s>` a complete one-line repro.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "atomics/primitives.hpp"
#include "sim/program.hpp"
#include "sim/types.hpp"

namespace am::conformance {

/// Version of the program derivation (op draws, value overrides, line
/// pools). A replay line is only a faithful repro when the generator that
/// re-expands the seed matches the one that found the failure, so failure
/// reports carry this number and conformance_fuzz --gen-version hard-errors
/// on mismatch instead of silently regenerating a different program.
inline constexpr int kGeneratorVersion = 1;

/// How a generated op picks its target line.
enum class SharingPattern : std::uint8_t {
  kSingleLine,  ///< every op on line 0 — maximum contention
  kPrivate,     ///< core c only touches its own line — no sharing at all
  kUniform,     ///< uniform over the shared pool
  kZipf,        ///< Zipf over the shared pool — hot set plus cold tail
  kMixed,       ///< per-op mix of hot line / Zipf pool / private line
};

const char* to_string(SharingPattern p) noexcept;
std::optional<SharingPattern> parse_pattern(const std::string& name) noexcept;

struct GenConfig {
  sim::CoreId cores = 4;
  std::uint32_t ops_per_core = 48;
  std::uint32_t lines = 6;     ///< shared line pool size (>= 1)
  double zipf_s = 1.1;         ///< skew of the kZipf / kMixed pool draw
  SharingPattern pattern = SharingPattern::kMixed;
  double load_fraction = 0.35;   ///< P(op is LOAD) — loads create S copies
  double store_fraction = 0.10;  ///< P(op is STORE); rest split over RMWs
  sim::Cycles max_work = 32;     ///< work_before drawn uniform in [0, max]
  /// Fraction of STORE/SWP/CAS ops that carry explicit value overrides
  /// (random store_value / cas_expected / cas_desired) instead of relying on
  /// the per-core running context.
  double explicit_value_fraction = 0.25;

  std::string describe() const;
};

/// An explicit multi-core program: per_core[c] is core c's op script.
struct GeneratedProgram {
  std::vector<std::vector<sim::IssueRequest>> per_core;

  sim::CoreId cores() const noexcept {
    return static_cast<sim::CoreId>(per_core.size());
  }
  std::size_t total_ops() const noexcept;
  /// Distinct lines referenced, ascending.
  std::vector<sim::LineId> lines() const;
  /// Compact text dump (one line per core) for failure reports.
  std::string describe() const;
};

/// Deterministically generates a program from @p seed.
GeneratedProgram generate(std::uint64_t seed, const GenConfig& cfg);

/// ThreadProgram view over a GeneratedProgram that also records every
/// per-core OpResult the machine reports — one half of the evidence the
/// sequential oracle cross-checks (the other half is the completion order
/// captured by conformance::CompletionRecorder).
class MultiScriptProgram final : public sim::ThreadProgram {
 public:
  explicit MultiScriptProgram(const GeneratedProgram& program)
      : program_(&program),
        next_(program.per_core.size(), 0),
        results_(program.per_core.size()) {}
  // Holds a pointer to the program; a temporary would dangle.
  explicit MultiScriptProgram(GeneratedProgram&&) = delete;

  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256&) override {
    if (core >= program_->per_core.size()) return std::nullopt;
    const auto& script = program_->per_core[core];
    if (next_[core] >= script.size()) return std::nullopt;
    return script[next_[core]++];
  }

  void on_result(sim::CoreId core, const OpResult& result) override {
    if (core < results_.size()) results_[core].push_back(result);
  }

  /// Per-core OpResults in completion order (== program order per core).
  const std::vector<std::vector<OpResult>>& results() const noexcept {
    return results_;
  }

 private:
  const GeneratedProgram* program_;
  std::vector<std::size_t> next_;
  std::vector<std::vector<OpResult>> results_;
};

}  // namespace am::conformance
