// The sequential reference oracle of the differential conformance harness.
//
// DESIGN.md's substitution argument says the simulator may stand in for the
// hardware because both execute the same value semantics; this module turns
// that claim into a checked property. The machine's per-op completion events
// define a claimed total order; the oracle replays that order through
// am::execute over plain std::atomic cells — the *hardware* executor, a
// fully independent implementation of the primitives — and demands that
//   * the order is an interleaving of the per-core program orders,
//   * every op's success flag, observed value and post-op line value match,
//   * the final memory state and per-core op/success counts match, and
//   * the machine's final MESI state passes the invariant checker.
// Because every op in the sim executes atomically at its completion event,
// a correct machine always yields a sequentially consistent order and the
// oracle passes; any lost update, stale read or miscounted op breaks it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "atomics/primitives.hpp"
#include "conformance/generator.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "sim/sim_stats.hpp"

namespace am::conformance {

/// One completed operation, in machine completion order.
struct ObservedOp {
  sim::CoreId core = 0;
  Primitive prim = Primitive::kLoad;
  sim::LineId line = 0;
  bool success = true;
  std::uint64_t value_after = 0;  ///< line value right after the op
};

/// TraceSink that records the machine's op-completion sequence — the claimed
/// total order the oracle validates.
class CompletionRecorder final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& e) override {
    if (e.kind != obs::TraceEventKind::kOpDone) return;
    ops_.push_back(ObservedOp{e.core, static_cast<Primitive>(e.prim), e.line,
                              e.success, e.value});
  }

  const std::vector<ObservedOp>& ops() const noexcept { return ops_; }

 private:
  std::vector<ObservedOp> ops_;
};

/// Outcome of one conformance check. `mismatches` is capped (a broken run
/// can diverge on every op); `ok` covers the full run regardless.
struct ConformanceReport {
  bool ok = true;
  std::size_t ops_checked = 0;
  std::size_t mismatch_count = 0;
  std::vector<std::string> mismatches;

  static constexpr std::size_t kMaxRecorded = 16;
  void fail(std::string what) {
    ok = false;
    ++mismatch_count;
    if (mismatches.size() < kMaxRecorded) mismatches.push_back(std::move(what));
  }
  std::string summary() const;
};

/// Replays @p order through the sequential reference executor and checks it
/// against the program, the per-core results recorded by MultiScriptProgram,
/// the machine's final state, and the run statistics.
ConformanceReport check_conformance(
    const GeneratedProgram& program, const std::vector<ObservedOp>& order,
    const std::vector<std::vector<OpResult>>& core_results,
    const sim::Machine& machine, const sim::RunStats& stats);

/// Structural checker for TSO runs. A TSO execution is not a sequentially
/// consistent interleaving, so the value-level replay above does not apply;
/// value semantics under TSO are pinned by the litmus corpus instead. What
/// a correct TSO machine must still guarantee structurally:
///   * completions form an interleaving of the per-core program orders,
///   * every scripted op completes exactly once (trace, results and stats
///     all agree on the counts),
///   * every STORE that entered a store buffer drained (drains == stores),
///     and every FENCE was accounted,
///   * non-CAS ops always succeed (only CAS can fail under any model), and
///   * the final protocol state is quiescent and MESI-consistent.
ConformanceReport check_tso_conformance(
    const GeneratedProgram& program, const std::vector<ObservedOp>& order,
    const std::vector<std::vector<OpResult>>& core_results,
    const sim::Machine& machine, const sim::RunStats& stats);

}  // namespace am::conformance
