#include "conformance/pct.hpp"

#include <algorithm>

#include "common/random.hpp"

namespace am::conformance {

PctScheduler::PctScheduler(sim::CoreId cores, const PctConfig& cfg)
    : depth_(std::max<std::uint32_t>(1, cfg.depth)) {
  SplitMix64 sm(cfg.seed);
  // Distinct initial priorities depth .. depth+n-1 in a random permutation —
  // always above every demotion target (depth-1 .. 1), so a demoted core
  // only runs when no undemoted core is waiting.
  prio_.resize(cores);
  for (sim::CoreId c = 0; c < cores; ++c) prio_[c] = depth_ + c;
  for (sim::CoreId c = cores; c-- > 1;) {
    const std::uint64_t j = sm.next() % (c + 1);
    std::swap(prio_[c], prio_[static_cast<sim::CoreId>(j)]);
  }
  // d-1 change points drawn uniformly over the expected run length.
  const std::uint64_t k = std::max<std::uint64_t>(1, cfg.expected_steps);
  change_points_.reserve(depth_ - 1);
  for (std::uint32_t i = 0; i + 1 < depth_; ++i) {
    change_points_.push_back(1 + sm.next() % k);
  }
  std::sort(change_points_.begin(), change_points_.end());
}

std::size_t PctScheduler::pick(sim::LineId,
                               const std::vector<sim::CoreId>& waiters) {
  std::size_t best = 0;
  std::uint32_t best_prio = 0;
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    const sim::CoreId c = waiters[i];
    // Cores beyond the priority table (never expected) defer to index 0.
    const std::uint32_t p = c < prio_.size() ? prio_[c] : 0;
    if (p > best_prio) {
      best_prio = p;
      best = i;
    }
  }
  return best;
}

void PctScheduler::on_step(sim::CoreId core) {
  ++step_;
  if (next_cp_ < change_points_.size() && step_ >= change_points_[next_cp_]) {
    // Demote the retiring core below all initial priorities and below every
    // earlier demotion: targets depth-1, depth-2, ..., 1.
    if (core < prio_.size()) prio_[core] = depth_ - 1 - next_cp_;
    ++next_cp_;
  }
}

}  // namespace am::conformance
