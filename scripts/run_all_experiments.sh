#!/usr/bin/env bash
# Regenerates every table/figure of the reproduction and drops the ASCII
# tables, CSVs and JSON run reports (am-run-report/1, consumed by
# scripts/plot_results.py) into results/. Usage:
#   scripts/run_all_experiments.sh [build-dir] [backend]
# backend defaults to sim:xeon; pass "hw" on a many-core host.
set -euo pipefail

BUILD="${1:-build}"
BACKEND="${2:-sim:xeon}"
OUT="results"
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "== $name =="
  "$BUILD/bench/$name" "$@" --csv="$OUT/$name.csv" \
    --json-out="$OUT/$name.json" | tee "$OUT/$name.txt"
}

run bench_t1_machines
run bench_t2_latency_states
run bench_f1_throughput  --backend="$BACKEND"
run bench_f2_latency     --backend="$BACKEND"
run bench_f3_regimes     --backend="$BACKEND"
run bench_f4_cas         --backend="$BACKEND"
run bench_f5_fairness
run bench_f6_energy      --backend="$BACKEND"
run bench_t3_validation  --backend="$BACKEND"
run bench_f7_casestudy
run bench_a1_ablations
run bench_e1_working_set
run bench_e2_sharding
run bench_e3_read_mostly --backend="$BACKEND"
run bench_e4_lockfree
run bench_e5_zipf

# Raw host microbenchmarks (google-benchmark).
"$BUILD/bench/bench_hw_primitives" --benchmark_min_time=0.05 \
  | tee "$OUT/bench_hw_primitives.txt"

echo "all experiment outputs in $OUT/"
