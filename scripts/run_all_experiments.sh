#!/usr/bin/env bash
# Regenerates every table/figure of the reproduction and drops the ASCII
# tables, CSVs and JSON run reports (am-run-report/1, consumed by
# scripts/plot_results.py) into results/. Usage:
#   scripts/run_all_experiments.sh [build-dir] [backend] [jobs] [--with-service]
# backend defaults to sim:xeon; pass "hw" on a many-core host.
# jobs defaults to the host's core count; simulated sweep points run on a
# bounded pool (docs/sweep.md) and outputs are byte-identical at any jobs.
# Set AM_SWEEP_CACHE=dir to reuse simulated points across invocations.
# --with-service appends the am_serve saturation sweep (docs/service.md);
# it is opt-in because it measures this host's scheduler, not the paper.
set -euo pipefail

WITH_SERVICE=0
POSITIONAL=()
for arg in "$@"; do
  case "$arg" in
    --with-service) WITH_SERVICE=1 ;;
    *) POSITIONAL+=("$arg") ;;
  esac
done

BUILD="${POSITIONAL[0]:-build}"
BACKEND="${POSITIONAL[1]:-sim:xeon}"
JOBS="${POSITIONAL[2]:-0}"
OUT="results"
mkdir -p "$OUT"

SWEEP_FLAGS=(--jobs="$JOBS")
if [[ -n "${AM_SWEEP_CACHE:-}" ]]; then
  SWEEP_FLAGS+=(--sweep-cache="$AM_SWEEP_CACHE")
fi

run() {
  local name="$1"; shift
  echo "== $name =="
  "$BUILD/bench/$name" "$@" --csv="$OUT/$name.csv" \
    --json-out="$OUT/$name.json" | tee "$OUT/$name.txt"
}

# Sweep-pooled benches take the parallelism/cache flags; the rest are
# single-run or latency-probe binaries where pooling buys nothing.
run bench_t1_machines    "${SWEEP_FLAGS[@]}"
run bench_t2_latency_states
run bench_f1_throughput  --backend="$BACKEND" "${SWEEP_FLAGS[@]}"
run bench_f2_latency     --backend="$BACKEND"
run bench_f3_regimes     --backend="$BACKEND" "${SWEEP_FLAGS[@]}"
run bench_f4_cas         --backend="$BACKEND" "${SWEEP_FLAGS[@]}"
run bench_f5_fairness
run bench_f6_energy      --backend="$BACKEND"
run bench_t3_validation  --backend="$BACKEND"
run bench_f7_casestudy
run bench_a1_ablations
run bench_e1_working_set
run bench_e2_sharding
run bench_e3_read_mostly --backend="$BACKEND"
run bench_e4_lockfree
run bench_e5_zipf        "${SWEEP_FLAGS[@]}"

# Raw host microbenchmarks (google-benchmark).
"$BUILD/bench/bench_hw_primitives" --benchmark_min_time=0.05 \
  | tee "$OUT/bench_hw_primitives.txt"

# Opt-in: the serving daemon's closed-loop saturation sweep (spawns an
# in-process am_serve on an ephemeral port; am-serve-load/1 JSON feeds the
# connections-vs-qps/p99 figure in plot_results.py).
if [[ "$WITH_SERVICE" -eq 1 ]]; then
  echo "== bench_s1_service =="
  "$BUILD/bench/bench_s1_service" --duration-ms 1000 --distinct 64 \
    --csv="$OUT/bench_s1_service.csv" \
    --json-out="$OUT/bench_s1_service.json" | tee "$OUT/bench_s1_service.txt"
fi

echo "all experiment outputs in $OUT/"
