#!/usr/bin/env python3
"""Plots the outputs produced by run_all_experiments.sh.

Usage: scripts/plot_results.py [results-dir]

Three input kinds live in the results directory:
  *.csv  — the rendered result tables (one per bench binary);
  *.json — am-run-report/1 run reports carrying the full per-run payload
           (per-thread stats, per-line hot-line profiles, epoch
           time-series), written by the benches' --json-out flag;
  *.json — am-serve-load/1 reports from the serving daemon's closed-loop
           load generator (bench_s1_service, docs/service.md).

The figure series comes from the CSVs; the epoch time-series and hot-line
heatmap figures need the JSON reports; the load reports feed a
connections-vs-qps/p99 saturation figure. Requires matplotlib; falls back
to printing a summary when it is missing (this repo's CI environment is
offline)."""
import csv
import json
import os
import sys

SCHEMA = "am-run-report/1"
LOAD_SCHEMA = "am-serve-load/1"


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def read_json(path, schema):
    """Loads one JSON document of the given schema; None when it isn't one."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != schema:
        return None
    return doc


def read_report(path):
    """Loads one am-run-report/1 document; None when it isn't one."""
    return read_json(path, SCHEMA)


def reports_in(results):
    for name in sorted(os.listdir(results)):
        if not name.endswith(".json"):
            continue
        doc = read_report(os.path.join(results, name))
        if doc is not None:
            yield name[: -len(".json")], doc


def series(rows, key_col, x_col, y_col):
    out = {}
    for r in rows:
        key = r[key_col]
        try:
            x = float(r[x_col])
            y = float(r[y_col])
        except (KeyError, ValueError):
            continue
        out.setdefault(key, []).append((x, y))
    return out


def run_label(run):
    w = run.get("workload", {})
    return f"{w.get('prim', '?')} n={w.get('threads', '?')}"


def plot_epochs(name, doc, results, plt):
    """Throughput + wait-fraction time-series for the report's epoch-richest
    run — the in-run view of the low->high contention regime transition."""
    runs = [r for r in doc.get("runs", []) if r.get("epochs")]
    if not runs:
        return None
    run = max(runs, key=lambda r: (len(r["epochs"]), r["workload"]["threads"]))
    epochs = run["epochs"]
    xs = [e["start_cycle"] for e in epochs]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(xs, [e["throughput_ops_per_kcycle"] for e in epochs],
            marker="o", color="tab:blue", label="throughput (ops/kcy)")
    ax.set_xlabel("cycle in measurement window")
    ax.set_ylabel("ops / kcycle", color="tab:blue")
    ax2 = ax.twinx()
    ax2.plot(xs, [e["wait_fraction"] for e in epochs],
             marker="s", color="tab:red", label="wait fraction")
    ax2.set_ylabel("wait fraction", color="tab:red")
    ax2.set_ylim(0.0, 1.05)
    ax.set_title(f"{name}: epoch time-series ({run_label(run)})")
    out = os.path.join(results, f"{name}_epochs.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out


def plot_hot_lines(name, doc, results, plt):
    """Heatmap of per-line acquisitions across the report's runs: rows are
    runs, columns the hottest lines — contention concentration at a glance."""
    runs = [r for r in doc.get("runs", []) if r.get("hot_lines")]
    if not runs:
        return None
    # Column set: hottest lines overall, capped to keep the figure legible.
    totals = {}
    for r in runs:
        for h in r["hot_lines"]:
            totals[h["line"]] = totals.get(h["line"], 0) + h["acquisitions"]
    lines = [l for l, _ in
             sorted(totals.items(), key=lambda kv: -kv[1])[:32]]
    if not lines:
        return None
    col = {l: i for i, l in enumerate(lines)}
    grid = [[0.0] * len(lines) for _ in runs]
    for i, r in enumerate(runs):
        for h in r["hot_lines"]:
            if h["line"] in col:
                grid[i][col[h["line"]]] = h["acquisitions"]
    fig, ax = plt.subplots(
        figsize=(max(4, 0.3 * len(lines) + 2), max(3, 0.25 * len(runs) + 1.5)))
    im = ax.imshow(grid, aspect="auto", cmap="inferno")
    ax.set_xticks(range(len(lines)))
    ax.set_xticklabels([str(l) for l in lines], fontsize=6, rotation=90)
    ax.set_yticks(range(len(runs)))
    ax.set_yticklabels([run_label(r) for r in runs], fontsize=6)
    ax.set_xlabel("cache line")
    fig.colorbar(im, ax=ax, label="acquisitions")
    ax.set_title(f"{name}: hot-line acquisitions per run")
    out = os.path.join(results, f"{name}_hotlines.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out


def load_reports_in(results):
    for name in sorted(os.listdir(results)):
        if not name.endswith(".json"):
            continue
        doc = read_json(os.path.join(results, name), LOAD_SCHEMA)
        if doc is not None:
            yield name[: -len(".json")], doc


def plot_saturation(name, doc, results, plt):
    """Connections vs qps (left axis) and p99 latency (right axis) from an
    am-serve-load/1 saturation sweep: where the worker pool saturates, qps
    flattens and the tail takes off."""
    rows = [r for r in doc.get("rows", []) if r.get("connections")]
    if len(rows) < 2:
        return None
    rows.sort(key=lambda r: r["connections"])
    xs = [r["connections"] for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(xs, [r["qps"] for r in rows], marker="o", color="tab:blue",
            label="qps")
    ax.set_xlabel("closed-loop connections")
    ax.set_ylabel("requests / s", color="tab:blue")
    ax.set_xscale("log", base=2)
    ax2 = ax.twinx()
    ax2.plot(xs, [r["latency_us"]["p99"] for r in rows], marker="s",
             color="tab:red", label="p99 latency")
    ax2.set_ylabel("p99 latency (us)", color="tab:red")
    ax2.set_yscale("log")
    ax.set_title(f"{name}: am_serve saturation "
                 f"({doc.get('distinct_requests', '?')} distinct requests)")
    out = os.path.join(results, f"{name}_saturation.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out


def plot_timeline(name, doc, results, plt):
    """Per-step client-side timeline from an am-serve-load/1 report: qps and
    rolling p50/p99 latency over the step's wall clock, one subplot per row.
    Shows warm-up (cache filling) and any mid-step stalls that a whole-step
    percentile hides."""
    rows = [r for r in doc.get("rows", []) if len(r.get("timeline", [])) >= 2]
    if not rows:
        return None
    fig, axes = plt.subplots(len(rows), 1, figsize=(6, 2.2 * len(rows)),
                             sharex=True, squeeze=False)
    for ax, row in zip(axes[:, 0], rows):
        tl = row["timeline"]
        ts = [b["t_s"] + b["width_s"] / 2.0 for b in tl]
        ax.plot(ts, [b["qps"] for b in tl], marker=".", color="tab:blue",
                label="qps")
        ax.set_ylabel("qps", color="tab:blue")
        ax2 = ax.twinx()
        ax2.plot(ts, [b["p50_us"] for b in tl], color="tab:orange",
                 linestyle="--", label="p50")
        ax2.plot(ts, [b["p99_us"] for b in tl], color="tab:red", label="p99")
        ax2.set_ylabel("latency (us)", color="tab:red")
        label = (f"{row['connections']} conns"
                 + (f" @ {row['target_qps']:.0f} qps"
                    if row.get("target_qps") else ""))
        ax.set_title(label, fontsize=9)
    axes[-1, 0].set_xlabel("time into step (s)")
    fig.suptitle(f"{name}: load timeline")
    out = os.path.join(results, f"{name}_timeline.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out


def summarize(results):
    for name in sorted(os.listdir(results)):
        path = os.path.join(results, name)
        if name.endswith(".csv"):
            rows = read_csv(path)
            print(f"{name}: {len(rows)} rows, columns: "
                  f"{', '.join(rows[0].keys()) if rows else '-'}")
        elif name.endswith(".json"):
            doc = read_report(path)
            if doc is not None:
                runs = doc.get("runs", [])
                epochs = sum(len(r.get("epochs", [])) for r in runs)
                hot = sum(len(r.get("hot_lines", [])) for r in runs)
                print(f"{name}: report '{doc['meta'].get('title', '')}', "
                      f"{len(runs)} runs, {epochs} epoch samples, "
                      f"{hot} line profiles")
                continue
            doc = read_json(path, LOAD_SCHEMA)
            if doc is not None:
                rows = doc.get("rows", [])
                peak = max((r.get("qps", 0.0) for r in rows), default=0.0)
                print(f"{name}: serve-load report ({doc.get('mode', '?')}), "
                      f"{len(rows)} steps, peak {peak:.0f} qps, "
                      f"{doc.get('verify_failures', 0)} verify failures")


def main():
    results = sys.argv[1] if len(sys.argv) > 1 else "results"
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing summaries instead\n")
        summarize(results)
        return 0

    plots = [
        # (csv, series key, x, y, ylog, title)
        ("bench_f1_throughput.csv", "primitive", "threads", "measured Mops",
         True, "F1: throughput vs threads"),
        ("bench_f2_latency.csv", "primitive", "threads", "mean latency (cy)",
         False, "F2: latency vs threads"),
        ("bench_f4_cas.csv", None, "threads", "CAS success", False,
         "F4: CAS success vs threads"),
        ("bench_f5_fairness.csv", "arbitration", "threads", "Jain (measured)",
         False, "F5: fairness vs threads"),
        ("bench_f6_energy.csv", "primitive", "threads", "measured nJ/op",
         True, "F6: energy per op"),
        ("bench_e2_sharding.csv", None, "shards", "measured Mops", True,
         "E2: sharding"),
    ]
    made = 0
    for csv_name, key, x, y, ylog, title in plots:
        path = os.path.join(results, csv_name)
        if not os.path.exists(path):
            continue
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(6, 4))
        if key:
            for label, pts in series(rows, key, x, y).items():
                pts.sort()
                ax.plot([p[0] for p in pts], [p[1] for p in pts],
                        marker="o", label=label)
            ax.legend(fontsize=8)
        else:
            pts = sorted((float(r[x]), float(r[y])) for r in rows
                         if r.get(x) and r.get(y))
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o")
        if ylog:
            ax.set_yscale("log")
        ax.set_xlabel(x)
        ax.set_ylabel(y)
        ax.set_title(title)
        out = os.path.join(results, csv_name.replace(".csv", ".png"))
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print(f"wrote {out}")
        made += 1

    # Observability figures from the JSON run reports.
    for name, doc in reports_in(results):
        for plot in (plot_epochs, plot_hot_lines):
            out = plot(name, doc, results, plt)
            if out:
                print(f"wrote {out}")
                made += 1

    # Serving-daemon figures from am-serve-load/1 reports.
    for name, doc in load_reports_in(results):
        for plot in (plot_saturation, plot_timeline):
            out = plot(name, doc, results, plt)
            if out:
                print(f"wrote {out}")
                made += 1

    if made == 0:
        print("no known CSVs or reports found; "
              "run scripts/run_all_experiments.sh first")
    return 0


if __name__ == "__main__":
    sys.exit(main())
