#!/usr/bin/env python3
"""Plots the CSVs produced by run_all_experiments.sh.

Usage: scripts/plot_results.py [results-dir]

Requires matplotlib; falls back to printing a summary when it is missing
(this repo's CI environment is offline)."""
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def series(rows, key_col, x_col, y_col):
    out = {}
    for r in rows:
        key = r[key_col]
        try:
            x = float(r[x_col])
            y = float(r[y_col])
        except (KeyError, ValueError):
            continue
        out.setdefault(key, []).append((x, y))
    return out


def main():
    results = sys.argv[1] if len(sys.argv) > 1 else "results"
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing summaries instead\n")
        for name in sorted(os.listdir(results)):
            if name.endswith(".csv"):
                rows = read_csv(os.path.join(results, name))
                print(f"{name}: {len(rows)} rows, columns: "
                      f"{', '.join(rows[0].keys()) if rows else '-'}")
        return 0

    plots = [
        # (csv, series key, x, y, ylog, title)
        ("bench_f1_throughput.csv", "primitive", "threads", "measured Mops",
         True, "F1: throughput vs threads"),
        ("bench_f2_latency.csv", "primitive", "threads", "mean latency (cy)",
         False, "F2: latency vs threads"),
        ("bench_f4_cas.csv", None, "threads", "CAS success", False,
         "F4: CAS success vs threads"),
        ("bench_f5_fairness.csv", "arbitration", "threads", "Jain (measured)",
         False, "F5: fairness vs threads"),
        ("bench_f6_energy.csv", "primitive", "threads", "measured nJ/op",
         True, "F6: energy per op"),
        ("bench_e2_sharding.csv", None, "shards", "measured Mops", True,
         "E2: sharding"),
    ]
    made = 0
    for csv_name, key, x, y, ylog, title in plots:
        path = os.path.join(results, csv_name)
        if not os.path.exists(path):
            continue
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(6, 4))
        if key:
            for label, pts in series(rows, key, x, y).items():
                pts.sort()
                ax.plot([p[0] for p in pts], [p[1] for p in pts],
                        marker="o", label=label)
            ax.legend(fontsize=8)
        else:
            pts = sorted((float(r[x]), float(r[y])) for r in rows
                         if r.get(x) and r.get(y))
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o")
        if ylog:
            ax.set_yscale("log")
        ax.set_xlabel(x)
        ax.set_ylabel(y)
        ax.set_title(title)
        out = os.path.join(results, csv_name.replace(".csv", ".png"))
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print(f"wrote {out}")
        made += 1
    if made == 0:
        print("no known CSVs found; run scripts/run_all_experiments.sh first")
    return 0


if __name__ == "__main__":
    sys.exit(main())
