#!/usr/bin/env bash
# Re-blesses the golden trace files under tests/sim/golden/ after an
# intentional change to simulator timing, arbitration or trace formatting.
# Usage: scripts/regen_golden_traces.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$repo_root/$build_dir" --target test_sim -j
AM_REGEN_GOLDEN=1 "$repo_root/$build_dir/tests/test_sim" \
  --gtest_filter='GoldenTrace.*'
# The differential core-equivalence suite replays the refreshed goldens
# against BOTH simulator cores; a failure here means the change broke the
# fast core's byte-identity contract rather than intentionally retiming
# the machine — fix the core, don't re-bless.
"$repo_root/$build_dir/tests/test_sim" --gtest_filter='CoreEquivalence.*'
echo "regenerated goldens:"
ls -l "$repo_root"/tests/sim/golden/
echo "review the diff before committing: git diff tests/sim/golden/"
