#!/usr/bin/env python3
"""CI gate for the fast-path simulator core's throughput.

Compares a fresh bench_sim_core result against the committed baseline
(BENCH_sim_core.json at the repo root) and fails when the rewrite's edge
over the frozen seed core erodes.

The gated metric is the *speedup* (fast points/sec divided by the seed
core's points/sec measured in the same process, best of N reps). Raw
points/sec is a property of the host — CI runners and developer laptops
differ by more than any regression we care about — while the speedup
divides the host out: both cores ran the identical point list interleaved
in one process, so a drop in the ratio means the fast core itself got
slower relative to the frozen denominator.

Usage:
  scripts/check_sim_core_perf.py NEW_JSON [--baseline BENCH_sim_core.json]
                                 [--max-drop 0.10]

Exit codes: 0 ok, 1 regression or malformed input.
"""

import argparse
import json
import pathlib
import sys

SCHEMA = "am-bench-sim-core/1"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: expected schema {SCHEMA!r}, "
                 f"got {doc.get('schema')!r}")
    return {p["preset"]: p for p in doc.get("presets", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new_json", help="JSON emitted by the bench run to check")
    ap.add_argument("--baseline",
                    default=str(pathlib.Path(__file__).resolve().parent.parent
                                / "BENCH_sim_core.json"),
                    help="committed baseline JSON (default: repo root)")
    ap.add_argument("--max-drop", type=float, default=0.10,
                    help="largest tolerated relative speedup drop "
                         "(default: 0.10 = 10%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new_json)

    failures = []
    for preset, b in sorted(base.items()):
        n = new.get(preset)
        if n is None:
            failures.append(f"{preset}: missing from {args.new_json}")
            continue
        b_speed = b["speedup"]
        n_speed = n["speedup"]
        floor = b_speed * (1.0 - args.max_drop)
        verdict = "OK" if n_speed >= floor else "FAIL"
        print(f"{preset:8s} baseline {b_speed:6.3f}x  new {n_speed:6.3f}x  "
              f"floor {floor:6.3f}x  {verdict}")
        if n_speed < floor:
            failures.append(
                f"{preset}: speedup {n_speed:.3f}x fell below "
                f"{floor:.3f}x ({args.max_drop:.0%} under baseline "
                f"{b_speed:.3f}x)")

    if failures:
        print("\nsimulator-core perf regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the slowdown is intentional (e.g. the core gained a "
              "feature), re-bless the baseline:\n"
              "  build/bench/bench_sim_core --reps 3 "
              "--json-out BENCH_sim_core.json\n"
              "and commit the new file with an explanation.",
              file=sys.stderr)
        return 1
    print("simulator-core perf gate: all presets within "
          f"{args.max_drop:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
