// bench_sim_core: wall-clock microbenchmark of the simulator core itself.
//
// Every other bench binary measures the *simulated machine*; this one
// measures the *simulator* — how many uncached sweep points per second the
// discrete-event loop sustains. Each "point" is what SweepEngine executes
// with a cold cache: construct a Machine from the preset, run one workload,
// discard. The fixed-seed point list covers the sharing patterns whose event
// mixes differ structurally (single hot line, CAS retry storms, per-core
// lines, sharded groups, read-mostly broadcasts).
//
// The frozen seed core (sim::legacy::Machine) runs the identical point list
// in the same process, so the reported speedup is a property of the rewrite
// alone, not of the host. scripts/check_sim_core_perf.py compares the JSON
// emitted here against the committed BENCH_sim_core.json baseline in CI.
//
// Usage: bench_sim_core [--reps N] [--json-out PATH] [--scale N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/config.hpp"
#include "sim/legacy_machine.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am {
namespace {

struct Point {
  const char* name;
  std::uint64_t seed;
  sim::CoreId threads;
  sim::Cycles warmup;
  sim::Cycles measure;
  /// Builds a fresh program (programs are stateful across a run).
  std::unique_ptr<sim::ThreadProgram> (*make)();
};

std::unique_ptr<sim::ThreadProgram> hc_faa() {
  return std::make_unique<sim::HighContentionProgram>(Primitive::kFaa, 0);
}
std::unique_ptr<sim::ThreadProgram> hc_cas_loop() {
  return std::make_unique<sim::HighContentionProgram>(Primitive::kCasLoop,
                                                      0);
}
std::unique_ptr<sim::ThreadProgram> hc_swap_jitter() {
  return std::make_unique<sim::HighContentionProgram>(Primitive::kSwap,
                                                      60, 0, 0.5);
}
std::unique_ptr<sim::ThreadProgram> low_contention() {
  return std::make_unique<sim::LowContentionProgram>(Primitive::kFaa, 0);
}
std::unique_ptr<sim::ThreadProgram> sharded() {
  return std::make_unique<sim::ShardedProgram>(Primitive::kFaa, 20,
                                               /*group_size=*/4);
}
std::unique_ptr<sim::ThreadProgram> mixed_rw() {
  return std::make_unique<sim::MixedReadWriteProgram>(Primitive::kCas, 0.1,
                                                  0);
}

/// The fixed point list. Every point runs the same simulated window —
/// exactly how SweepEngine weights a sweep row — so the aggregate
/// points/sec reflects the real mix of event densities (a low-contention
/// window simulates ~50x more events than a serialized hot-line window of
/// the same simulated length). 100k cycles keeps one rep long enough that
/// the event loop dominates construction and short enough for a best-of-3
/// CI gate.
const Point kPoints[] = {
    {"hc_faa_t4", 11, 4, 1'000, 100'000, hc_faa},
    {"hc_faa_tmax", 12, 0, 1'000, 100'000, hc_faa},
    {"hc_casloop_t8", 13, 8, 1'000, 100'000, hc_cas_loop},
    {"hc_casloop_tmax", 14, 0, 1'000, 100'000, hc_cas_loop},
    {"hc_swap_jitter_tmax", 15, 0, 1'000, 100'000, hc_swap_jitter},
    {"low_contention_tmax", 16, 0, 1'000, 100'000, low_contention},
    {"sharded_g4_tmax", 17, 0, 1'000, 100'000, sharded},
    {"mixed_rw_tmax", 18, 0, 1'000, 100'000, mixed_rw},
};

/// One uncached point on machine type M: cold construction + one run.
/// Returns a digest folded from the run so the work cannot be elided and
/// fast/legacy agreement can be asserted.
template <class M>
std::uint64_t run_point(const sim::MachineConfig& cfg, const Point& p) {
  M machine(cfg, p.seed);
  const sim::CoreId threads =
      p.threads == 0 ? machine.core_count()
                     : std::min<sim::CoreId>(p.threads, machine.core_count());
  const auto prog = p.make();
  const sim::RunStats rs = machine.run(*prog, threads, p.warmup, p.measure);
  std::uint64_t digest = 0;
  for (const sim::ThreadStats& t : rs.threads) {
    digest = digest * 1315423911u + t.ops * 3u + t.attempts * 5u +
             t.wait_cycles * 7u;
  }
  return digest;
}

/// Runs the whole point list once, recording per-point wall seconds into
/// @p secs (indexed like kPoints). Returns the digest over all points.
template <class M>
std::uint64_t run_list(const sim::MachineConfig& cfg, int scale,
                       double* secs) {
  std::uint64_t digest = 0;
  for (std::size_t i = 0; i < std::size(kPoints); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < scale; ++s) {
      digest ^= run_point<M>(cfg, kPoints[i]);
    }
    secs[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return digest;
}

struct PointResult {
  const char* name = nullptr;
  double fast_ms = 0.0;    ///< best-of-reps wall ms (whole scale loop)
  double legacy_ms = 0.0;
  double speedup = 0.0;
};

struct PresetResult {
  std::string preset;
  double fast = 0.0;    ///< points/sec, rewritten core (best of reps)
  double legacy = 0.0;  ///< points/sec, frozen seed core (best of reps)
  double speedup = 0.0;
  std::vector<PointResult> points;
};

PresetResult bench_preset(const std::string& name, int reps, int scale) {
  const sim::MachineConfig cfg = sim::preset_by_name(name);
  constexpr std::size_t kN = std::size(kPoints);
  PresetResult r;
  r.preset = name;
  r.points.resize(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    r.points[i].name = kPoints[i].name;
    r.points[i].fast_ms = std::numeric_limits<double>::infinity();
    r.points[i].legacy_ms = std::numeric_limits<double>::infinity();
  }
  std::uint64_t fast_digest = 0;
  std::uint64_t legacy_digest = 0;
  double fast_secs[kN];
  double legacy_secs[kN];
  // Interleave fast/legacy reps so thermal or scheduler drift hits both.
  for (int i = 0; i < reps; ++i) {
    fast_digest = run_list<sim::Machine>(cfg, scale, fast_secs);
    legacy_digest = run_list<sim::legacy::Machine>(cfg, scale, legacy_secs);
    for (std::size_t p = 0; p < kN; ++p) {
      r.points[p].fast_ms = std::min(r.points[p].fast_ms, fast_secs[p] * 1e3);
      r.points[p].legacy_ms =
          std::min(r.points[p].legacy_ms, legacy_secs[p] * 1e3);
    }
  }
  // Aggregate throughput from the per-point bests: sum of the best times is
  // the fastest achievable sweep, and best-of per point is the standard
  // noise-rejection for a CI gate.
  double fast_total = 0.0;
  double legacy_total = 0.0;
  for (std::size_t p = 0; p < kN; ++p) {
    r.points[p].speedup = r.points[p].legacy_ms / r.points[p].fast_ms;
    fast_total += r.points[p].fast_ms;
    legacy_total += r.points[p].legacy_ms;
  }
  r.fast = static_cast<double>(kN * scale) / (fast_total * 1e-3);
  r.legacy = static_cast<double>(kN * scale) / (legacy_total * 1e-3);
  if (fast_digest != legacy_digest) {
    // The equivalence suite proves byte identity properly; this is a cheap
    // tripwire so a perf run can never report a speedup over different work.
    std::cerr << "FATAL: fast/legacy digest mismatch on preset " << name
              << "\n";
    std::exit(2);
  }
  r.speedup = r.fast / r.legacy;
  return r;
}

std::string json_escape_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

bool write_json(const std::string& path, const std::vector<PresetResult>& rs,
                int reps, int scale) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"schema\": \"am-bench-sim-core/1\",\n"
      << "  \"reps\": " << reps << ",\n  \"scale\": " << scale << ",\n"
      << "  \"points_per_rep\": " << std::size(kPoints) * scale << ",\n"
      << "  \"presets\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const PresetResult& r = rs[i];
    out << "    {\"preset\": \"" << r.preset << "\", \"points_per_sec\": "
        << json_escape_double(r.fast) << ", \"legacy_points_per_sec\": "
        << json_escape_double(r.legacy) << ", \"speedup\": "
        << json_escape_double(r.speedup) << ",\n     \"points\": [\n";
    for (std::size_t p = 0; p < r.points.size(); ++p) {
      const PointResult& pt = r.points[p];
      out << "       {\"name\": \"" << pt.name << "\", \"fast_ms\": "
          << json_escape_double(pt.fast_ms) << ", \"legacy_ms\": "
          << json_escape_double(pt.legacy_ms) << ", \"speedup\": "
          << json_escape_double(pt.speedup) << "}"
          << (p + 1 < r.points.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) {
  using namespace am;
  CliParser cli(
      "Simulator-core throughput: uncached sweep points per second, "
      "rewritten core vs the frozen seed core");
  cli.add_flag("reps", "best-of repetitions per preset", "3",
               CliParser::FlagKind::kInt);
  cli.add_flag("scale", "point-list repetitions per rep (raises run length)",
               "1", CliParser::FlagKind::kInt);
  cli.add_flag("json-out", "result JSON path (empty = skip)",
               "BENCH_sim_core.json");
  if (!cli.parse(argc, argv)) return 1;
  const int reps = std::max<int>(1, static_cast<int>(cli.get_int("reps")));
  const int scale = std::max<int>(1, static_cast<int>(cli.get_int("scale")));

  std::vector<PresetResult> results;
  for (const std::string preset : {"xeon", "knl"}) {
    results.push_back(bench_preset(preset, reps, scale));
  }

  Table table({"preset", "points/s (fast)", "points/s (seed)", "speedup"});
  for (const PresetResult& r : results) {
    table.add_row({r.preset, json_escape_double(r.fast),
                   json_escape_double(r.legacy),
                   json_escape_double(r.speedup) + "x"});
  }
  std::cout << "\n== simulator core throughput (best of " << reps
            << ", " << std::size(kPoints) * scale << " points/rep) ==\n"
            << table;

  Table detail({"point", "preset", "fast ms", "seed ms", "speedup"});
  for (const PresetResult& r : results) {
    for (const PointResult& pt : r.points) {
      detail.add_row({pt.name, r.preset, json_escape_double(pt.fast_ms),
                      json_escape_double(pt.legacy_ms),
                      json_escape_double(pt.speedup) + "x"});
    }
  }
  std::cout << "\n" << detail;

  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    if (write_json(json_path, results, reps, scale)) {
      std::cout << "(json written to " << json_path << ")\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
  }
  return 0;
}
