// A1 — Ablations over the design choices DESIGN.md calls out:
//   1. directory arbitration policy (FIFO / nearest-first / proximity-
//      biased) — throughput and fairness consequences;
//   2. CAS-loop backoff — sweep the backoff multiple around the model's
//      recommendation and show where completed-op throughput peaks;
//   3. backoff randomization — deterministic vs jittered backoff at the
//      recommended value (lock-step phases never desynchronize);
//   4. thread placement — compact (fill one socket first) vs scatter
//      (alternate sockets): scatter turns every hand-off into a far
//      transfer and lowers the plateau.
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"
#include "model/advisor.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("A1: arbitration and backoff ablations");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("ablation-threads", "thread count for the ablations", "16");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig base = sim::preset_by_name(cli.get("machine"));
  const auto n = static_cast<std::uint32_t>(cli.get_int("ablation-threads"));

  // --- 1. arbitration policy ------------------------------------------------
  Table arb_table({"arbitration", "primitive", "threads", "ops/kcy", "Jain",
                   "min/max", "mean lat (cy)"});
  for (sim::Arbitration arb :
       {sim::Arbitration::kFifo, sim::Arbitration::kNearestFirst,
        sim::Arbitration::kProximityBiased}) {
    sim::MachineConfig cfg = base;
    cfg.arbitration = arb;
    bench::SimBackend backend(cfg);
    bench_util::apply_obs(cli, backend);
    for (Primitive prim : {Primitive::kFaa, Primitive::kCasLoop}) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      const auto r = backend.run(w);
      arb_table.add_row({to_string(arb), to_string(prim),
                         Table::num(std::size_t{n}),
                         Table::num(r.throughput_ops_per_kcycle(), 3),
                         Table::num(r.jain_fairness(), 3),
                         Table::num(r.min_max_ratio(), 3),
                         Table::num(r.mean_latency_cycles(), 1)});
    }
  }
  bench_util::emit(cli, "A1.1: arbitration-policy ablation (" + base.name + ")",
                   arb_table);

  // --- 2. backoff multiple sweep ---------------------------------------------
  bench::SimBackend backend(base);
  bench_util::apply_obs(cli, backend);
  const model::BouncingModel model(model::ModelParams::from_machine(base));
  const double wstar = model.crossover_work(Primitive::kCasLoop, n);

  Table backoff_table({"backoff (x w*)", "work (cy)", "ops/kcy", "acq/op",
                       "Jain", "advisor pick"});
  const double recommended =
      model::recommended_backoff_cycles(model, n) / wstar;
  for (double mult : {0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = Primitive::kCasLoop;
    w.threads = n;
    w.work = static_cast<bench::Cycles>(mult * wstar);
    w.work_jitter = 0.5;
    const auto r = backend.run(w);
    const bool picked = std::abs(mult - recommended) < 0.26;
    backoff_table.add_row({Table::num(mult, 2),
                           Table::num(std::size_t{w.work}),
                           Table::num(r.throughput_ops_per_kcycle(), 3),
                           Table::num(r.attempts_per_op(), 2),
                           Table::num(r.jain_fairness(), 3),
                           picked ? "<= recommended" : ""});
  }
  bench_util::emit(cli, "A1.2: CAS-loop backoff sweep (" + base.name + ")",
                   backoff_table);

  // --- 3. randomized vs deterministic backoff --------------------------------
  Table jitter_table({"backoff", "jitter", "ops/kcy", "acq/op", "Jain"});
  for (double jitter : {0.0, 0.25, 0.5}) {
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = Primitive::kCasLoop;
    w.threads = n;
    w.work =
        static_cast<bench::Cycles>(model::recommended_backoff_cycles(model, n));
    w.work_jitter = jitter;
    const auto r = backend.run(w);
    jitter_table.add_row({Table::num(std::size_t{w.work}),
                          Table::num(jitter, 2),
                          Table::num(r.throughput_ops_per_kcycle(), 3),
                          Table::num(r.attempts_per_op(), 2),
                          Table::num(r.jain_fairness(), 3)});
  }
  bench_util::emit(cli,
                   "A1.3: deterministic vs randomized backoff (" + base.name +
                       ")",
                   jitter_table);

  // --- 4. placement: compact vs scatter --------------------------------------
  Table placement_table({"placement", "threads", "ops/kcy", "mean lat (cy)",
                         "far transfers %"});
  for (PinOrder order : {PinOrder::kCompact, PinOrder::kScatter}) {
    for (std::uint32_t nt : {8u, 16u, n}) {
      if (nt > backend.max_threads()) continue;
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = Primitive::kFaa;
      w.threads = nt;
      w.pin_order = order;
      const auto r = backend.run(w);
      const double total_xfers = static_cast<double>(
          r.transfers[1] + r.transfers[2] + r.transfers[3]);
      const double far_pct =
          total_xfers > 0.0
              ? 100.0 * static_cast<double>(r.transfers[2]) / total_xfers
              : 0.0;
      placement_table.add_row({to_string(order), Table::num(std::size_t{nt}),
                               Table::num(r.throughput_ops_per_kcycle(), 3),
                               Table::num(r.mean_latency_cycles(), 1),
                               Table::num(far_pct, 1)});
    }
  }
  bench_util::emit(cli, "A1.4: placement ablation (" + base.name + ")",
                   placement_table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
