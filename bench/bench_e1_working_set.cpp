// E1 (extension) — private working-set sweep: the capacity cliff.
//
// Each thread cycles through its own set of lines. While the set fits the
// private cache every access is an L1 hit; once it exceeds the capacity the
// LRU walk evicts every line before its reuse and every access misses to
// memory. The per-op cost jumps from c to memory_fill + c — a square wave
// the model predicts exactly. This exercises the simulator's eviction
// machinery and bounds the low-contention regime of T2.
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("E1: private working-set sweep (capacity cliff)");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl | test", "xeon");
  cli.add_flag("capacity", "private cache capacity in lines", "512");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  sim::MachineConfig cfg = sim::preset_by_name(cli.get("machine"));
  const auto capacity = static_cast<std::uint32_t>(cli.get_int("capacity"));
  cfg.cache_capacity_lines = capacity;
  bench::SimBackend backend(cfg);
  bench_util::apply_obs(cli, backend);
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));

  Table table({"machine", "capacity", "lines/thread", "cycles/op",
               "model fit (cy)", "model miss (cy)", "mem fetches/op"});

  const double fit_cost = model.params().local_op_cycles(Primitive::kFaa);
  const double miss_cost = model.params().memory_fill + fit_cost;

  const auto cap64 = static_cast<std::uint64_t>(capacity);
  for (std::uint64_t lines : {cap64 / 8, cap64 / 2, cap64 - 1, cap64 + 1,
                              cap64 * 2, cap64 * 8}) {
    if (lines == 0) continue;
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kPrivateWalk;
    w.prim = Primitive::kFaa;
    w.threads = 4;
    w.lines_per_thread = lines;
    const auto run = backend.run(w);
    const double ops = static_cast<double>(run.total_ops());
    if (ops == 0.0) continue;
    const double cycles_per_op =
        run.duration_cycles * w.threads / ops;  // per-thread cost
    table.add_row({backend.machine_name(), Table::num(std::size_t{capacity}),
                   Table::num(std::size_t{lines}),
                   Table::num(cycles_per_op, 1), Table::num(fit_cost, 1),
                   Table::num(miss_cost, 1),
                   Table::num(static_cast<double>(run.memory_fetches) / ops,
                              2)});
  }

  bench_util::emit(cli,
                   "E1: working-set sweep, capacity " +
                       std::to_string(capacity) + " lines (" + cfg.name + ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
