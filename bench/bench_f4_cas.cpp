// F4 — CAS under contention: success rate of single-shot CAS, acquisition
// cost of the CAS retry loop, and the FAA-vs-CASLOOP gap.
//
// A failed CAS still drags the line to the failing core, so the retry
// loop pays ~N line acquisitions per completed increment while FAA pays
// one — the model's headline design signal. Model columns give the
// closed-form success rate (1/N deterministic, the Poisson fixed point
// under randomized arbitration) and attempts per op.
#include <iostream>

#include "bench_util.hpp"
#include "model/cas_model.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F4: CAS success rate and CAS-loop cost vs threads");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto probe = bench_util::probe_backend(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto thread_points =
      bench_util::thread_sweep(cli, probe->max_threads());
  auto sweep = bench_util::sweep_from(cli);

  Table table({"machine", "threads", "CAS success", "model success",
               "CASLOOP acq/op", "model acq/op", "FAA Mops", "CASLOOP Mops",
               "FAA/CASLOOP"});

  // Three points per row (CAS, CASLOOP, FAA); all pooled, rows assembled
  // after the drain in submission order.
  struct Row {
    std::uint32_t threads;
    std::size_t cas, loop, faa;
  };
  std::vector<Row> rows;
  for (std::uint32_t n : thread_points) {
    bench::WorkloadConfig cas;
    cas.mode = bench::WorkloadMode::kHighContention;
    cas.prim = Primitive::kCas;
    cas.threads = n;

    bench::WorkloadConfig loop = cas;
    loop.prim = Primitive::kCasLoop;

    bench::WorkloadConfig faa = cas;
    faa.prim = Primitive::kFaa;

    rows.push_back({n, sweep.engine->submit(cas), sweep.engine->submit(loop),
                    sweep.engine->submit(faa)});
  }
  sweep.engine->drain();

  for (const Row& row : rows) {
    const bench::MeasuredRun* cas_run = sweep.engine->result_or_null(row.cas);
    const bench::MeasuredRun* loop_run = sweep.engine->result_or_null(row.loop);
    const bench::MeasuredRun* faa_run = sweep.engine->result_or_null(row.faa);
    if (cas_run == nullptr || loop_run == nullptr || faa_run == nullptr) {
      // Any of the row's three points failing darkens the whole row: mixing
      // measured and missing primitives in one line would invite bogus
      // ratios.
      const std::size_t bad = cas_run == nullptr  ? row.cas
                              : loop_run == nullptr ? row.loop
                                                    : row.faa;
      table.add_row(bench_util::degraded_row(
          table, {probe->machine_name(), Table::num(std::size_t{row.threads})},
          sweep.engine->outcome(bad)));
      continue;
    }
    const bench::MeasuredRun& r_cas = *cas_run;
    const bench::MeasuredRun& r_loop = *loop_run;
    const bench::MeasuredRun& r_faa = *faa_run;

    const model::Prediction p_cas =
        model.predict(Primitive::kCas, row.threads, 0.0);
    const model::Prediction p_loop =
        model.predict(Primitive::kCasLoop, row.threads, 0.0);

    const double ratio =
        r_loop.throughput_mops() > 0.0
            ? r_faa.throughput_mops() / r_loop.throughput_mops()
            : 0.0;
    table.add_row({probe->machine_name(), Table::num(std::size_t{row.threads}),
                   Table::num(r_cas.success_rate(), 3),
                   Table::num(p_cas.success_rate, 3),
                   Table::num(r_loop.attempts_per_op(), 2),
                   Table::num(p_loop.attempts_per_op, 2),
                   Table::num(r_faa.throughput_mops(), 2),
                   Table::num(r_loop.throughput_mops(), 2),
                   Table::num(ratio, 2)});
  }

  bench_util::emit(cli,
                   "F4: CAS failure behaviour (" + probe->machine_name() +
                       ")",
                   table, sweep.engine.get());
  return bench_util::sweep_exit_code(cli, *sweep.engine);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
