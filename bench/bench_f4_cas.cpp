// F4 — CAS under contention: success rate of single-shot CAS, acquisition
// cost of the CAS retry loop, and the FAA-vs-CASLOOP gap.
//
// A failed CAS still drags the line to the failing core, so the retry
// loop pays ~N line acquisitions per completed increment while FAA pays
// one — the model's headline design signal. Model columns give the
// closed-form success rate (1/N deterministic, the Poisson fixed point
// under randomized arbitration) and attempts per op.
#include <iostream>

#include "bench_util.hpp"
#include "model/cas_model.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F4: CAS success rate and CAS-loop cost vs threads");
  bench_util::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto sweep = bench_util::thread_sweep(cli, backend->max_threads());

  Table table({"machine", "threads", "CAS success", "model success",
               "CASLOOP acq/op", "model acq/op", "FAA Mops", "CASLOOP Mops",
               "FAA/CASLOOP"});

  for (std::uint32_t n : sweep) {
    bench::WorkloadConfig cas;
    cas.mode = bench::WorkloadMode::kHighContention;
    cas.prim = Primitive::kCas;
    cas.threads = n;
    const auto r_cas = backend->run(cas);

    bench::WorkloadConfig loop = cas;
    loop.prim = Primitive::kCasLoop;
    const auto r_loop = backend->run(loop);

    bench::WorkloadConfig faa = cas;
    faa.prim = Primitive::kFaa;
    const auto r_faa = backend->run(faa);

    const model::Prediction p_cas = model.predict(Primitive::kCas, n, 0.0);
    const model::Prediction p_loop =
        model.predict(Primitive::kCasLoop, n, 0.0);

    const double ratio =
        r_loop.throughput_mops() > 0.0
            ? r_faa.throughput_mops() / r_loop.throughput_mops()
            : 0.0;
    table.add_row({backend->machine_name(), Table::num(std::size_t{n}),
                   Table::num(r_cas.success_rate(), 3),
                   Table::num(p_cas.success_rate, 3),
                   Table::num(r_loop.attempts_per_op(), 2),
                   Table::num(p_loop.attempts_per_op, 2),
                   Table::num(r_faa.throughput_mops(), 2),
                   Table::num(r_loop.throughput_mops(), 2),
                   Table::num(ratio, 2)});
  }

  bench_util::emit(cli,
                   "F4: CAS failure behaviour (" + backend->machine_name() +
                       ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
