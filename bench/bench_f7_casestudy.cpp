// F7 — Case study: model-guided algorithmic design decisions.
//
// Two decisions the paper's abstract promises the model facilitates:
//   (a) shared counter — FAA vs CAS retry loop vs lock-protected increment;
//   (b) spinlock choice — TAS vs TTAS vs ticket vs MCS.
// For each, the harness prints the advisor's model-based ranking next to
// the outcome of actually running the candidates on the coherence machine
// (counters via the primitive workloads; locks via the protocol programs).
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"
#include "locks/lock_programs.hpp"
#include "model/advisor.hpp"
#include "common/stats.hpp"
#include "sim/machine.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F7: case study — counters and spinlocks, model vs machine");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("critical", "critical-section cycles for the lock study", "100");
  cli.add_flag("outside", "cycles outside the lock", "200");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig cfg = sim::preset_by_name(cli.get("machine"));
  bench::SimBackend backend(cfg);
  bench_util::apply_obs(cli, backend);
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));
  const auto critical = static_cast<sim::Cycles>(cli.get_int("critical"));
  const auto outside = static_cast<sim::Cycles>(cli.get_int("outside"));

  // --- (a) counters ---------------------------------------------------------
  Table counters({"threads", "impl", "measured Mops", "advisor Mops",
                  "advisor pick"});
  for (std::uint32_t n : bench_util::thread_sweep(cli, backend.max_threads())) {
    if (n < 2) continue;
    const model::Advice advice = model::advise_counter(model, n, 0.0);
    auto advisor_mops = [&](const std::string& name) {
      for (const auto& o : advice.options) {
        if (o.name == name) return o.throughput_mops;
      }
      return 0.0;
    };

    for (Primitive prim : {Primitive::kFaa, Primitive::kCasLoop}) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      const auto r = backend.run(w);
      const std::string name =
          prim == Primitive::kFaa ? "FAA" : "CAS-loop";
      counters.add_row({Table::num(std::size_t{n}), name,
                        Table::num(r.throughput_mops(), 2),
                        Table::num(advisor_mops(name), 2),
                        advice.recommended});
    }
    // Lock-protected increment: TAS lock around one FAA on a data line.
    locks::LockWorkload wl;
    wl.critical_work = 0;
    wl.outside_work = 0;
    wl.cs_data_ops = 1;
    sim::Machine machine(cfg);
    locks::TasLockProgram prog(wl);
    const sim::RunStats st = machine.run(prog, n, 50'000, 250'000);
    const double incs = static_cast<double>(
        locks::LockProgramBase::acquisitions(st, locks::LockKind::kTas));
    const double mops = incs / static_cast<double>(st.measured_cycles) *
                        cfg.freq_ghz * 1e3;
    counters.add_row({Table::num(std::size_t{n}), "lock+inc",
                      Table::num(mops, 2), Table::num(advisor_mops("lock+inc"), 2),
                      advice.recommended});
  }
  bench_util::emit(cli, "F7a: shared-counter implementations (" + cfg.name + ")",
                   counters);

  // --- (b) locks ------------------------------------------------------------
  Table lock_table({"threads", "lock", "acquisitions/Mcy", "Jain",
                    "advisor Mops", "advisor pick"});
  locks::LockWorkload wl;
  wl.critical_work = critical;
  wl.outside_work = outside;
  for (std::uint32_t n : bench_util::thread_sweep(cli, backend.max_threads())) {
    if (n < 2) continue;
    const model::Advice advice = model::advise_lock(
        model, n, static_cast<double>(critical), static_cast<double>(outside));
    auto advisor_mops = [&](const std::string& name) {
      for (const auto& o : advice.options) {
        if (o.name == name) return o.throughput_mops;
      }
      return 0.0;
    };

    auto measure = [&](auto make_program, locks::LockKind kind,
                       const std::string& name) {
      sim::Machine machine(cfg);
      auto prog = make_program();
      const sim::RunStats st = machine.run(prog, n, 50'000, 300'000);
      const double acq = static_cast<double>(
          locks::LockProgramBase::acquisitions(st, kind));
      const auto shares = locks::LockProgramBase::acquisition_shares(st, kind);
      lock_table.add_row(
          {Table::num(std::size_t{n}), name,
           Table::num(acq * 1000.0 / static_cast<double>(st.measured_cycles),
                      3),
           Table::num(jain_fairness(shares), 3),
           Table::num(advisor_mops(name), 3), advice.recommended});
    };
    measure([&] { return locks::TasLockProgram(wl); }, locks::LockKind::kTas,
            "TAS");
    measure([&] { return locks::TtasLockProgram(wl); }, locks::LockKind::kTtas,
            "TTAS");
    measure([&] { return locks::TicketLockProgram(wl); },
            locks::LockKind::kTicket, "ticket");
    measure([&] { return locks::McsLockProgram(wl); }, locks::LockKind::kMcs,
            "MCS");
  }
  bench_util::emit(cli, "F7b: spinlock protocols (" + cfg.name + ")",
                   lock_table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
