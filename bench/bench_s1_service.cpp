// S1 — am_serve under load: closed-loop saturation sweep and target-QPS
// pacing against the model-serving daemon.
//
// Each connection is one closed loop: send a request, wait for the
// response, send the next. A saturation sweep raises the connection count
// (default 1..64) and records achieved QPS and latency percentiles per
// step — the classic closed-system load curve, which flattens once the
// daemon's worker pool saturates. --target-qps switches to paced mode:
// connections space their requests to hit an aggregate offered rate, the
// latency distribution shows how far the daemon is from saturation.
//
// The request stream cycles through --distinct request shapes, so the
// daemon's prediction-cache hit rate is controllable (distinct=1 is a pure
// cache-hit storm; large distinct defeats the cache). With --verify every
// (request line -> response line) pair is recorded and cross-checked:
// identical requests must produce byte-identical responses regardless of
// which connection or worker served them — the serving determinism
// contract.
//
// By default the bench spawns an in-process daemon on an ephemeral port
// (self-contained, used by run_all_experiments.sh); --connect targets an
// external one.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fleet/router.hpp"
#include "fleet/supervisor.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"

namespace {

using am::service::Endpoint;
using am::service::ServiceClient;

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t verify_failures = 0;
  double duration_s = 0.0;
  std::vector<double> latency_us;
  /// Completion time of each sample, seconds since the step started.
  /// Parallel to latency_us; feeds the per-step timeline buckets.
  std::vector<double> t_s;

  double qps() const {
    return duration_s > 0.0 ? static_cast<double>(requests) / duration_s : 0.0;
  }
};

/// One rolling bucket of a step's timeline: client-side view of throughput
/// and tail latency over time, the counterpart of the daemon's server-side
/// rolling windows.
struct TimelineBucket {
  double t_s = 0.0;  ///< bucket start, seconds since the step began
  double width_s = 0.0;
  std::uint64_t requests = 0;
  double qps = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Buckets a step's timestamped samples into fixed-width spans. Width adapts
/// to the step duration so short CI runs still get a few buckets.
std::vector<TimelineBucket> build_timeline(const LoadResult& r,
                                           double duration_s) {
  std::vector<TimelineBucket> timeline;
  if (r.latency_us.empty()) return timeline;
  const double width = std::clamp(duration_s / 8.0, 0.125, 1.0);
  std::vector<std::vector<double>> buckets;
  for (std::size_t i = 0; i < r.latency_us.size(); ++i) {
    const auto b = static_cast<std::size_t>(std::max(0.0, r.t_s[i]) / width);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(r.latency_us[i]);
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].empty()) continue;
    const am::Summary s = am::summarize(buckets[b]);
    TimelineBucket out;
    out.t_s = static_cast<double>(b) * width;
    out.width_s = width;
    out.requests = buckets[b].size();
    out.qps = static_cast<double>(buckets[b].size()) / width;
    out.p50 = s.p50;
    out.p90 = s.p90;
    out.p99 = s.p99;
    timeline.push_back(out);
  }
  return timeline;
}

/// The request lines one connection cycles through. Distinct `work` values
/// make distinct canonical requests, so `distinct` directly sets the
/// daemon-side cache working set.
std::vector<std::string> build_requests(const am::CliParser& cli) {
  std::vector<std::string> lines;
  const std::int64_t distinct =
      std::max<std::int64_t>(1, cli.get_int("distinct"));
  for (std::int64_t i = 0; i < distinct; ++i) {
    std::ostringstream os;
    am::JsonWriter w(os);
    w.begin_object();
    w.kv("v", "am-serve/1");
    w.kv("kind", cli.get("request"));
    w.kv("machine", cli.get("machine"));
    w.kv("mode", "shared");
    w.kv("prim", cli.get("prim"));
    w.kv("threads", static_cast<std::uint64_t>(cli.get_int("threads")));
    w.kv("work", cli.get_double("work") + 10.0 * static_cast<double>(i));
    w.end_object();
    lines.push_back(os.str());
  }
  return lines;
}

/// Runs @p connections closed loops against @p endpoint until the deadline.
/// @p pace_interval_s > 0 spaces each connection's requests (target-QPS
/// mode); @p verify_map (optional) enforces byte-identical responses for
/// identical request lines across all connections. @p zipf (optional)
/// draws request indices Zipf-distributed instead of round-robin — the
/// skewed-popularity regime a consistent-hash fleet actually sees.
LoadResult run_load(const Endpoint& endpoint, unsigned connections,
                    double duration_s, double pace_interval_s,
                    const std::vector<std::string>& requests,
                    std::map<std::string, std::string>* verify_map,
                    std::mutex* verify_mu,
                    const am::ZipfSampler* zipf = nullptr) {
  std::vector<LoadResult> per_conn(connections);
  std::vector<std::thread> threads;
  std::atomic<bool> failed_connect{false};
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration<double>(std::max(0.01, duration_s));

  for (unsigned c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& mine = per_conn[c];
      ServiceClient client;
      std::string error;
      if (!client.connect(endpoint, &error)) {
        failed_connect.store(true);
        return;
      }
      std::size_t i = c;  // offset start so connections interleave the set
      am::Xoshiro256 rng(0x51f1ee7ULL + c);
      auto next_slot = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < deadline) {
        if (pace_interval_s > 0.0) {
          std::this_thread::sleep_until(next_slot);
          next_slot += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(pace_interval_s));
        }
        const std::string& line =
            zipf != nullptr ? requests[zipf->sample(rng)]
                            : requests[i++ % requests.size()];
        const auto r0 = std::chrono::steady_clock::now();
        const auto response = client.roundtrip(line, &error);
        if (!response.has_value()) {
          ++mine.errors;
          break;  // transport down; this loop is done
        }
        const auto r1 = std::chrono::steady_clock::now();
        mine.latency_us.push_back(
            std::chrono::duration<double, std::micro>(r1 - r0).count());
        mine.t_s.push_back(
            std::chrono::duration<double>(r1 - t0).count());
        ++mine.requests;
        if (response->find("\"ok\":true") == std::string::npos) ++mine.errors;
        if (verify_map != nullptr) {
          std::lock_guard<std::mutex> lock(*verify_mu);
          const auto [it, inserted] = verify_map->emplace(line, *response);
          if (!inserted && it->second != *response) ++mine.verify_failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult total;
  total.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const LoadResult& r : per_conn) {
    total.requests += r.requests;
    total.errors += r.errors;
    total.verify_failures += r.verify_failures;
    total.latency_us.insert(total.latency_us.end(), r.latency_us.begin(),
                            r.latency_us.end());
    total.t_s.insert(total.t_s.end(), r.t_s.begin(), r.t_s.end());
  }
  if (failed_connect.load()) ++total.errors;
  return total;
}

void emit_json_value(am::JsonWriter& w, const am::JsonValue& v) {
  using Type = am::JsonValue::Type;
  switch (v.type()) {
    case Type::kNull: w.null(); break;
    case Type::kBool: w.value(v.as_bool()); break;
    case Type::kNumber: w.value(v.as_number()); break;
    case Type::kString: w.value(v.as_string()); break;
    case Type::kArray:
      w.begin_array();
      for (const auto& item : v.items()) emit_json_value(w, item);
      w.end_array();
      break;
    case Type::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        emit_json_value(w, member);
      }
      w.end_object();
      break;
  }
}

struct Row {
  unsigned connections = 0;
  double target_qps = 0.0;  ///< 0 in saturation mode
  LoadResult result;
};

}  // namespace

int main(int argc, char** argv) {
  using am::CliParser;
  CliParser cli(
      "closed-loop load generator for am_serve: saturation sweep over "
      "connection counts, or paced target-QPS mode");
  cli.add_flag("connect",
               "external daemon endpoint (host:port or unix:path); empty "
               "spawns an in-process daemon on an ephemeral port",
               "", am::CliParser::FlagKind::kEndpoint);
  cli.add_flag("connections",
               "saturation sweep connection counts (comma-separated)",
               "1,2,4,8,16,32,64", CliParser::FlagKind::kIntList);
  cli.add_flag("duration-ms", "measurement window per sweep step", "1000",
               CliParser::FlagKind::kInt);
  cli.add_flag("target-qps",
               "paced mode: aggregate offered rate (0 = saturation sweep)",
               "0", CliParser::FlagKind::kDouble);
  cli.add_flag("request", "request kind to issue: predict|advise|ping",
               "predict");
  cli.add_flag("machine", "sim preset named in requests", "xeon");
  cli.add_flag("prim", "primitive named in requests", "FAA");
  cli.add_flag("threads", "thread count named in requests", "16",
               CliParser::FlagKind::kInt);
  cli.add_flag("work", "base work value named in requests", "0",
               CliParser::FlagKind::kDouble);
  cli.add_flag("distinct",
               "distinct request shapes cycled through (cache working set)",
               "64", CliParser::FlagKind::kInt);
  cli.add_flag("verify",
               "record every request->response pair and fail on any "
               "non-byte-identical response to an identical request",
               "true", CliParser::FlagKind::kBool);
  cli.add_flag("key-zipf-s",
               "draw request keys Zipf(s)-distributed over the distinct set "
               "instead of round-robin (0 = round-robin)",
               "0", CliParser::FlagKind::kDouble);
  cli.add_flag("fleet-workers",
               "spawn an in-process am_fleet tier with this many am_serve "
               "workers instead of a single in-process daemon (0 = off; "
               "ignored with --connect)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("fleet-worker-threads", "service threads per fleet worker",
               "2", CliParser::FlagKind::kInt);
  cli.add_flag("service-threads",
               "worker pool width of the in-process daemon", "4",
               CliParser::FlagKind::kInt);
  cli.add_flag("cache-capacity",
               "prediction cache entries of the in-process daemon", "4096",
               CliParser::FlagKind::kInt);
  cli.add_flag("metrics",
               "telemetry in the in-process daemon; --metrics=false is the "
               "overhead A/B baseline (ignored with --connect)",
               "true", CliParser::FlagKind::kBool);
  cli.add_flag("csv", "write the table as CSV to this path (empty = skip)",
               "");
  cli.add_flag("json-out", "write an am-serve-load/1 JSON report here", "");
  if (!cli.parse(argc, argv)) return 2;

  // Endpoint: external daemon, a self-hosted one on an ephemeral port, or
  // a self-hosted fleet tier (supervisor + router fronting N am_serve
  // worker processes).
  std::string error;
  Endpoint endpoint;
  std::unique_ptr<am::service::ServiceCore> core;
  std::unique_ptr<am::fleet::Supervisor> supervisor;
  std::unique_ptr<am::fleet::Router> router;
  std::unique_ptr<am::service::Server> server;  // after router: dies first
  const std::int64_t fleet_workers =
      std::max<std::int64_t>(0, cli.get_int("fleet-workers"));
  if (!cli.get("connect").empty()) {
    const auto parsed = am::service::parse_endpoint(cli.get("connect"), &error);
    if (!parsed.has_value()) {
      std::cerr << "bench_s1_service: --connect: " << error << "\n";
      return 2;
    }
    endpoint = *parsed;
  } else {
    const bool metrics_on = cli.get_bool("metrics");
    // Same contract as am_serve --metrics=false: the global switch also
    // gates simulator/sweep publication, so the A/B compares a truly
    // instrumentation-free hot path.
    am::obs::metrics::set_enabled(metrics_on);
    am::service::ServerConfig server_config;
    Endpoint ephemeral;
    ephemeral.host = "127.0.0.1";
    ephemeral.port = 0;
    server_config.listen.push_back(ephemeral);
    server_config.service_threads = static_cast<unsigned>(
        std::max<std::int64_t>(1, cli.get_int("service-threads")));
    server_config.metrics = metrics_on;

    if (fleet_workers > 0) {
      char runtime_tmpl[] = "/tmp/am_fleet_bench.XXXXXX";
      if (::mkdtemp(runtime_tmpl) == nullptr) {
        std::cerr << "bench_s1_service: cannot create fleet runtime dir\n";
        return 1;
      }
      am::fleet::FleetConfig fleet_config;
      fleet_config.workers = static_cast<std::size_t>(fleet_workers);
      fleet_config.runtime_dir = runtime_tmpl;
      fleet_config.worker_threads = static_cast<unsigned>(std::max<std::int64_t>(
          1, cli.get_int("fleet-worker-threads")));
      fleet_config.metrics = metrics_on;
      supervisor =
          std::make_unique<am::fleet::Supervisor>(std::move(fleet_config));
      if (!supervisor->start(&error)) {
        std::cerr << "bench_s1_service: cannot start fleet: " << error << "\n";
        return 1;
      }
      if (!supervisor->wait_all_up(supervisor->config().start_grace_ms)) {
        std::cerr << "bench_s1_service: warning: fleet degraded at start\n";
      }
      am::fleet::RouterConfig router_config;
      router_config.metrics = metrics_on;
      router = std::make_unique<am::fleet::Router>(*supervisor, router_config);
      server = std::make_unique<am::service::Server>(*router, server_config);
    } else {
      am::service::ServiceConfig core_config;
      core_config.cache_capacity = static_cast<std::size_t>(
          std::max<std::int64_t>(0, cli.get_int("cache-capacity")));
      core_config.metrics = metrics_on;
      core = std::make_unique<am::service::ServiceCore>(std::move(core_config));
      server = std::make_unique<am::service::Server>(*core, server_config);
    }
    if (!server->start(&error)) {
      std::cerr << "bench_s1_service: cannot start in-process daemon: "
                << error << "\n";
      return 1;
    }
    endpoint = server->bound_endpoints().front();
    std::cout << "(in-process "
              << (fleet_workers > 0
                      ? "fleet front (" + std::to_string(fleet_workers) +
                            " workers) on "
                      : "daemon on ")
              << endpoint.to_string() << ")\n";
  }

  const std::vector<std::string> requests = build_requests(cli);
  const double key_zipf_s = cli.get_double("key-zipf-s");
  std::unique_ptr<am::ZipfSampler> zipf;
  if (key_zipf_s > 0.0) {
    zipf = std::make_unique<am::ZipfSampler>(requests.size(), key_zipf_s);
  }
  const double duration_s =
      static_cast<double>(std::max<std::int64_t>(10, cli.get_int("duration-ms"))) /
      1000.0;
  const double target_qps = cli.get_double("target-qps");
  const bool verify = cli.get_bool("verify");
  std::map<std::string, std::string> verify_map;
  std::mutex verify_mu;

  std::vector<Row> rows;
  if (target_qps > 0.0) {
    const auto conns_list = cli.get_int_list("connections");
    const unsigned conns = static_cast<unsigned>(
        std::max<std::int64_t>(1, conns_list.empty() ? 8 : conns_list.front()));
    Row row;
    row.connections = conns;
    row.target_qps = target_qps;
    row.result = run_load(endpoint, conns, duration_s,
                          static_cast<double>(conns) / target_qps, requests,
                          verify ? &verify_map : nullptr, &verify_mu,
                          zipf.get());
    rows.push_back(std::move(row));
  } else {
    for (const std::int64_t c : cli.get_int_list("connections")) {
      if (c < 1) continue;
      Row row;
      row.connections = static_cast<unsigned>(c);
      row.result = run_load(endpoint, row.connections, duration_s, 0.0,
                            requests, verify ? &verify_map : nullptr,
                            &verify_mu, zipf.get());
      rows.push_back(std::move(row));
    }
  }

  // Final daemon stats (cache hit rate for the report), then drain the
  // in-process daemon.
  std::string stats_result;
  {
    ServiceClient client;
    if (client.connect(endpoint, &error)) {
      const auto response =
          client.roundtrip("{\"kind\":\"stats\"}", &error);
      if (response.has_value()) {
        if (const auto doc = am::JsonValue::parse(*response)) {
          if (const am::JsonValue* result = doc->find("result")) {
            std::ostringstream os;
            am::JsonWriter w(os);
            emit_json_value(w, *result);
            stats_result = os.str();
          }
        }
      }
    }
  }
  if (server != nullptr) {
    am::service::Server::request_shutdown();
    server->wait();
  }

  am::Table table({"conns", "target_qps", "requests", "errors", "qps",
                   "mean_us", "p50_us", "p99_us", "max_us"});
  std::uint64_t verify_failures = 0;
  for (const Row& row : rows) {
    const am::Summary s = am::summarize(row.result.latency_us);
    table.add_row({am::Table::num(std::size_t{row.connections}),
                   row.target_qps > 0.0 ? am::Table::num(row.target_qps, 0)
                                        : std::string("-"),
                   am::Table::num(std::size_t{row.result.requests}),
                   am::Table::num(std::size_t{row.result.errors}),
                   am::Table::num(row.result.qps(), 1),
                   am::Table::num(s.mean, 1), am::Table::num(s.p50, 1),
                   am::Table::num(s.p99, 1), am::Table::num(s.max, 1)});
    verify_failures += row.result.verify_failures;
  }

  const std::string title =
      target_qps > 0.0 ? "S1 - am_serve paced load (target QPS)"
                       : "S1 - am_serve saturation sweep (closed loop)";
  std::cout << "\n== " << title << " ==\n" << table;
  if (verify) {
    std::cout << "(verify: " << verify_map.size() << " distinct requests, "
              << verify_failures << " response mismatches)\n";
  }

  if (!cli.get("csv").empty()) {
    if (table.write_csv(cli.get("csv"))) {
      std::cout << "(csv written to " << cli.get("csv") << ")\n";
    } else {
      std::cerr << "failed to write csv to " << cli.get("csv") << "\n";
    }
  }

  if (!cli.get("json-out").empty()) {
    std::ostringstream os;
    am::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", "am-serve-load/1");
    w.kv("bench", cli.program_name());
    w.kv("command", cli.command_line());
    w.kv("endpoint", endpoint.to_string());
    w.kv("mode", target_qps > 0.0 ? "target-qps" : "saturation");
    w.kv("duration_s", duration_s);
    w.kv("distinct_requests", std::uint64_t{requests.size()});
    w.kv("key_zipf_s", key_zipf_s);
    w.kv("fleet_workers", static_cast<std::uint64_t>(fleet_workers));
    w.kv("verify_failures", verify_failures);
    w.key("rows").begin_array();
    for (const Row& row : rows) {
      const am::Summary s = am::summarize(row.result.latency_us);
      w.begin_object();
      w.kv("connections", std::uint64_t{row.connections});
      if (row.target_qps > 0.0) w.kv("target_qps", row.target_qps);
      w.kv("requests", row.result.requests);
      w.kv("errors", row.result.errors);
      w.kv("duration_s", row.result.duration_s);
      w.kv("qps", row.result.qps());
      w.key("latency_us").begin_object();
      w.kv("count", std::uint64_t{s.count});
      w.kv("mean", s.mean);
      w.kv("p50", s.p50);
      w.kv("p90", s.p90);
      w.kv("p99", s.p99);
      w.kv("max", s.max);
      w.end_object();
      w.key("timeline").begin_array();
      for (const TimelineBucket& b : build_timeline(row.result, duration_s)) {
        w.begin_object();
        w.kv("t_s", b.t_s);
        w.kv("width_s", b.width_s);
        w.kv("requests", b.requests);
        w.kv("qps", b.qps);
        w.kv("p50_us", b.p50);
        w.kv("p90_us", b.p90);
        w.kv("p99_us", b.p99);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    if (!stats_result.empty()) {
      if (const auto stats = am::JsonValue::parse(stats_result)) {
        w.key("server_stats");
        emit_json_value(w, *stats);
      }
    }
    w.end_object();
    std::ofstream out(cli.get("json-out"));
    out << os.str() << "\n";
    if (out) {
      std::cout << "(json report written to " << cli.get("json-out") << ")\n";
    } else {
      std::cerr << "failed to write json report to " << cli.get("json-out")
                << "\n";
    }
  }

  if (verify_failures > 0) return 1;
  for (const Row& row : rows) {
    if (row.result.requests == 0) return 1;  // nothing measured
  }
  return 0;
}
