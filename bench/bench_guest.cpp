// G1 — Guest-corpus contention profiles: runs the checked-in RV32IMA
// corpus (compiled guest code, not synthetic op streams) across a hart
// sweep and reports each program's modeled contention profile; then
// cross-checks the FAA-counter kernel against the analytic model's FAA
// prediction at the equivalent local-work point, tying the guest frontend
// back to the paper's throughput model.
//
//   bench_guest --backend=sim:xeon:tso --harts=1,2,4,8 --csv=g1.csv

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_core/report.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "guest/corpus.hpp"
#include "guest/runner.hpp"
#include "model/bouncing_model.hpp"
#include "model/params.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("G1: guest-corpus contention profiles vs the analytic model");
  cli.add_flag("backend", "sim:{xeon|knl|test}[:{sc|tso}]", "sim:xeon");
  cli.add_flag("harts", "comma-separated hart counts", "1,2,4,8",
               CliParser::FlagKind::kIntList);
  cli.add_flag("seed", "machine + stack-fill seed", "1",
               CliParser::FlagKind::kUint64);
  cli.add_flag("csv", "write the profile table as CSV to this path", "");
  cli.add_flag("json-out",
               "write a JSON run report (schema am-run-report/1) covering "
               "every guest run",
               "");
  if (!cli.parse(argc, argv)) return 1;

  sim::MachineConfig mc;
  std::string preset, perr;
  if (!guest::parse_guest_backend(cli.get("backend"), &mc, &preset, &perr)) {
    std::cerr << "bench_guest: " << perr << "\n";
    return 1;
  }

  std::vector<std::uint32_t> harts;
  for (auto v : cli.get_int_list("harts")) {
    if (v >= 1 && static_cast<std::uint32_t>(v) <= mc.cores) {
      harts.push_back(static_cast<std::uint32_t>(v));
    }
  }
  if (harts.empty()) harts = {1, 2};

  Table table({"program", "harts", "cycles", "instret", "IPC", "atomics/kcy",
               "sc-fail/hart", "xfer/atomic", "inval/atomic"});
  std::vector<bench::RecordedRun> runs;
  // faa_counter profile per hart count, kept for the model cross-check.
  std::vector<guest::GuestRunResult> faa_runs;

  for (const std::string& name : guest::corpus::names()) {
    const std::vector<std::uint8_t> elf = guest::corpus::build(name);
    for (std::uint32_t n : harts) {
      guest::GuestRunConfig config;
      config.backend = cli.get("backend");
      config.harts = n;
      config.seed = cli.get_uint64("seed");
      guest::GuestRunResult r = guest::run_guest(elf.data(), elf.size(),
                                                 config);
      if (!r.error.ok()) {
        table.add_row({name, Table::num(std::size_t{n}),
                       "FAILED:" + r.error.code, "-", "-", "-", "-", "-",
                       "-"});
        continue;
      }
      const double atomics = static_cast<double>(r.total_atomics);
      const std::uint64_t transfers = r.stats.transfers[0] +
                                      r.stats.transfers[1] +
                                      r.stats.transfers[2] +
                                      r.stats.transfers[3];
      table.add_row(
          {name, Table::num(std::size_t{n}),
           Table::num(std::size_t{r.completion_cycles}),
           Table::num(std::size_t{r.total_instructions}),
           Table::num(r.instructions_per_cycle(), 3),
           Table::num(r.atomics_per_kcycle(), 3),
           Table::num(static_cast<double>(r.total_sc_failures) / n, 1),
           Table::num(atomics > 0 ? static_cast<double>(transfers) / atomics
                                  : 0.0,
                      2),
           Table::num(atomics > 0
                          ? static_cast<double>(r.stats.invalidations) /
                                atomics
                          : 0.0,
                      2)});
      bench::WorkloadConfig workload;
      workload.threads = n;
      workload.seed = r.seed;
      if (name == "faa_counter") faa_runs.push_back(r);
      runs.push_back({workload, guest::to_measured_run(r)});
    }
  }
  std::cout << "\n== G1.1: guest corpus contention profiles (" << mc.name
            << ", " << cli.get("backend") << ") ==\n"
            << table;

  // Cross-check: the FAA-counter kernel is the guest-code realization of
  // the paper's high-contention FAA workload. Feed the model the measured
  // local work (plain instructions per atomic, each priced one cycle) and
  // compare throughputs; agreement within a small factor ties the frontend
  // to the model the paper validates.
  const model::BouncingModel model(model::ModelParams::from_machine(mc));
  Table xcheck({"harts", "guest atomics/kcy", "model ops/kcy", "ratio"});
  for (const guest::GuestRunResult& r : faa_runs) {
    if (r.total_atomics == 0) continue;
    const double work =
        static_cast<double>(r.total_instructions - r.total_atomics) /
        static_cast<double>(r.total_atomics);
    const auto p = model.predict(Primitive::kFaa, r.harts, work);
    const double guest_kcy = r.atomics_per_kcycle();
    xcheck.add_row({Table::num(std::size_t{r.harts}),
                    Table::num(guest_kcy, 3),
                    Table::num(p.throughput_ops_per_kcycle, 3),
                    Table::num(p.throughput_ops_per_kcycle > 0
                                   ? guest_kcy / p.throughput_ops_per_kcycle
                                   : 0.0,
                               2)});
  }
  std::cout << "\n== G1.2: faa_counter guest vs analytic FAA model ==\n"
            << xcheck;

  if (!cli.get("csv").empty()) {
    if (table.write_csv(cli.get("csv"))) {
      std::cout << "(csv written to " << cli.get("csv") << ")\n";
    } else {
      std::cerr << "failed to write csv to " << cli.get("csv") << "\n";
      return 1;
    }
  }
  if (!cli.get("json-out").empty()) {
    bench::ReportMeta meta;
    meta.bench = cli.program_name();
    meta.title = "G1: guest corpus contention profiles";
    meta.backend = cli.get("backend");
    meta.machine = mc.name;
    meta.command = cli.command_line();
    if (!bench::write_run_report_file(cli.get("json-out"), meta, nullptr,
                                      runs)) {
      std::cerr << "failed to write report to " << cli.get("json-out")
                << "\n";
      return 1;
    }
    std::cout << "(report written to " << cli.get("json-out") << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
